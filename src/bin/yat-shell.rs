//! An interactive `yat>` shell over the Fig. 1 federation — the paper's
//! Fig. 2 session, live. Type a YATL query terminated by `;`, or one of
//! the commands below.
//!
//! ```text
//! cargo run --bin yat-shell
//! yat> MAKE $t MATCH artworks WITH doc.work.[ title.$t ] ;
//! yat> :explain MAKE $t MATCH artworks WITH doc.work.[ title.$t, more.cplace.$cl ]
//!      WHERE $cl = "Giverny" ;
//! yat> :naive on
//! yat> :views
//! yat> :quit
//! ```

use std::io::{self, BufRead, Write};
use yat::yat_algebra::EvalOut;
use yat::yat_mediator::{Mediator, OptimizerOptions};
use yat::yat_oql::art::fig1_store;
use yat::yat_oql::O2Wrapper;
use yat::yat_wais::{fig1_works, WaisSource, WaisWrapper};
use yat::yat_yatl::paper;

fn main() {
    let mut mediator = Mediator::new();
    mediator
        .connect(Box::new(O2Wrapper::new("o2artifact", fig1_store())))
        .expect("o2 connects");
    mediator
        .connect(Box::new(WaisWrapper::new(
            "xmlartwork",
            WaisSource::new("works", &fig1_works()),
        )))
        .expect("wais connects");
    mediator.load_program(paper::VIEW1).expect("view1 loads");

    println!("yat-mediator over the Fig. 1 federation (o2artifact, xmlartwork).");
    println!("Views: artworks(). End queries with `;`. Commands: :explain <q>;,");
    println!(":profile <q>; (EXPLAIN ANALYZE), :naive on|off, :views, :sources,");
    println!(":traffic, :quit.");

    let stdin = io::stdin();
    let mut buffer = String::new();
    let mut naive = false;
    prompt(&buffer);
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        buffer.push_str(&line);
        buffer.push('\n');
        let trimmed = buffer.trim().to_string();
        if trimmed == ":quit" || trimmed == ":q" {
            break;
        }
        if let Some(cmd) = command(&trimmed, &mediator, &mut naive) {
            if cmd {
                buffer.clear();
            }
            prompt(&buffer);
            continue;
        }
        if !trimmed.ends_with(';') {
            prompt(&buffer);
            continue;
        }
        let (mode, query) = if let Some(rest) = trimmed.strip_prefix(":explain") {
            (Mode::Explain, rest.trim_end_matches(';').to_string())
        } else if let Some(rest) = trimmed.strip_prefix(":profile") {
            (Mode::Profile, rest.trim_end_matches(';').to_string())
        } else {
            (Mode::Run, trimmed.trim_end_matches(';').to_string())
        };
        run_query(&mediator, &query, naive, mode);
        buffer.clear();
        prompt(&buffer);
    }
    println!("bye.");
}

fn prompt(buffer: &str) {
    if buffer.trim().is_empty() {
        print!("yat> ");
    } else {
        print!("...> ");
    }
    let _ = io::stdout().flush();
}

/// Handles `:`-commands that are complete on one line. Returns `Some(true)`
/// when a command consumed the buffer.
fn command(input: &str, mediator: &Mediator, naive: &mut bool) -> Option<bool> {
    match input {
        ":views" => {
            for (name, rule) in mediator.view_rules() {
                println!("{name}() :=\n{rule}");
            }
            Some(true)
        }
        ":sources" => {
            for (name, iface) in mediator.interfaces() {
                println!("{iface}");
                let _ = name;
            }
            Some(true)
        }
        ":traffic" => {
            let t = mediator.traffic();
            println!(
                "{} bytes over {} round trips, {} documents received",
                t.total_bytes(),
                t.round_trips,
                t.documents_received
            );
            Some(true)
        }
        ":naive on" => {
            *naive = true;
            println!("optimizer off (naive evaluation).");
            Some(true)
        }
        ":naive off" => {
            *naive = false;
            println!("optimizer on.");
            Some(true)
        }
        _ => None,
    }
}

/// What to do with a parsed query.
enum Mode {
    Run,
    Explain,
    Profile,
}

fn run_query(mediator: &Mediator, query: &str, naive: bool, mode: Mode) {
    let plan = match mediator.plan_query(query) {
        Ok(p) => p,
        Err(e) => {
            println!("error: {e}");
            return;
        }
    };
    let options = if naive {
        OptimizerOptions::naive()
    } else {
        OptimizerOptions::default()
    };
    let (optimized, trace) = mediator.optimize(&plan, options);
    match mode {
        Mode::Explain => {
            println!("naive plan:\n{}", plan.explain());
            println!(
                "optimized plan ({} rewrites):\n{}",
                trace.steps.len(),
                optimized.explain()
            );
        }
        Mode::Profile => match mediator.explain_with_trace(&optimized, Some(trace)) {
            Ok(explain) => print!("{}", explain.render()),
            Err(e) => println!("error: {e}"),
        },
        Mode::Run => {
            let started = std::time::Instant::now();
            match mediator.execute(&optimized) {
                Ok(EvalOut::Tree(t)) => println!("{t}"),
                Ok(EvalOut::Tab(t)) => println!("{t}"),
                Err(e) => println!("error: {e}"),
            }
            println!("({:?}, {} rewrites)", started.elapsed(), trace.steps.len());
        }
    }
}
