//! # yat — reproduction of "On Wrapping Query Languages and Efficient XML
//! Integration" (SIGMOD 2000)
//!
//! This façade crate re-exports the whole workspace. See the individual
//! crates for the subsystems:
//!
//! | crate | contents |
//! |---|---|
//! | [`yat_xml`] | XML parser/serializer (the wire format) |
//! | [`yat_model`] | YAT trees, patterns, instantiation, filters |
//! | [`yat_algebra`] | the YAT XML algebra and its evaluator |
//! | [`yat_yatl`] | the YATL language and its algebraic translation |
//! | [`yat_capability`] | source-capability descriptions (Fig. 6) |
//! | [`yat_oql`] | ODMG object store + OQL + the O2 wrapper |
//! | [`yat_wais`] | full-text XML source + the xmlwais wrapper |
//! | [`yat_cache`] | cross-query semantic answer cache |
//! | [`yat_store`] | persistent segmented document store |
//! | [`yat_mediator`] | composition, the 3-round optimizer, execution |
//! | [`yat_server`] | the mediator served over TCP: admission control, worker pool |

pub use yat_algebra;
pub use yat_cache;
pub use yat_capability;
pub use yat_mediator;
pub use yat_model;
pub use yat_oql;
pub use yat_server;
pub use yat_store;
pub use yat_wais;
pub use yat_xml;
pub use yat_yatl;
