//! The algebraic translation of YATL rules (Section 3.2, Fig. 5).
//!
//! Translation steps, quoted from the paper:
//!
//! 1. named documents are the input operations of the algebraic expression;
//! 2. each `MATCH` statement translates into a *Bind* operation;
//! 3. predicates involving various inputs translate into *Join* operations;
//! 4. other predicates in the `WHERE` clause translate into *Select*;
//! 5. the `MAKE` clause translates into a *Tree* operation.
//!
//! The translation is deliberately naive — it produces the "before"
//! expressions of Figs. 5, 8 and 9; all cleverness lives in the optimizer
//! (`yat-mediator`).

use crate::ast::Rule;
use std::sync::Arc;
use yat_algebra::{Alg, Pred};

/// Translates a rule into an algebra plan following the five steps above.
pub fn translate(rule: &Rule) -> Arc<Alg> {
    // steps 1 + 2: one Bind(Source) per MATCH clause
    let binds: Vec<(Arc<Alg>, Vec<String>)> = rule
        .matches
        .iter()
        .map(|m| {
            let plan = Alg::bind(Alg::source(m.source.clone()), m.filter.clone());
            let vars = m.filter.variables();
            (plan, vars)
        })
        .collect();

    // partition WHERE conjuncts: a predicate "involves various inputs"
    // when its variables span more than one MATCH clause
    let clause_of = |v: &str| -> Option<usize> {
        binds
            .iter()
            .position(|(_, vars)| vars.iter().any(|x| x == v))
    };
    let mut join_preds: Vec<Pred> = Vec::new();
    let mut select_preds: Vec<Pred> = Vec::new();
    for conj in rule.where_pred.conjuncts() {
        let clauses: std::collections::BTreeSet<usize> =
            conj.vars().iter().filter_map(|v| clause_of(v)).collect();
        if clauses.len() > 1 {
            join_preds.push(conj.clone());
        } else {
            select_preds.push(conj.clone());
        }
    }

    // step 3: fold the binds left-to-right, attaching each join predicate
    // at the first point where all its variables are in scope
    let mut iter = binds.into_iter();
    let (mut plan, mut in_scope) = iter.next().expect("a rule has at least one MATCH clause");
    for (bind, vars) in iter {
        let scope_after: Vec<String> = in_scope.iter().chain(vars.iter()).cloned().collect();
        let (now, later): (Vec<Pred>, Vec<Pred>) = join_preds
            .into_iter()
            .partition(|p| p.vars().iter().all(|v| scope_after.iter().any(|s| s == v)));
        join_preds = later;
        plan = Alg::join(plan, bind, Pred::from_conjuncts(now));
        in_scope = scope_after;
    }
    // any join predicate that never became fully scoped degrades to a
    // selection (it will fail at evaluation if truly unresolvable)
    select_preds.extend(join_preds);

    // step 4: remaining predicates
    let residual = Pred::from_conjuncts(select_preds);
    if residual != Pred::True {
        plan = Alg::select(plan, residual);
    }

    // step 5: MAKE becomes Tree
    Alg::tree(plan, rule.make.clone())
}
