//! The YATL abstract syntax: rules over filters (from `yat-model`),
//! templates and predicates (from `yat-algebra`).

use std::fmt;
use yat_algebra::{Pred, Template};
use yat_model::Filter;

/// One `source WITH filter` clause of a `MATCH`.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchClause {
    /// The named document/extent/view matched against.
    pub source: String,
    /// The filter applied to it.
    pub filter: Filter,
}

/// A YATL rule: `name() := MAKE t MATCH m... WHERE p`.
///
/// A *query* is an anonymous rule (`name == None`).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The rule's name, defining a view/document, or `None` for ad-hoc
    /// queries.
    pub name: Option<String>,
    /// The construction template of the `MAKE` clause.
    pub make: Template,
    /// The `MATCH` clauses, in order.
    pub matches: Vec<MatchClause>,
    /// The `WHERE` predicate (`Pred::True` when absent).
    pub where_pred: Pred,
}

impl Rule {
    /// Names of the documents this rule reads.
    pub fn inputs(&self) -> Vec<&str> {
        self.matches.iter().map(|m| m.source.as_str()).collect()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            writeln!(f, "{n}() :=")?;
        }
        writeln!(f, "MAKE {}", self.make)?;
        for (i, m) in self.matches.iter().enumerate() {
            let kw = if i == 0 { "MATCH" } else { "     " };
            let sep = if i + 1 < self.matches.len() { "," } else { "" };
            writeln!(f, "{kw} {} WITH {}{sep}", m.source, m.filter)?;
        }
        if self.where_pred != Pred::True {
            writeln!(f, "WHERE {}", yatl_pred(&self.where_pred))?;
        }
        Ok(())
    }
}

/// Renders a predicate in YATL surface syntax (`AND`/`OR`/`NOT` instead of
/// the algebra's `∧`/`∨`/`¬`), so printed rules re-parse.
pub fn yatl_pred(p: &Pred) -> String {
    match p {
        Pred::And(a, b) => format!("{} AND {}", yatl_pred(a), yatl_pred(b)),
        Pred::Or(a, b) => format!("({} OR {})", yatl_pred(a), yatl_pred(b)),
        Pred::Not(x) => format!("NOT ({})", yatl_pred(x)),
        other => other.to_string(),
    }
}

/// A YATL integration program: a sequence of rules (`view1.yat`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Finds a named rule.
    pub fn rule(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name.as_deref() == Some(name))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}
