//! Recursive-descent parser for YATL.
//!
//! The grammar follows the paper's examples with these normalizations,
//! each preserving the figures' surface syntax:
//!
//! * `label: f` and `label. f` both chain vertically (the paper uses `:`
//!   in filters and `.` in path-style queries like Q1);
//! * `label * f` is sugar for `label [ * f ]` (`set *class: ...`,
//!   `works *work [...]`);
//! * after a dot, a bracket group distributes over the previous node:
//!   `doc.work.[ title.$t, more.cplace.$cl ]`;
//! * in `MAKE`, `*&skolem($a,$b) := body` and `*&skolem($a,$b): body` are
//!   both accepted (the paper prints `:=`);
//! * `Int`, `Float`, `Bool`, `String` are atomic-type leaves, and
//!   `Symbol` is the any-symbol metamodel label, when used without
//!   children.

use crate::ast::{MatchClause, Program, Rule};
use crate::lexer::{lex, LexError, Spanned, Tok};
use std::fmt;
use yat_algebra::{CmpOp, Operand, Pred, Template};
use yat_model::{Atom, AtomType, Edge, Filter, PLabel, Pattern};

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line (0 = end of input).
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "YATL parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parses a whole integration program (a sequence of rules).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser::new(src)?;
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.rule()?);
        while p.eat(&Tok::Semi) {}
    }
    Ok(Program { rules })
}

/// Parses a single rule or query.
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(src)?;
    let r = p.rule()?;
    while p.eat(&Tok::Semi) {}
    p.expect_end()?;
    Ok(r)
}

/// Parses a standalone filter (used by tests and the capability layer).
pub fn parse_filter(src: &str) -> Result<Filter, ParseError> {
    let mut p = Parser::new(src)?;
    let f = p.filter()?;
    p.expect_end()?;
    Ok(f)
}

/// Parses a standalone `MAKE` template.
pub fn parse_template(src: &str) -> Result<Template, ParseError> {
    let mut p = Parser::new(src)?;
    let t = p.template()?;
    p.expect_end()?;
    Ok(t)
}

/// Parses a standalone predicate.
pub fn parse_pred(src: &str) -> Result<Pred, ParseError> {
    let mut p = Parser::new(src)?;
    let t = p.pred()?;
    p.expect_end()?;
    Ok(t)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{t}`, found {}",
                self.peek()
                    .map(|p| format!("`{p}`"))
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing `{}`",
                self.peek().expect("not at end")
            )))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!(
                "expected identifier, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn var(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Var(v)) => Ok(v),
            other => Err(self.err(format!(
                "expected variable, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    // ---- rules -----------------------------------------------------

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let name =
            if matches!(self.peek(), Some(Tok::Ident(_))) && self.peek2() == Some(&Tok::LParen) {
                let n = self.ident()?;
                self.expect(&Tok::LParen)?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Assign)?;
                Some(n)
            } else {
                None
            };
        self.expect(&Tok::Make)?;
        let make = self.template()?;
        self.expect(&Tok::Match)?;
        let mut matches = vec![self.match_clause()?];
        while self.eat(&Tok::Comma) {
            matches.push(self.match_clause()?);
        }
        let where_pred = if self.eat(&Tok::Where) {
            self.pred()?
        } else {
            Pred::True
        };
        Ok(Rule {
            name,
            make,
            matches,
            where_pred,
        })
    }

    fn match_clause(&mut self) -> Result<MatchClause, ParseError> {
        let source = self.ident()?;
        self.expect(&Tok::With)?;
        let filter = self.filter()?;
        Ok(MatchClause { source, filter })
    }

    // ---- filters ----------------------------------------------------

    /// filter := chain ("|" chain)*
    pub(crate) fn filter(&mut self) -> Result<Filter, ParseError> {
        let first = self.chain()?;
        if self.peek() != Some(&Tok::Pipe) {
            return Ok(first);
        }
        let mut branches = vec![first];
        while self.eat(&Tok::Pipe) {
            branches.push(self.chain()?);
        }
        Ok(Pattern::Union(branches))
    }

    /// chain := prim (("." | ":") rest)?
    fn chain(&mut self) -> Result<Filter, ParseError> {
        let node = self.prim()?;
        if !(self.peek() == Some(&Tok::Dot) || self.peek() == Some(&Tok::Colon)) {
            return Ok(node);
        }
        self.bump();
        let edges = if self.peek() == Some(&Tok::LBrack) {
            // distributed group: doc.work.[a, b]
            self.fields()?
        } else {
            vec![Edge::one(self.filter()?)]
        };
        match node {
            Pattern::Node {
                label,
                edges: mut existing,
            } => {
                existing.extend(edges);
                Ok(Pattern::Node {
                    label,
                    edges: existing,
                })
            }
            other => Err(self.err(format!("cannot chain children onto `{other}`"))),
        }
    }

    fn prim(&mut self) -> Result<Filter, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Var(_)) => {
                let v = self.var()?;
                Ok(Pattern::TreeVar(v))
            }
            Some(Tok::Underscore) => {
                self.bump();
                Ok(Pattern::Wildcard)
            }
            Some(Tok::Amp) => {
                self.bump();
                let n = self.ident()?;
                Ok(Pattern::Ref(n))
            }
            Some(Tok::Str(s)) => {
                self.bump();
                Ok(Pattern::constant(s))
            }
            Some(Tok::Int(i)) => {
                self.bump();
                Ok(Pattern::constant(i))
            }
            Some(Tok::Float(x)) => {
                self.bump();
                Ok(Pattern::constant(x))
            }
            Some(Tok::Tilde) => {
                self.bump();
                let v = self.var()?;
                let edges = self.opt_fields()?;
                Ok(Pattern::Node {
                    label: PLabel::Var(v),
                    edges,
                })
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                let edges = self.opt_fields()?;
                if edges.is_empty() {
                    if let Some(ty) = AtomType::from_name(&name) {
                        return Ok(Pattern::atom(ty));
                    }
                    if name == "Symbol" {
                        return Ok(Pattern::Node {
                            label: PLabel::AnySym,
                            edges: vec![],
                        });
                    }
                    if name == "Any" {
                        return Ok(Pattern::Node {
                            label: PLabel::Any,
                            edges: vec![],
                        });
                    }
                }
                Ok(Pattern::sym(name, edges))
            }
            other => Err(self.err(format!(
                "expected a filter, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    /// Immediate `[fields]` or `* starfield` sugar after a label.
    fn opt_fields(&mut self) -> Result<Vec<Edge>, ParseError> {
        if self.peek() == Some(&Tok::LBrack) {
            self.fields()
        } else if self.peek() == Some(&Tok::Star) {
            self.bump();
            Ok(vec![self.star_field()?])
        } else {
            Ok(vec![])
        }
    }

    fn fields(&mut self) -> Result<Vec<Edge>, ParseError> {
        self.expect(&Tok::LBrack)?;
        let mut edges = Vec::new();
        if self.peek() != Some(&Tok::RBrack) {
            edges.push(self.field()?);
            while self.eat(&Tok::Comma) {
                edges.push(self.field()?);
            }
        }
        self.expect(&Tok::RBrack)?;
        Ok(edges)
    }

    fn field(&mut self) -> Result<Edge, ParseError> {
        if self.eat(&Tok::Star) {
            self.star_field()
        } else if self.eat(&Tok::Quest) {
            Ok(Edge::opt(self.filter()?))
        } else {
            Ok(Edge::one(self.filter()?))
        }
    }

    /// After a `*`: `($v)` collect, `$v` / `$v: f` iterate, or a plain
    /// star edge.
    fn star_field(&mut self) -> Result<Edge, ParseError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.bump();
                let v = self.var()?;
                self.expect(&Tok::RParen)?;
                let pat = if self.eat(&Tok::Colon) {
                    self.filter()?
                } else {
                    Pattern::Wildcard
                };
                Ok(Edge::star_collect(v, pat))
            }
            Some(Tok::Var(_)) => {
                let v = self.var()?;
                let pat = if self.eat(&Tok::Colon) {
                    self.filter()?
                } else {
                    Pattern::Wildcard
                };
                Ok(Edge::star_iter(v, pat))
            }
            _ => Ok(Edge::star(self.filter()?)),
        }
    }

    // ---- templates ---------------------------------------------------

    pub(crate) fn template(&mut self) -> Result<Template, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Var(_)) => {
                let v = self.var()?;
                Ok(Template::Var(v))
            }
            Some(Tok::Str(s)) => {
                self.bump();
                Ok(Template::Text(s))
            }
            Some(Tok::Star) => {
                self.bump();
                self.tgroup()
            }
            Some(Tok::Tilde) => {
                self.bump();
                let v = self.var()?;
                let children = self.tchildren()?;
                Ok(Template::LabelVar { var: v, children })
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                let children = self.tchildren()?;
                Ok(Template::Sym { name, children })
            }
            other => Err(self.err(format!(
                "expected a template, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    /// Children of a template node: `[items]`, `* group` sugar, or
    /// `: template` (single child).
    fn tchildren(&mut self) -> Result<Vec<Template>, ParseError> {
        if self.peek() == Some(&Tok::LBrack) {
            self.bump();
            let mut items = Vec::new();
            if self.peek() != Some(&Tok::RBrack) {
                items.push(self.titem()?);
                while self.eat(&Tok::Comma) {
                    items.push(self.titem()?);
                }
            }
            self.expect(&Tok::RBrack)?;
            Ok(items)
        } else if self.peek() == Some(&Tok::Star) {
            self.bump();
            Ok(vec![self.tgroup()?])
        } else if self.peek() == Some(&Tok::Colon) {
            self.bump();
            Ok(vec![self.template()?])
        } else {
            Ok(vec![])
        }
    }

    /// `title: $t` within brackets, plus nested templates and groups.
    fn titem(&mut self) -> Result<Template, ParseError> {
        if self.eat(&Tok::Star) {
            return self.tgroup();
        }
        // `label: value` / `label * group` / `label[...]` / bare template
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            self.bump();
            let children = self.tchildren()?;
            return Ok(Template::Sym { name, children });
        }
        self.template()
    }

    /// After a `*` in a template: Skolem group, plain group, or variable
    /// splice sugar (`owners *$o`).
    fn tgroup(&mut self) -> Result<Template, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Amp) => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::LParen)?;
                let mut key = vec![self.var()?];
                while self.eat(&Tok::Comma) {
                    key.push(self.var()?);
                }
                self.expect(&Tok::RParen)?;
                if !self.eat(&Tok::Assign) {
                    self.expect(&Tok::Colon)?;
                }
                let body = self.template()?;
                Ok(Template::Group {
                    key,
                    skolem: Some(name),
                    body: Box::new(body),
                })
            }
            Some(Tok::LParen) => {
                self.bump();
                let mut key = vec![self.var()?];
                while self.eat(&Tok::Comma) {
                    key.push(self.var()?);
                }
                self.expect(&Tok::RParen)?;
                if !self.eat(&Tok::Assign) {
                    self.expect(&Tok::Colon)?;
                }
                let body = self.template()?;
                Ok(Template::Group {
                    key,
                    skolem: None,
                    body: Box::new(body),
                })
            }
            Some(Tok::Var(_)) => {
                let v = self.var()?;
                Ok(Template::Var(v))
            }
            _ => Err(self.err("expected a group (`&f($v): t`, `($v): t`) or variable after `*`")),
        }
    }

    // ---- predicates ----------------------------------------------------

    pub(crate) fn pred(&mut self) -> Result<Pred, ParseError> {
        let mut left = self.pred_and()?;
        while self.eat(&Tok::Or) {
            let right = self.pred_and()?;
            left = Pred::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> Result<Pred, ParseError> {
        let mut left = self.pred_atom()?;
        while self.eat(&Tok::And) {
            let right = self.pred_atom()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn pred_atom(&mut self) -> Result<Pred, ParseError> {
        if self.eat(&Tok::Not) {
            return Ok(Pred::Not(Box::new(self.pred_atom()?)));
        }
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            let p = self.pred()?;
            self.expect(&Tok::RParen)?;
            return Ok(p);
        }
        // function-style predicate: contains($w, "x") — unless a
        // comparison operator follows, in which case the call is an operand
        // (`current_price($x) <= 200000.00`)
        if matches!(self.peek(), Some(Tok::Ident(_))) && self.peek2() == Some(&Tok::LParen) {
            let name = self.ident()?;
            self.expect(&Tok::LParen)?;
            let mut args = Vec::new();
            if self.peek() != Some(&Tok::RParen) {
                args.push(self.operand()?);
                while self.eat(&Tok::Comma) {
                    args.push(self.operand()?);
                }
            }
            self.expect(&Tok::RParen)?;
            if !matches!(
                self.peek(),
                Some(Tok::Eq | Tok::Ne | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge)
            ) {
                return Ok(Pred::Call { name, args });
            }
            let op = match self.bump().expect("peeked") {
                Tok::Eq => CmpOp::Eq,
                Tok::Ne => CmpOp::Ne,
                Tok::Lt => CmpOp::Lt,
                Tok::Le => CmpOp::Le,
                Tok::Gt => CmpOp::Gt,
                Tok::Ge => CmpOp::Ge,
                _ => unreachable!("matched above"),
            };
            let right = self.operand()?;
            return Ok(Pred::Cmp {
                op,
                left: Operand::Call { name, args },
                right,
            });
        }
        let left = self.operand()?;
        let op = match self.bump() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            other => {
                return Err(self.err(format!(
                    "expected comparison operator, found {}",
                    other
                        .map(|t| format!("`{t}`"))
                        .unwrap_or_else(|| "end of input".into())
                )))
            }
        };
        let right = self.operand()?;
        Ok(Pred::Cmp { op, left, right })
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Var(_)) => Ok(Operand::Var(self.var()?)),
            Some(Tok::Str(s)) => {
                self.bump();
                Ok(Operand::Const(Atom::Str(s)))
            }
            Some(Tok::Int(i)) => {
                self.bump();
                Ok(Operand::Const(Atom::Int(i)))
            }
            Some(Tok::Float(x)) => {
                self.bump();
                Ok(Operand::Const(Atom::Float(x)))
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                if name == "true" {
                    return Ok(Operand::Const(Atom::Bool(true)));
                }
                if name == "false" {
                    return Ok(Operand::Const(Atom::Bool(false)));
                }
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    args.push(self.operand()?);
                    while self.eat(&Tok::Comma) {
                        args.push(self.operand()?);
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(Operand::Call { name, args })
            }
            other => Err(self.err(format!(
                "expected an operand, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }
}
