//! The paper's running example, as reusable YATL sources: the `view1.yat`
//! integration view (Section 2), query **Q1** ("artifacts created at
//! Giverny") and query **Q2** ("impressionist artworks sold for less than
//! 200,000").
//!
//! The whole workspace reproduces figures against these exact texts:
//! `yat-mediator` composes and optimizes them (Figs. 5, 8, 9), and
//! `yat-bench` measures the optimizations on them.

use crate::ast::Rule;
use crate::parser::parse_rule;

/// `view1.yat`: integrates the O2 `artifacts` extent with the XML-Wais
/// `works` documents into a collection of `artwork` documents, one per
/// known artwork (Section 2).
///
/// Naming note: the O2 wrapper exports `artifacts`, the Wais wrapper
/// exports `works`, and this rule defines the integrated view `artworks`.
pub const VIEW1: &str = r#"
artworks() :=
MAKE doc *&artwork($t,$c) := work [ title: $t, artist: $a,
       year: $y, price: $p,
       style: $s, size: $si,
       owners *$o, more: $fields ]
MATCH artifacts WITH
    set *class: artifact:
         tuple [ title: $t, year: $y,
                 creator: $c, price: $p,
                 owners: list *class: person:
                    tuple [ name: $o,
                            auction: $au ] ],
      works WITH
    works *work [ artist: $a,
                  title: $t', style: $s,
                  size: $si, *($fields) ]
WHERE $y > 1800 AND $c = $a AND $t = $t'
"#;

/// **Q1**: "What are the artifacts created at Giverny?" — accesses the
/// semistructured fields of the view's artwork documents.
pub const Q1: &str = r#"
MAKE $t
MATCH artworks WITH doc.work.[ title.$t, more.cplace.$cl ]
WHERE $cl = "Giverny"
"#;

/// **Q2**: "Which impressionist artworks are sold for less than
/// 200,000.00?" — touches both the full-text source (style) and the O2
/// source (price).
pub const Q2: &str = r#"
MAKE answers *($t,$a,$p) := answer [ title: $t, artist: $a, price: $p ]
MATCH artworks WITH doc.work.[ title.$t, artist.$a, price.$p, style.$s ]
WHERE $s = "Impressionist" AND $p <= 200000.00
"#;

/// Parses [`VIEW1`].
pub fn view1() -> Rule {
    parse_rule(VIEW1).expect("VIEW1 is well-formed")
}

/// Parses [`Q1`].
pub fn q1() -> Rule {
    parse_rule(Q1).expect("Q1 is well-formed")
}

/// Parses [`Q2`].
pub fn q2() -> Rule {
    parse_rule(Q2).expect("Q2 is well-formed")
}
