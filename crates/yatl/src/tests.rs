//! Parser and translation tests, including the paper's view and queries.

use crate::parser::{parse_filter, parse_pred, parse_program, parse_rule, parse_template};
use crate::{paper, translate};
use yat_algebra::{Alg, CmpOp, Operand, Pred, Template};
use yat_model::{AtomType, Edge, Occ, PLabel, Pattern, StarBind};

// ---- filters ---------------------------------------------------------

#[test]
fn filter_elem_var() {
    assert_eq!(
        parse_filter("title: $t").unwrap(),
        Pattern::elem_var("title", "t")
    );
    assert_eq!(
        parse_filter("title.$t").unwrap(),
        Pattern::elem_var("title", "t")
    );
}

#[test]
fn filter_bracket_fields() {
    let f = parse_filter("work [ title: $t, artist: $a ]").unwrap();
    assert_eq!(
        f,
        Pattern::sym(
            "work",
            vec![
                Edge::one(Pattern::elem_var("title", "t")),
                Edge::one(Pattern::elem_var("artist", "a")),
            ]
        )
    );
}

#[test]
fn filter_star_sugar_and_chain() {
    // `set *class: artifact: tuple [...]` — star sugar + colon chaining
    let f = parse_filter("set *class: artifact: tuple [ title: $t ]").unwrap();
    let Pattern::Node { label, edges } = &f else {
        panic!()
    };
    assert_eq!(label, &PLabel::Sym("set".into()));
    assert_eq!(edges.len(), 1);
    assert_eq!(edges[0].occ, Occ::Star);
    let Pattern::Node { label, edges } = &edges[0].pattern else {
        panic!()
    };
    assert_eq!(label, &PLabel::Sym("class".into()));
    let Pattern::Node { label, .. } = &edges[0].pattern else {
        panic!()
    };
    assert_eq!(label, &PLabel::Sym("artifact".into()));
}

#[test]
fn filter_star_variants() {
    // iterate with variable
    let f = parse_filter("owners [ *$o ]").unwrap();
    let Pattern::Node { edges, .. } = &f else {
        panic!()
    };
    assert_eq!(edges[0].star_var, Some(("o".into(), StarBind::Iterate)));
    // iterate with variable and pattern
    let f = parse_filter("doc *$w: work").unwrap();
    let Pattern::Node { edges, .. } = &f else {
        panic!()
    };
    assert_eq!(edges[0].star_var, Some(("w".into(), StarBind::Iterate)));
    assert_eq!(edges[0].pattern, Pattern::sym("work", vec![]));
    // collect
    let f = parse_filter("work [ *($fields) ]").unwrap();
    let Pattern::Node { edges, .. } = &f else {
        panic!()
    };
    assert_eq!(
        edges[0].star_var,
        Some(("fields".into(), StarBind::Collect))
    );
    // plain star edge
    let f = parse_filter("works *work").unwrap();
    let Pattern::Node { edges, .. } = &f else {
        panic!()
    };
    assert_eq!(edges[0].star_var, None);
    assert_eq!(edges[0].occ, Occ::Star);
}

#[test]
fn filter_q1_path_syntax() {
    let f = parse_filter("doc.work.[ title.$t, more.cplace.$cl ]").unwrap();
    assert_eq!(
        f,
        Pattern::sym(
            "doc",
            vec![Edge::one(Pattern::sym(
                "work",
                vec![
                    Edge::one(Pattern::elem_var("title", "t")),
                    Edge::one(Pattern::sym(
                        "more",
                        vec![Edge::one(Pattern::elem_var("cplace", "cl"))]
                    )),
                ]
            ))]
        )
    );
}

#[test]
fn filter_specials() {
    assert_eq!(parse_filter("_").unwrap(), Pattern::Wildcard);
    assert_eq!(
        parse_filter("&Person").unwrap(),
        Pattern::Ref("Person".into())
    );
    assert_eq!(parse_filter("Int").unwrap(), Pattern::atom(AtomType::Int));
    assert_eq!(
        parse_filter("Symbol").unwrap(),
        Pattern::Node {
            label: PLabel::AnySym,
            edges: vec![]
        }
    );
    assert_eq!(
        parse_filter("\"Giverny\"").unwrap(),
        Pattern::constant("Giverny")
    );
    assert_eq!(parse_filter("1897").unwrap(), Pattern::constant(1897));
    // atom-type *name* with children is a plain symbol node
    let f = parse_filter("Int [ $x ]").unwrap();
    assert!(matches!(&f, Pattern::Node { label: PLabel::Sym(s), .. } if s == "Int"));
    // optional edge
    let f = parse_filter("work [ ?cplace: $c ]").unwrap();
    let Pattern::Node { edges, .. } = &f else {
        panic!()
    };
    assert_eq!(edges[0].occ, Occ::Opt);
    // label variable node
    let f = parse_filter("~$n [ $v ]").unwrap();
    assert!(matches!(&f, Pattern::Node { label: PLabel::Var(n), .. } if n == "n"));
}

#[test]
fn filter_union() {
    let f = parse_filter("Int | String | &Class").unwrap();
    assert_eq!(
        f,
        Pattern::Union(vec![
            Pattern::atom(AtomType::Int),
            Pattern::atom(AtomType::Str),
            Pattern::Ref("Class".into()),
        ])
    );
}

#[test]
fn filter_errors() {
    assert!(
        parse_filter("$x: y").is_err(),
        "cannot chain from a variable"
    );
    assert!(parse_filter("work [").is_err());
    assert!(parse_filter("work ]").is_err());
    assert!(parse_filter("").is_err());
}

// ---- templates ---------------------------------------------------------

#[test]
fn template_make_clause_of_view1() {
    let t = parse_template("doc *&artwork($t,$c) := work [ title: $t, owners *$o, more: $fields ]")
        .unwrap();
    assert_eq!(
        t,
        Template::sym(
            "doc",
            vec![Template::skolem_group(
                "artwork",
                &["t", "c"],
                Template::sym(
                    "work",
                    vec![
                        Template::elem_var("title", "t"),
                        Template::sym("owners", vec![Template::Var("o".into())]),
                        Template::elem_var("more", "fields"),
                    ]
                )
            )]
        )
    );
}

#[test]
fn template_variants() {
    assert_eq!(parse_template("$t").unwrap(), Template::Var("t".into()));
    assert_eq!(parse_template("\"x\"").unwrap(), Template::Text("x".into()));
    let t = parse_template("s *($a) := artist [ name: $a ]").unwrap();
    assert_eq!(
        t,
        Template::sym(
            "s",
            vec![Template::group(
                &["a"],
                Template::sym("artist", vec![Template::elem_var("name", "a")])
            )]
        )
    );
    let t = parse_template("~$n [ $v ]").unwrap();
    assert_eq!(
        t,
        Template::LabelVar {
            var: "n".into(),
            children: vec![Template::Var("v".into())]
        }
    );
    assert!(parse_template("s * [x]").is_err());
}

// ---- predicates ----------------------------------------------------------

#[test]
fn pred_precedence_and_forms() {
    let p = parse_pred("$y > 1800 AND $c = $a OR NOT $x != 3").unwrap();
    // AND binds tighter than OR
    assert!(matches!(p, Pred::Or(_, _)));
    let p = parse_pred("contains($w, \"Impressionist\")").unwrap();
    assert_eq!(
        p,
        Pred::Call {
            name: "contains".into(),
            args: vec![Operand::var("w"), Operand::Const("Impressionist".into())]
        }
    );
    let p = parse_pred("current_price($x) <= 200000.00").unwrap();
    assert_eq!(
        p,
        Pred::cmp(
            CmpOp::Le,
            Operand::Call {
                name: "current_price".into(),
                args: vec![Operand::var("x")]
            },
            Operand::cst(200000.0)
        )
    );
    let p = parse_pred("( $a = $b )").unwrap();
    assert_eq!(p, Pred::var_eq("a", "b"));
    assert!(parse_pred("$a").is_err());
}

// ---- rules & programs ---------------------------------------------------

#[test]
fn view1_parses_with_both_sources() {
    let r = paper::view1();
    assert_eq!(r.name.as_deref(), Some("artworks"));
    assert_eq!(r.inputs(), vec!["artifacts", "works"]);
    // the filter variables of the two clauses
    assert_eq!(
        r.matches[0].filter.variables(),
        vec!["t", "y", "c", "p", "o", "au"]
    );
    assert_eq!(
        r.matches[1].filter.variables(),
        vec!["a", "t'", "s", "si", "fields"]
    );
    // WHERE has three conjuncts
    assert_eq!(r.where_pred.conjuncts().len(), 3);
}

#[test]
fn q1_parses() {
    let r = paper::q1();
    assert_eq!(r.name, None);
    assert_eq!(r.inputs(), vec!["artworks"]);
    assert_eq!(r.make, Template::Var("t".into()));
    assert_eq!(r.where_pred, Pred::eq_const("cl", "Giverny"));
}

#[test]
fn q2_parses() {
    let r = paper::q2();
    assert_eq!(r.inputs(), vec!["artworks"]);
    let Template::Sym { name, children } = &r.make else {
        panic!()
    };
    assert_eq!(name, "answers");
    assert!(
        matches!(&children[0], Template::Group { key, skolem: None, .. } if key == &["t", "a", "p"])
    );
}

#[test]
fn program_with_multiple_rules() {
    let src = format!(
        "{}\n;\n{}",
        paper::VIEW1,
        "extra() := MAKE $t MATCH artworks WITH doc *$t"
    );
    let prog = parse_program(&src).unwrap();
    assert_eq!(prog.rules.len(), 2);
    assert!(prog.rule("artworks").is_some());
    assert!(prog.rule("extra").is_some());
    assert!(prog.rule("nope").is_none());
}

#[test]
fn rule_display_reparses() {
    let r = paper::view1();
    let printed = r.to_string();
    let again = parse_rule(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
    assert_eq!(r.matches, again.matches);
    assert_eq!(r.where_pred, again.where_pred);
    assert_eq!(r.make, again.make);
}

// ---- translation (Fig. 5) ------------------------------------------------

#[test]
fn fig5_view_translation_shape() {
    // Tree( Join_{t=t'}( Select/Bind(artifacts), Bind(works) ) ) with the
    // single-input predicate $y > 1800 in a Select — the left side of Fig. 5.
    let plan = translate(&paper::view1());
    let explain = plan.explain();
    let lines: Vec<&str> = explain.lines().map(str::trim_start).collect();
    assert!(
        lines[0].starts_with("Tree doc[*&artwork($t,$c):"),
        "{explain}"
    );
    // a Select for $y > 1800 and $c = $a? no: c=a spans both inputs → Join
    let join_line = lines
        .iter()
        .find(|l| l.starts_with("Join"))
        .expect("has a Join");
    assert!(join_line.contains("$c = $a"), "{explain}");
    assert!(join_line.contains("$t = $t'"), "{explain}");
    let select_line = lines
        .iter()
        .find(|l| l.starts_with("Select"))
        .expect("has a Select");
    assert!(select_line.contains("$y > 1800"), "{explain}");
    // both sources appear
    assert!(
        lines.iter().any(|l| l.starts_with("Source artifacts")),
        "{explain}"
    );
    assert!(
        lines.iter().any(|l| l.starts_with("Source works")),
        "{explain}"
    );
}

#[test]
fn fig5_q1_translation_shape() {
    let plan = translate(&paper::q1());
    let explain = plan.explain();
    let lines: Vec<&str> = explain.lines().map(str::trim_start).collect();
    assert_eq!(lines.len(), 4, "{explain}");
    assert!(lines[0].starts_with("Tree $t"));
    assert!(lines[1].starts_with("Select $cl = \"Giverny\""));
    assert!(lines[2].starts_with("Bind doc[work["));
    assert!(lines[3].starts_with("Source artworks"));
}

#[test]
fn translation_is_deterministic() {
    let a = translate(&paper::view1());
    let b = translate(&paper::view1());
    assert_eq!(a, b);
}

#[test]
fn single_clause_rule_has_no_join() {
    let r =
        parse_rule("MAKE $t MATCH works WITH works *work[ title: $t ] WHERE $t = \"x\"").unwrap();
    let plan = translate(&r);
    fn has_join(p: &Alg) -> bool {
        matches!(p, Alg::Join { .. }) || p.children().iter().any(|c| has_join(c))
    }
    assert!(!has_join(&plan));
}

#[test]
fn three_way_join_folds_left_to_right() {
    let r = parse_rule(
        "MAKE o [ x: $x ] \
         MATCH a WITH a [ v: $x ], b WITH b [ v: $y ], c WITH c [ v: $z ] \
         WHERE $x = $y AND $y = $z",
    )
    .unwrap();
    let plan = translate(&r);
    let explain = plan.explain();
    let joins: Vec<&str> = explain
        .lines()
        .map(str::trim_start)
        .filter(|l| l.starts_with("Join"))
        .collect();
    assert_eq!(joins.len(), 2, "{explain}");
    assert!(joins[0].contains("$y = $z"), "{explain}");
    assert!(joins[1].contains("$x = $y"), "{explain}");
}
