//! # yat-yatl — the YATL integration language (Section 2)
//!
//! YATL is the declarative rule language of the YAT system: integration
//! programs are sequences of rules whose partial results are connected by
//! Skolem functions. A rule has three clauses:
//!
//! * **MATCH** — pattern matching: filters navigate source documents and
//!   bind variables (`title: $t`, star edges, collection variables);
//! * **WHERE** — the usual predicate clause (`$y > 1800 AND $c = $a`);
//! * **MAKE** — construction: a template with grouping and Skolem
//!   functions (`doc *&artwork($t,$c): work[...]`).
//!
//! This crate provides the concrete syntax ([`parse_program`] /
//! [`parse_rule`]), the AST ([`Rule`], [`MatchClause`]) and the
//! **algebraic translation** of Section 3.2 ([`translate()`]): named
//! documents become `Source` inputs, each `MATCH` becomes a `Bind`,
//! cross-input predicates become `Join`s, remaining predicates `Select`s,
//! and the `MAKE` clause a `Tree` operation.
//!
//! The grammar follows the paper's examples, with minor normalizations
//! documented in [`parser`]:
//!
//! ```text
//! artworks() :=
//!   MAKE doc *&artwork($t,$c): work[ title: $t, artist: $a ]
//!   MATCH artifacts WITH set *class: artifact: tuple[ title: $t, year: $y ],
//!         artworks  WITH works *work[ artist: $a, title: $t' ]
//!   WHERE $y > 1800 AND $t = $t'
//! ```

pub mod ast;
pub mod lexer;
pub mod paper;
pub mod parser;
pub mod translate;

pub use ast::{MatchClause, Program, Rule};
pub use parser::{parse_filter, parse_program, parse_rule, parse_template, ParseError};
pub use translate::translate;

#[cfg(test)]
mod tests;
