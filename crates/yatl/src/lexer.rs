//! Tokenizer for YATL.

use std::fmt;

/// A YATL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keywords: `MAKE`, `MATCH`, `WITH`, `WHERE`, `AND`, `OR`, `NOT`.
    Make,
    /// `MATCH`
    Match,
    /// `WITH`
    With,
    /// `WHERE`
    Where,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// An identifier (element name, source name, function name).
    Ident(String),
    /// A variable `$t`, `$t'` (primes kept in the name).
    Var(String),
    /// A string literal.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `:=`
    Assign,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `[`
    LBrack,
    /// `]`
    RBrack,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `?`
    Quest,
    /// `_`
    Underscore,
    /// `&`
    Amp,
    /// `~`
    Tilde,
    /// `|`
    Pipe,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Make => write!(f, "MAKE"),
            Tok::Match => write!(f, "MATCH"),
            Tok::With => write!(f, "WITH"),
            Tok::Where => write!(f, "WHERE"),
            Tok::And => write!(f, "AND"),
            Tok::Or => write!(f, "OR"),
            Tok::Not => write!(f, "NOT"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Var(v) => write!(f, "${v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Assign => write!(f, ":="),
            Tok::Colon => write!(f, ":"),
            Tok::Dot => write!(f, "."),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::LBrack => write!(f, "["),
            Tok::RBrack => write!(f, "]"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Star => write!(f, "*"),
            Tok::Quest => write!(f, "?"),
            Tok::Underscore => write!(f, "_"),
            Tok::Amp => write!(f, "&"),
            Tok::Tilde => write!(f, "~"),
            Tok::Pipe => write!(f, "|"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
        }
    }
}

/// A token plus its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lexical error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes YATL source. `--` and `//` start line comments.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '-' | '/' => {
                // comment or error
                let first = chars.next().expect("peeked");
                match (first, chars.peek()) {
                    ('-', Some('-')) | ('/', Some('/')) => {
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    }
                    _ => {
                        return Err(LexError {
                            line,
                            message: format!("unexpected character `{first}`"),
                        })
                    }
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some(c @ ('"' | '\\')) => s.push(c),
                            other => {
                                return Err(LexError {
                                    line,
                                    message: format!("bad escape `\\{other:?}`"),
                                })
                            }
                        },
                        Some('\n') => {
                            return Err(LexError {
                                line,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(LexError {
                                line,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line,
                });
            }
            '$' => {
                chars.next();
                let mut v = String::new();
                while matches!(chars.peek(), Some(c) if c.is_alphanumeric() || *c == '_') {
                    v.push(chars.next().expect("peeked"));
                }
                while matches!(chars.peek(), Some('\'')) {
                    v.push(chars.next().expect("peeked"));
                }
                if v.is_empty() {
                    return Err(LexError {
                        line,
                        message: "`$` must start a variable".into(),
                    });
                }
                out.push(Spanned {
                    tok: Tok::Var(v),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_digit() || *c == '_') {
                    let c = chars.next().expect("peeked");
                    if c != '_' {
                        n.push(c);
                    }
                }
                // a fraction only if digit follows the dot (else `.` is the
                // path operator)
                let mut cl = chars.clone();
                if cl.next() == Some('.') && matches!(cl.next(), Some(d) if d.is_ascii_digit()) {
                    chars.next(); // consume '.'
                    n.push('.');
                    while matches!(chars.peek(), Some(c) if c.is_ascii_digit() || *c == '_') {
                        let c = chars.next().expect("peeked");
                        if c != '_' {
                            n.push(c);
                        }
                    }
                    let x: f64 = n.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad float literal `{n}`"),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Float(x),
                        line,
                    });
                } else {
                    let x: i64 = n.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad integer literal `{n}`"),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Int(x),
                        line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while matches!(chars.peek(), Some(c) if c.is_alphanumeric() || *c == '_' || *c == '-')
                {
                    s.push(chars.next().expect("peeked"));
                }
                let tok = match s.as_str() {
                    "MAKE" => Tok::Make,
                    "MATCH" => Tok::Match,
                    "WITH" => Tok::With,
                    "WHERE" => Tok::Where,
                    "AND" => Tok::And,
                    "OR" => Tok::Or,
                    "NOT" => Tok::Not,
                    "_" => Tok::Underscore,
                    _ => Tok::Ident(s),
                };
                out.push(Spanned { tok, line });
            }
            _ => {
                chars.next();
                let tok = match c {
                    ':' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Tok::Assign
                        } else {
                            Tok::Colon
                        }
                    }
                    '.' => Tok::Dot,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    '[' => Tok::LBrack,
                    ']' => Tok::RBrack,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '*' => Tok::Star,
                    '?' => Tok::Quest,
                    '&' => Tok::Amp,
                    '~' => Tok::Tilde,
                    '|' => Tok::Pipe,
                    '=' => Tok::Eq,
                    '!' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Tok::Ne
                        } else {
                            return Err(LexError {
                                line,
                                message: "`!` must be followed by `=`".into(),
                            });
                        }
                    }
                    '<' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    other => {
                        return Err(LexError {
                            line,
                            message: format!("unexpected character `{other}`"),
                        })
                    }
                };
                out.push(Spanned { tok, line });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_idents_vars() {
        assert_eq!(
            toks("MAKE $t MATCH artworks WITH doc WHERE $y > 1800"),
            vec![
                Tok::Make,
                Tok::Var("t".into()),
                Tok::Match,
                Tok::Ident("artworks".into()),
                Tok::With,
                Tok::Ident("doc".into()),
                Tok::Where,
                Tok::Var("y".into()),
                Tok::Gt,
                Tok::Int(1800),
            ]
        );
    }

    #[test]
    fn primed_variables() {
        assert_eq!(
            toks("$t' $t''"),
            vec![Tok::Var("t'".into()), Tok::Var("t''".into())]
        );
    }

    #[test]
    fn assign_vs_colon() {
        assert_eq!(
            toks("artworks() := a: $b"),
            vec![
                Tok::Ident("artworks".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::Assign,
                Tok::Ident("a".into()),
                Tok::Colon,
                Tok::Var("b".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_dots() {
        // 200_000.00 is a float; doc.work uses Dot tokens
        assert_eq!(toks("200000.00"), vec![Tok::Float(200000.0)]);
        assert_eq!(
            toks("doc.work.1"),
            vec![
                Tok::Ident("doc".into()),
                Tok::Dot,
                Tok::Ident("work".into()),
                Tok::Dot,
                Tok::Int(1)
            ]
        );
        assert_eq!(
            toks("10.1500.000"),
            vec![Tok::Float(10.15), Tok::Dot, Tok::Int(0)]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""Giverny" "a\"b\\c""#),
            vec![Tok::Str("Giverny".into()), Tok::Str("a\"b\\c".into())]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a -- comment\nb // another\nc").unwrap();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= != < <= > >="),
            vec![Tok::Eq, Tok::Ne, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge]
        );
        assert!(lex("!x").is_err());
    }

    #[test]
    fn punctuation() {
        assert_eq!(
            toks("[ ] ( ) * ? & ~ | , ;"),
            vec![
                Tok::LBrack,
                Tok::RBrack,
                Tok::LParen,
                Tok::RParen,
                Tok::Star,
                Tok::Quest,
                Tok::Amp,
                Tok::Tilde,
                Tok::Pipe,
                Tok::Comma,
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn bad_chars_rejected() {
        assert!(lex("a # b").is_err());
        assert!(lex("$").is_err());
        assert!(lex("-x").is_err());
    }
}
