//! Wrapper adapters used to build federations with varied behavior:
//! capability-profile narrowing and induced failures (the kill-k-of-N
//! differential axis and the partial-failure tests).

use yat_capability::protocol::{Request, Response, WrapperServer};

/// Narrows a wrapper to a fetch-only capability profile: its interface
/// is re-exported with no operations and no equivalences, so the
/// optimizer can neither push fragments to it nor introduce `contains`
/// for it, and `Execute` requests are refused. Documents still serve.
pub struct FetchOnly<W: WrapperServer>(pub W);

impl<W: WrapperServer> WrapperServer for FetchOnly<W> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn handle(&self, request: &Request) -> Response {
        match request {
            Request::GetInterface => match self.0.handle(request) {
                Response::Interface(mut iface) => {
                    iface.operations.clear();
                    iface.equivalences.clear();
                    Response::Interface(iface)
                }
                other => other,
            },
            Request::Execute { .. } => Response::Error(format!(
                "source `{}` is fetch-only and cannot execute plans",
                self.0.name()
            )),
            _ => self.0.handle(request),
        }
    }
}

/// A wrapper that connects (serves its interface) but fails every data
/// request — a member that died after import.
pub struct Dead<W: WrapperServer>(pub W);

impl<W: WrapperServer> WrapperServer for Dead<W> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn handle(&self, request: &Request) -> Response {
        match request {
            Request::GetInterface => self.0.handle(request),
            _ => Response::Error(format!("source `{}` is down", self.0.name())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yat_capability::interface::{Interface, OperationDecl};
    use yat_model::{Node, Tree};

    struct Fake;

    impl WrapperServer for Fake {
        fn name(&self) -> &str {
            "fake"
        }

        fn handle(&self, request: &Request) -> Response {
            match request {
                Request::GetInterface => {
                    let mut i = Interface::new("fake");
                    i.operations.push(OperationDecl::algebra("select"));
                    Response::Interface(i)
                }
                Request::GetDocument { name } => Response::Document {
                    name: name.clone(),
                    tree: doc(),
                },
                Request::Execute { .. } => Response::Result(yat_algebra::Tab::new(vec![])),
            }
        }
    }

    fn doc() -> Tree {
        Node::sym("d", vec![])
    }

    #[test]
    fn fetch_only_strips_operations_and_refuses_execute() {
        let w = FetchOnly(Fake);
        assert_eq!(w.name(), "fake");
        let Response::Interface(i) = w.handle(&Request::GetInterface) else {
            panic!("interface")
        };
        assert!(i.operations.is_empty() && i.equivalences.is_empty());
        assert!(matches!(
            w.handle(&Request::GetDocument { name: "d".into() }),
            Response::Document { .. }
        ));
        assert!(matches!(
            w.handle(&Request::Execute {
                plan: yat_algebra::Alg::source("d")
            }),
            Response::Error(_)
        ));
    }

    #[test]
    fn dead_serves_interface_only() {
        let w = Dead(Fake);
        assert!(matches!(
            w.handle(&Request::GetInterface),
            Response::Interface(_)
        ));
        let Response::Error(m) = w.handle(&Request::GetDocument { name: "d".into() }) else {
            panic!("error expected")
        };
        assert!(m.contains("down"), "{m}");
    }
}
