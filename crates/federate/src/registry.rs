//! The source registry: federation members, groups, and selection.
//!
//! A *member* is one connected wrapper. Members with the same `group`
//! name form either a **replica group** (every member holds the full
//! data; any one of them can answer, cheapest first, with failover) or a
//! **partition group** (each member holds a disjoint shard keyed by a
//! partition field; all matching members are contacted and their
//! contributions united). Plans address the *group*; the registry is what
//! turns a group into the concrete members to contact.

use crate::cost::{CostRecord, CostSnapshot};
use crate::prune::Constraints;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How a member relates to its group's data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberRole {
    /// Holds the full group data (replica group).
    Replica,
    /// Holds the subset of documents whose partition `field` value is in
    /// `values` (partition group). Values are exclusive across the
    /// group: a document lives in exactly one shard.
    Shard {
        /// The partition field (e.g. `style`).
        field: String,
        /// The field values this shard owns.
        values: BTreeSet<String>,
    },
}

/// What kind of group a set of members forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// Replicated: members are interchangeable copies.
    Replicated,
    /// Partitioned: members hold disjoint shards.
    Partitioned,
}

/// One registered federation member.
#[derive(Debug, Clone)]
pub struct Member {
    /// The member's connection id (unique across the mediator).
    pub name: String,
    /// The group this member belongs to (what plans address).
    pub group: String,
    /// The member's role within the group.
    pub role: MemberRole,
    /// Whether the member can execute pushed plan fragments (false for
    /// fetch-only capability profiles — their documents are pulled and
    /// evaluated mediator-side instead).
    pub execute: bool,
    /// The member's live health/cost record.
    pub cost: Arc<CostRecord>,
}

impl Member {
    /// A full-capability replica member.
    pub fn replica(name: impl Into<String>, group: impl Into<String>) -> Member {
        Member {
            name: name.into(),
            group: group.into(),
            role: MemberRole::Replica,
            execute: true,
            cost: Arc::new(CostRecord::new()),
        }
    }

    /// A full-capability shard member owning `values` of `field`.
    pub fn shard(
        name: impl Into<String>,
        group: impl Into<String>,
        field: impl Into<String>,
        values: impl IntoIterator<Item = String>,
    ) -> Member {
        Member {
            name: name.into(),
            group: group.into(),
            role: MemberRole::Shard {
                field: field.into(),
                values: values.into_iter().collect(),
            },
            execute: true,
            cost: Arc::new(CostRecord::new()),
        }
    }

    /// The same member with pushed execution disabled (fetch-only).
    pub fn fetch_only(mut self) -> Member {
        self.execute = false;
        self
    }
}

/// The registry of federation members and their groups.
#[derive(Debug, Default)]
pub struct SourceRegistry {
    members: BTreeMap<String, Member>,
    groups: BTreeMap<String, GroupKind>,
}

impl SourceRegistry {
    /// An empty registry (every source is then a plain, ungrouped
    /// connection and the mediator behaves exactly as before).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no members are registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of registered members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Registers a member, validating group consistency: the group kind
    /// must match the member's role, names must not collide, and shard
    /// value sets within a group must stay disjoint (otherwise partition
    /// pruning would be unsound).
    pub fn register(&mut self, member: Member) -> Result<(), String> {
        if self.members.contains_key(&member.name) {
            return Err(format!("member `{}` is already registered", member.name));
        }
        if self.groups.contains_key(&member.name) {
            return Err(format!(
                "member `{}` collides with a group name",
                member.name
            ));
        }
        if self.members.contains_key(&member.group) {
            return Err(format!(
                "group `{}` collides with a member name",
                member.group
            ));
        }
        let kind = match &member.role {
            MemberRole::Replica => GroupKind::Replicated,
            MemberRole::Shard { .. } => GroupKind::Partitioned,
        };
        if let Some(existing) = self.groups.get(&member.group) {
            if *existing != kind {
                return Err(format!(
                    "group `{}` mixes replica and shard members",
                    member.group
                ));
            }
        }
        if let MemberRole::Shard { field, values } = &member.role {
            for peer in self.members_of(&member.group) {
                if let MemberRole::Shard {
                    field: pf,
                    values: pv,
                } = &peer.role
                {
                    if pf != field {
                        return Err(format!(
                            "group `{}` mixes partition fields `{pf}` and `{field}`",
                            member.group
                        ));
                    }
                    if let Some(v) = values.intersection(pv).next() {
                        return Err(format!(
                            "shards `{}` and `{}` both claim `{field}` = {v:?}",
                            peer.name, member.name
                        ));
                    }
                }
            }
        }
        self.groups.insert(member.group.clone(), kind);
        self.members.insert(member.name.clone(), member);
        Ok(())
    }

    /// True when `name` is a registered group.
    pub fn is_group(&self, name: &str) -> bool {
        self.groups.contains_key(name)
    }

    /// The group's kind, if `name` is a group.
    pub fn group_kind(&self, name: &str) -> Option<GroupKind> {
        self.groups.get(name).copied()
    }

    /// The member registered under `name`, if any.
    pub fn member(&self, name: &str) -> Option<&Member> {
        self.members.get(name)
    }

    /// The group `member` belongs to, if it is a registered member.
    pub fn group_of(&self, member: &str) -> Option<&str> {
        self.members.get(member).map(|m| m.group.as_str())
    }

    /// All members of `group`, in name order.
    pub fn members_of(&self, group: &str) -> Vec<&Member> {
        self.members.values().filter(|m| m.group == group).collect()
    }

    /// All registered group names, in order.
    pub fn group_names(&self) -> Vec<&str> {
        self.groups.keys().map(String::as_str).collect()
    }

    /// All registered member names, in order.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.keys().map(String::as_str).collect()
    }

    /// The cost snapshot for `name`: a member's own record, or the
    /// trip-weighted aggregate over a group's members. Unknown names
    /// cost nothing (plain two-source mediators stay unaffected).
    pub fn cost(&self, name: &str) -> CostSnapshot {
        if let Some(m) = self.members.get(name) {
            return m.cost.snapshot();
        }
        self.members_of(name)
            .iter()
            .fold(CostSnapshot::default(), |acc, m| {
                acc.merge(&m.cost.snapshot())
            })
    }

    /// Records an answer-cache lookup outcome against `name` (member or
    /// group; unknown names are ignored).
    pub fn observe_cache(&self, name: &str, hit: bool) {
        if let Some(m) = self.members.get(name) {
            m.cost.observe_cache(hit);
        } else if let Some(m) = self.members_of(name).into_iter().next() {
            // Attribute group-keyed lookups once, to the first member.
            m.cost.observe_cache(hit);
        }
    }

    /// The members of a replica group ordered by expected cost (cheapest
    /// first, name as tie-break) — the failover order. With
    /// `need_execute`, fetch-only members are skipped.
    pub fn replicas_in_cost_order(&self, group: &str, need_execute: bool) -> Vec<String> {
        let mut members: Vec<&Member> = self
            .members_of(group)
            .into_iter()
            .filter(|m| !need_execute || m.execute)
            .collect();
        members.sort_by(|a, b| {
            let ca = a.cost.snapshot().expected_cost();
            let cb = b.cost.snapshot().expected_cost();
            ca.partial_cmp(&cb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        members.into_iter().map(|m| m.name.clone()).collect()
    }

    /// The partition field of a partitioned group, if any.
    pub fn partition_field(&self, group: &str) -> Option<String> {
        self.members_of(group).iter().find_map(|m| match &m.role {
            MemberRole::Shard { field, .. } => Some(field.clone()),
            MemberRole::Replica => None,
        })
    }

    /// The union of all declared partition values of `group` — the
    /// closed vocabulary pruning is sound against: a constraint constant
    /// outside it says nothing about which shard holds the document.
    pub fn vocabulary(&self, group: &str) -> BTreeSet<String> {
        let mut vocab = BTreeSet::new();
        for m in self.members_of(group) {
            if let MemberRole::Shard { values, .. } = &m.role {
                vocab.extend(values.iter().cloned());
            }
        }
        vocab
    }

    /// Partition pruning: the members of `group` that could hold
    /// documents satisfying `constraints`, in name order.
    ///
    /// The required value set is the union of equality constants on the
    /// partition field and `contains` needles that fall inside the
    /// group's declared vocabulary (a needle outside it may match any
    /// document's free text, so it cannot prune). A shard qualifies iff
    /// it owns every required value — conjunctive constraints demanding
    /// two distinct values of an exclusive field can match nothing, in
    /// which case the cheapest single member is kept so the (empty)
    /// answer still has a source to come from.
    pub fn prune(&self, group: &str, constraints: &Constraints) -> Vec<String> {
        let Some(field) = self.partition_field(group) else {
            return self
                .members_of(group)
                .iter()
                .map(|m| m.name.clone())
                .collect();
        };
        let vocab = self.vocabulary(group);
        let mut required: BTreeSet<String> =
            constraints.eq.get(&field).cloned().unwrap_or_default();
        required.extend(constraints.needles.intersection(&vocab).cloned());
        let selected: Vec<String> = self
            .members_of(group)
            .iter()
            .filter(|m| match &m.role {
                MemberRole::Shard { values, .. } => required.is_subset(values),
                MemberRole::Replica => true,
            })
            .map(|m| m.name.clone())
            .collect();
        if selected.is_empty() {
            return self
                .replicas_in_cost_order(group, false)
                .into_iter()
                .take(1)
                .collect();
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn shard(name: &str, values: &[&str]) -> Member {
        Member::shard(name, "wais", "style", values.iter().map(|s| s.to_string()))
    }

    fn registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        r.register(Member::replica("o2_0", "art")).unwrap();
        r.register(Member::replica("o2_1", "art")).unwrap();
        r.register(shard("wais_0", &["Impressionist", "Realist"]))
            .unwrap();
        r.register(shard("wais_1", &["Cubist"]).fetch_only())
            .unwrap();
        r
    }

    #[test]
    fn registration_validates_consistency() {
        let mut r = registry();
        assert!(
            r.register(Member::replica("o2_0", "art")).is_err(),
            "dup member"
        );
        assert!(
            r.register(Member::replica("art", "g")).is_err(),
            "member = group"
        );
        assert!(
            r.register(Member::replica("g", "wais_0")).is_err(),
            "group = member"
        );
        assert!(
            r.register(Member::replica("x", "wais")).is_err(),
            "mixed kinds"
        );
        assert!(
            r.register(shard("wais_2", &["Cubist", "Romantic"]))
                .is_err(),
            "overlapping shard values"
        );
        assert!(
            r.register(Member::shard("wais_2", "wais", "artist", ["X".to_string()]))
                .is_err(),
            "mixed partition fields"
        );
        assert!(r.register(shard("wais_2", &["Romantic"])).is_ok());
    }

    #[test]
    fn groups_and_members_resolve() {
        let r = registry();
        assert!(r.is_group("art") && r.is_group("wais"));
        assert!(!r.is_group("o2_0"));
        assert_eq!(r.group_kind("art"), Some(GroupKind::Replicated));
        assert_eq!(r.group_kind("wais"), Some(GroupKind::Partitioned));
        assert_eq!(r.group_of("wais_1"), Some("wais"));
        assert_eq!(
            r.members_of("wais")
                .iter()
                .map(|m| &m.name)
                .collect::<Vec<_>>(),
            ["wais_0", "wais_1"]
        );
        assert_eq!(r.partition_field("wais").as_deref(), Some("style"));
        assert_eq!(r.vocabulary("wais").len(), 3);
    }

    #[test]
    fn replica_order_follows_cost() {
        let r = registry();
        // no history: name order
        assert_eq!(r.replicas_in_cost_order("art", false), ["o2_0", "o2_1"]);
        // o2_0 becomes expensive: o2_1 first
        r.member("o2_0")
            .unwrap()
            .cost
            .observe(Duration::from_millis(50), 10_000, true);
        r.member("o2_1")
            .unwrap()
            .cost
            .observe(Duration::from_millis(1), 100, true);
        assert_eq!(r.replicas_in_cost_order("art", false), ["o2_1", "o2_0"]);
        // execute filter skips fetch-only members
        assert_eq!(r.replicas_in_cost_order("wais", true), ["wais_0"]);
    }

    #[test]
    fn pruning_uses_vocabulary_and_falls_back() {
        let r = registry();
        let mut c = Constraints::default();
        // unconstrained: all shards
        assert_eq!(r.prune("wais", &c), ["wais_0", "wais_1"]);
        // a needle in the vocabulary prunes to its owner
        c.needles.insert("Cubist".to_string());
        assert_eq!(r.prune("wais", &c), ["wais_1"]);
        // a needle outside the vocabulary cannot prune further
        c.needles.insert("Giverny".to_string());
        assert_eq!(r.prune("wais", &c), ["wais_1"]);
        // contradictory requirements: keep one member for an empty answer
        c.needles.insert("Realist".to_string());
        assert_eq!(r.prune("wais", &c).len(), 1);
        // eq constraints on the partition field prune too
        let mut c = Constraints::default();
        c.eq.entry("style".to_string())
            .or_default()
            .insert("Realist".to_string());
        assert_eq!(r.prune("wais", &c), ["wais_0"]);
        // eq on another field does not
        let mut c = Constraints::default();
        c.eq.entry("artist".to_string())
            .or_default()
            .insert("Claude Monet".to_string());
        assert_eq!(r.prune("wais", &c), ["wais_0", "wais_1"]);
        // replica groups never prune
        assert_eq!(r.prune("art", &Constraints::default()), ["o2_0", "o2_1"]);
    }

    #[test]
    fn cost_aggregates_over_groups() {
        let r = registry();
        r.member("o2_0")
            .unwrap()
            .cost
            .observe(Duration::from_millis(10), 0, false);
        r.member("o2_1")
            .unwrap()
            .cost
            .observe(Duration::from_millis(20), 0, true);
        let g = r.cost("art");
        assert_eq!(g.trips, 2);
        assert_eq!(g.errors, 1);
        assert_eq!(r.cost("nonexistent"), CostSnapshot::default());
        r.observe_cache("art", true);
        assert_eq!(r.cost("art").cache_hits, 1);
    }
}
