//! Conjunctive constraint extraction for partition pruning.
//!
//! [`constraints_of`] inspects a plan fragment and answers: *which field
//! values must a document carry for this fragment to keep it?* Two kinds
//! of evidence are collected, both strictly conjunctive (anything under
//! `Or`/`Not` is ignored — pruning on a disjunct would be unsound):
//!
//! * equality constraints `$v = "c"` where the bind filters map `$v` to
//!   a field label, and literal field constants inlined in filters
//!   (`style: "Cubist"`), giving `field → {constants}`;
//! * `contains(_, "needle")` predicates, giving a needle set. A needle
//!   only prunes when it falls inside the partition group's declared
//!   value vocabulary (see [`crate::SourceRegistry::prune`]).
//!
//! Evidence is harvested along the plan's *conjunctive spine*: a
//! `Select` contributes to the constraints of everything above it, but a
//! multi-child operator (`Union`, `Join`, `Diff`, …) only guarantees the
//! **intersection** of its children's constraints — a document may reach
//! the output through either branch, so only what every branch demands
//! may prune. (A `Join`'s own predicate applies to every output row and
//! stays conjunctive.)

use std::collections::{BTreeMap, BTreeSet};
use yat_algebra::{Alg, CmpOp, Operand, Pred};
use yat_model::{Atom, PLabel, Pattern};

/// The conjunctive constraints a fragment imposes on its documents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Constraints {
    /// Field label → constants the field must equal (conjunctively).
    pub eq: BTreeMap<String, BTreeSet<String>>,
    /// `contains` needles the whole document must carry.
    pub needles: BTreeSet<String>,
}

impl Constraints {
    /// True when nothing constrains the documents.
    pub fn is_empty(&self) -> bool {
        self.eq.is_empty() && self.needles.is_empty()
    }
}

/// Extracts the conjunctive constraints of `plan` (see module docs).
pub fn constraints_of(plan: &Alg) -> Constraints {
    let mut vars: BTreeMap<String, FieldBinding> = BTreeMap::new();
    let mut throwaway = Constraints::default();
    collect_bindings(plan, &mut throwaway, &mut vars);
    harvest(plan, &vars)
}

/// Merges `b` into `a` (conjunction: both sets of constraints hold).
fn union_into(a: &mut Constraints, b: Constraints) {
    for (f, vals) in b.eq {
        a.eq.entry(f).or_default().extend(vals);
    }
    a.needles.extend(b.needles);
}

/// The constraints guaranteed by *both* `a` and `b` (a document may
/// contribute through either side, so only the common demands prune).
fn intersect(a: Constraints, b: Constraints) -> Constraints {
    let mut eq = BTreeMap::new();
    for (f, vals) in a.eq {
        if let Some(other) = b.eq.get(&f) {
            let common: BTreeSet<String> = vals.intersection(other).cloned().collect();
            if !common.is_empty() {
                eq.insert(f, common);
            }
        }
    }
    Constraints {
        eq,
        needles: a.needles.intersection(&b.needles).cloned().collect(),
    }
}

/// Recursive conjunctive-spine harvest (see module docs).
fn harvest(plan: &Alg, vars: &BTreeMap<String, FieldBinding>) -> Constraints {
    let mut own = Constraints::default();
    match plan {
        Alg::Select { pred, .. } | Alg::Join { pred, .. } => harvest_pred(pred, vars, &mut own),
        Alg::Bind { filter, .. } => {
            // inline filter constants are conjunctive for the rows this
            // bind produces; variable bindings were collected globally
            let mut scratch = BTreeMap::new();
            walk_pattern(filter, None, &mut own, &mut scratch);
        }
        _ => {}
    }
    let children = plan.children();
    let inherited = match children.len() {
        0 => Constraints::default(),
        1 => harvest(children[0], vars),
        _ => children
            .iter()
            .map(|c| harvest(c, vars))
            .reduce(intersect)
            .unwrap_or_default(),
    };
    union_into(&mut own, inherited);
    own
}

/// What field a variable is bound to — `Ambiguous` once two different
/// fields claim the same variable (shadowing), which disables pruning on
/// that variable.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FieldBinding {
    Field(String),
    Ambiguous,
}

fn collect_bindings(plan: &Alg, c: &mut Constraints, vars: &mut BTreeMap<String, FieldBinding>) {
    if let Alg::Bind { filter, .. } = plan {
        walk_pattern(filter, None, c, vars);
    }
    for child in plan.children() {
        collect_bindings(child, c, vars);
    }
}

/// Walks a filter pattern. `under` is the label of the enclosing node —
/// when a `TreeVar` or literal constant appears directly below a labeled
/// node, that label is the field it binds/constrains.
fn walk_pattern(
    p: &Pattern,
    under: Option<&str>,
    c: &mut Constraints,
    vars: &mut BTreeMap<String, FieldBinding>,
) {
    match p {
        Pattern::Node { label, edges } => {
            let own = match label {
                PLabel::Sym(s) => Some(s.as_str().to_string()),
                PLabel::Const(Atom::Str(s)) => {
                    // a literal string label directly under a field node
                    // is an inline equality constraint
                    if let Some(f) = under {
                        c.eq.entry(f.to_string()).or_default().insert(s.clone());
                    }
                    None
                }
                _ => None,
            };
            for e in edges {
                walk_pattern(&e.pattern, own.as_deref(), c, vars);
            }
        }
        Pattern::Union(branches) => {
            // disjunctive context: field constants in branches are not
            // conjunctive, so only variable bindings are followed, and
            // conservatively (they may bind in any branch)
            for b in branches {
                walk_pattern(b, under, &mut Constraints::default(), vars);
            }
        }
        Pattern::TreeVar(v) => {
            if let Some(f) = under {
                match vars.get(v) {
                    None => {
                        vars.insert(v.clone(), FieldBinding::Field(f.to_string()));
                    }
                    Some(FieldBinding::Field(prev)) if prev == f => {}
                    _ => {
                        vars.insert(v.clone(), FieldBinding::Ambiguous);
                    }
                }
            }
        }
        Pattern::Ref(_) | Pattern::Wildcard => {}
    }
}

fn harvest_pred(pred: &Pred, vars: &BTreeMap<String, FieldBinding>, c: &mut Constraints) {
    for conjunct in pred.conjuncts() {
        match conjunct {
            Pred::Cmp {
                op: CmpOp::Eq,
                left: Operand::Var(v),
                right: Operand::Const(Atom::Str(s)),
            }
            | Pred::Cmp {
                op: CmpOp::Eq,
                left: Operand::Const(Atom::Str(s)),
                right: Operand::Var(v),
            } => {
                if let Some(FieldBinding::Field(f)) = vars.get(v) {
                    c.eq.entry(f.clone()).or_default().insert(s.clone());
                }
            }
            Pred::Call { name, args } if name == "contains" => {
                if let [_, Operand::Const(Atom::Str(needle))] = args.as_slice() {
                    c.needles.insert(needle.clone());
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yat_yatl::parse_filter;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn eq_over_bound_var_maps_to_field() {
        let plan = Alg::select(
            Alg::bind(
                Alg::source("works"),
                parse_filter("works *work [ title: $t, style: $s ]").unwrap(),
            ),
            Pred::eq_const("s", "Cubist"),
        );
        let c = constraints_of(&plan);
        assert_eq!(c.eq.get("style"), Some(&set(&["Cubist"])));
        assert!(c.needles.is_empty());
    }

    #[test]
    fn contains_needles_collected_conjunctively() {
        let plan = Alg::select(
            Alg::select(
                Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap()),
                Pred::Call {
                    name: "contains".into(),
                    args: vec![Operand::var("w"), Operand::cst("Impressionist")],
                },
            ),
            Pred::Call {
                name: "contains".into(),
                args: vec![Operand::var("w"), Operand::cst("Giverny")],
            },
        );
        let c = constraints_of(&plan);
        assert_eq!(c.needles, set(&["Impressionist", "Giverny"]));
    }

    #[test]
    fn disjunctions_and_negations_do_not_prune() {
        let bind = Alg::bind(
            Alg::source("works"),
            parse_filter("works *work [ style: $s ]").unwrap(),
        );
        let or = Alg::select(
            bind.clone(),
            Pred::Or(
                Box::new(Pred::eq_const("s", "Cubist")),
                Box::new(Pred::eq_const("s", "Realist")),
            ),
        );
        assert!(constraints_of(&or).is_empty());
        let not = Alg::select(bind, Pred::Not(Box::new(Pred::eq_const("s", "Cubist"))));
        assert!(constraints_of(&not).is_empty());
    }

    #[test]
    fn inline_filter_constant_constrains_field() {
        let plan = Alg::bind(
            Alg::source("works"),
            parse_filter("works *work [ style: \"Romantic\" ]").unwrap(),
        );
        let c = constraints_of(&plan);
        assert_eq!(c.eq.get("style"), Some(&set(&["Romantic"])));
    }

    #[test]
    fn ambiguous_variable_binding_disables_pruning() {
        // $s is bound under both `style` and `size`: neither may prune
        let plan = Alg::select(
            std::sync::Arc::new(Alg::Union {
                left: Alg::bind(
                    Alg::source("works"),
                    parse_filter("works *work [ style: $s ]").unwrap(),
                ),
                right: Alg::bind(
                    Alg::source("works"),
                    parse_filter("works *work [ size: $s ]").unwrap(),
                ),
            }),
            Pred::eq_const("s", "Cubist"),
        );
        assert!(constraints_of(&plan).eq.is_empty());
    }

    #[test]
    fn union_branches_intersect_their_constraints() {
        let bind = Alg::bind(
            Alg::source("works"),
            parse_filter("works *work [ style: $s ]").unwrap(),
        );
        let cubist = Alg::select(bind.clone(), Pred::eq_const("s", "Cubist"));
        // a Select inside only one branch must not prune: documents may
        // reach the output through the unfiltered branch
        let one_sided = std::sync::Arc::new(Alg::Union {
            left: cubist.clone(),
            right: bind.clone(),
        });
        assert!(constraints_of(&one_sided).is_empty());
        // a demand both branches share survives the intersection
        let both = std::sync::Arc::new(Alg::Union {
            left: cubist.clone(),
            right: Alg::select(bind, Pred::eq_const("s", "Cubist")),
        });
        assert_eq!(
            constraints_of(&both).eq.get("style"),
            Some(&set(&["Cubist"]))
        );
        // and a Select *above* the union is conjunctive again
        let above = Alg::select(one_sided, Pred::eq_const("s", "Realist"));
        assert_eq!(
            constraints_of(&above).eq.get("style"),
            Some(&set(&["Realist"]))
        );
    }

    #[test]
    fn join_conjuncts_count_but_var_to_var_does_not() {
        let left = Alg::bind(
            Alg::source("works"),
            parse_filter("works *work [ title: $t, style: $s ]").unwrap(),
        );
        let right = Alg::bind(Alg::source("artifacts"), parse_filter("set *$a").unwrap());
        let plan = Alg::join(
            left,
            right,
            Pred::var_eq("t", "u").and(Pred::eq_const("s", "Realist")),
        );
        let c = constraints_of(&plan);
        assert_eq!(c.eq.get("style"), Some(&set(&["Realist"])));
        assert_eq!(c.eq.len(), 1);
    }
}
