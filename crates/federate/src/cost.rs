//! Per-member health and cost records.
//!
//! Every federation member carries a [`CostRecord`] fed by the layers
//! that observe real work: the transport reports each round trip's
//! latency, response bytes and outcome; the executor reports answer-cache
//! hits and misses. Consumers read a consistent [`CostSnapshot`]: the
//! scatter scheduler orders jobs by [`CostSnapshot::expected_cost`], and
//! the optimizer's push-vs-pull choice looks at
//! [`CostSnapshot::error_rate`].

use std::sync::Mutex;
use std::time::Duration;

/// EWMA smoothing factor: recent trips dominate, but one outlier does
/// not erase history.
const ALPHA: f64 = 0.3;

/// Mutable cost/health state for one member (thread-safe; shared as
/// `Arc<CostRecord>` between the registry and the member's connection).
#[derive(Debug, Default)]
pub struct CostRecord {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Inner {
    ewma_latency_us: f64,
    ewma_bytes: f64,
    trips: u64,
    errors: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl CostRecord {
    /// A fresh record with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one round trip: its wall latency, the response bytes (0
    /// for failures), and whether it succeeded.
    pub fn observe(&self, latency: Duration, bytes: u64, ok: bool) {
        let mut s = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let us = latency.as_secs_f64() * 1e6;
        if s.trips == 0 {
            s.ewma_latency_us = us;
            s.ewma_bytes = bytes as f64;
        } else {
            s.ewma_latency_us = ALPHA * us + (1.0 - ALPHA) * s.ewma_latency_us;
            s.ewma_bytes = ALPHA * bytes as f64 + (1.0 - ALPHA) * s.ewma_bytes;
        }
        s.trips += 1;
        if !ok {
            s.errors += 1;
        }
    }

    /// Records one answer-cache lookup against this member.
    pub fn observe_cache(&self, hit: bool) {
        let mut s = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if hit {
            s.cache_hits += 1;
        } else {
            s.cache_misses += 1;
        }
    }

    /// A consistent copy of the current counters.
    pub fn snapshot(&self) -> CostSnapshot {
        let s = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        CostSnapshot {
            ewma_latency_us: s.ewma_latency_us,
            ewma_bytes: s.ewma_bytes,
            trips: s.trips,
            errors: s.errors,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
        }
    }
}

/// A point-in-time copy of a member's cost counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostSnapshot {
    /// Exponentially weighted round-trip latency, microseconds.
    pub ewma_latency_us: f64,
    /// Exponentially weighted response size, bytes.
    pub ewma_bytes: f64,
    /// Total round trips attempted.
    pub trips: u64,
    /// Round trips that failed (wire errors, timeouts, wrapper errors).
    pub errors: u64,
    /// Answer-cache hits attributed to this member.
    pub cache_hits: u64,
    /// Answer-cache misses attributed to this member.
    pub cache_misses: u64,
}

impl CostSnapshot {
    /// Fraction of attempted trips that failed (0 when none attempted).
    pub fn error_rate(&self) -> f64 {
        if self.trips == 0 {
            0.0
        } else {
            self.errors as f64 / self.trips as f64
        }
    }

    /// Answer-cache hit rate (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// The scalar the scheduler sorts by: expected wall cost of one more
    /// trip, discounted by how often this member answers from cache.
    /// A member with no history costs 0, which keeps scheduling
    /// identical to the static order until real observations arrive.
    pub fn expected_cost(&self) -> f64 {
        let wire = self.ewma_latency_us + self.ewma_bytes / 128.0;
        wire * (1.0 - self.hit_rate())
    }

    /// Merges another snapshot into this one (group-level aggregation:
    /// counters add, EWMAs average weighted by trip count).
    pub fn merge(&self, other: &CostSnapshot) -> CostSnapshot {
        let total = self.trips + other.trips;
        let (lat, bytes) = if total == 0 {
            (0.0, 0.0)
        } else {
            let w =
                |a: f64, at: u64, b: f64, bt: u64| (a * at as f64 + b * bt as f64) / total as f64;
            (
                w(
                    self.ewma_latency_us,
                    self.trips,
                    other.ewma_latency_us,
                    other.trips,
                ),
                w(self.ewma_bytes, self.trips, other.ewma_bytes, other.trips),
            )
        };
        CostSnapshot {
            ewma_latency_us: lat,
            ewma_bytes: bytes,
            trips: total,
            errors: self.errors + other.errors,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_tracks_observations() {
        let r = CostRecord::new();
        assert_eq!(r.snapshot().expected_cost(), 0.0);
        r.observe(Duration::from_millis(10), 1000, true);
        let s1 = r.snapshot();
        assert!((s1.ewma_latency_us - 10_000.0).abs() < 1.0, "{s1:?}");
        r.observe(Duration::from_millis(30), 1000, true);
        let s2 = r.snapshot();
        // 0.3 * 30ms + 0.7 * 10ms = 16ms
        assert!((s2.ewma_latency_us - 16_000.0).abs() < 1.0, "{s2:?}");
        assert_eq!(s2.trips, 2);
        assert_eq!(s2.errors, 0);
    }

    #[test]
    fn errors_and_cache_rates() {
        let r = CostRecord::new();
        r.observe(Duration::from_millis(1), 0, false);
        r.observe(Duration::from_millis(1), 100, true);
        r.observe_cache(true);
        r.observe_cache(true);
        r.observe_cache(false);
        let s = r.snapshot();
        assert_eq!(s.error_rate(), 0.5);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        // cache hits discount the expected cost
        let cold = CostSnapshot {
            cache_hits: 0,
            cache_misses: 3,
            ..s
        };
        assert!(s.expected_cost() < cold.expected_cost());
    }

    #[test]
    fn merge_weighs_by_trips() {
        let a = CostSnapshot {
            ewma_latency_us: 10.0,
            trips: 3,
            errors: 1,
            ..Default::default()
        };
        let b = CostSnapshot {
            ewma_latency_us: 40.0,
            trips: 1,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.trips, 4);
        assert_eq!(m.errors, 1);
        assert!((m.ewma_latency_us - 17.5).abs() < 1e-9, "{m:?}");
        let empty = CostSnapshot::default();
        assert_eq!(empty.merge(&empty), empty);
    }
}
