//! yat-federate: the N-source federation registry.
//!
//! The paper's mediator architecture (Fig. 2) is built for many
//! heterogeneous sources; this crate holds the machinery that scales the
//! two-source repro to a real federation:
//!
//! * [`SourceRegistry`] — members grouped into *replica groups* (each
//!   member holds the full data) and *partition groups* (each member
//!   holds a disjoint shard keyed by a partition field), with per-member
//!   capability flags and a health/cost record;
//! * [`CostRecord`] — EWMA latency/bytes plus trip, error and cache
//!   counters, fed from the transport and cache layers and consulted by
//!   the scheduler and the optimizer;
//! * [`constraints_of`] — conjunctive constraint extraction from a plan
//!   fragment, the input to partition pruning: a shard whose declared
//!   partition values cannot match the fragment's constants is never
//!   contacted;
//! * [`PartialFailure`] / [`ProvLog`] — the degraded-answer policy: under
//!   `Degrade`, a failing member contributes nothing instead of failing
//!   the whole query, and the answer carries `answered-by` /
//!   `missing-sources` provenance.

#![deny(missing_docs)]

pub mod adapters;
pub mod cost;
pub mod prune;
pub mod registry;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

pub use adapters::{Dead, FetchOnly};
pub use cost::{CostRecord, CostSnapshot};
pub use prune::{constraints_of, Constraints};
pub use registry::{GroupKind, Member, MemberRole, SourceRegistry};

/// What a per-source failure does to the query (Section "partial
/// failure"; the env knob is `YAT_PARTIAL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartialFailure {
    /// Any source failure fails the whole query — today's semantics.
    #[default]
    Strict,
    /// A failing source contributes nothing; the answer is degraded and
    /// annotated with provenance.
    Degrade,
}

impl PartialFailure {
    /// Reads `YAT_PARTIAL` (`strict` | `degrade`). Unset or invalid
    /// values fall back to [`PartialFailure::Strict`], invalid ones
    /// loudly via [`yat_obs::warn`].
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("YAT_PARTIAL").ok().as_deref())
    }

    /// [`PartialFailure::from_env`] on an explicit value (testable).
    pub fn from_env_value(value: Option<&str>) -> Self {
        match value {
            None => PartialFailure::Strict,
            Some(v) => Self::parse(v).unwrap_or_else(|| {
                yat_obs::warn(format!(
                    "YAT_PARTIAL: unrecognized value {v:?} (expected \
                     \"strict\" or \"degrade\"); using strict"
                ));
                PartialFailure::Strict
            }),
        }
    }

    /// Parses a policy string.
    pub fn parse(value: &str) -> Option<Self> {
        match value.trim().to_ascii_lowercase().as_str() {
            "strict" => Some(PartialFailure::Strict),
            "degrade" | "degraded" => Some(PartialFailure::Degrade),
            _ => None,
        }
    }
}

impl std::fmt::Display for PartialFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartialFailure::Strict => write!(f, "strict"),
            PartialFailure::Degrade => write!(f, "degrade"),
        }
    }
}

/// Which sources contributed to an answer and which contributions are
/// missing — the `answered-by` / `missing-sources` annotation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Members (or plain sources) whose data reached the answer.
    pub answered_by: BTreeSet<String>,
    /// Members whose contribution is absent, with the error that caused
    /// it. Empty for a complete answer.
    pub missing: BTreeMap<String, String>,
}

impl Provenance {
    /// True when at least one contribution is missing.
    pub fn is_degraded(&self) -> bool {
        !self.missing.is_empty()
    }

    /// The `answered-by` attribute value (comma-joined member names).
    pub fn answered_by_attr(&self) -> String {
        self.answered_by
            .iter()
            .cloned()
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The `missing-sources` attribute value (comma-joined member names;
    /// the error detail stays server-side, in EXPLAIN).
    pub fn missing_attr(&self) -> String {
        self.missing.keys().cloned().collect::<Vec<_>>().join(",")
    }

    /// Rebuilds a provenance from wire attributes (the client side of
    /// the annotation; error details do not travel).
    pub fn from_attrs(answered_by: Option<&str>, missing: Option<&str>) -> Provenance {
        let split = |s: Option<&str>| -> BTreeSet<String> {
            s.into_iter()
                .flat_map(|s| s.split(','))
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect()
        };
        Provenance {
            answered_by: split(answered_by),
            missing: split(missing)
                .into_iter()
                .map(|m| (m, String::new()))
                .collect(),
        }
    }
}

/// A thread-safe provenance accumulator threaded through one execution.
#[derive(Debug, Default)]
pub struct ProvLog {
    inner: Mutex<Provenance>,
}

impl ProvLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `source` contributed data to the answer.
    pub fn touch(&self, source: &str) {
        let mut p = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        p.answered_by.insert(source.to_string());
    }

    /// Records that `source`'s contribution is missing because of
    /// `error`.
    pub fn miss(&self, source: &str, error: impl Into<String>) {
        let mut p = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        p.missing
            .entry(source.to_string())
            .or_insert_with(|| error.into());
    }

    /// The provenance accumulated so far.
    pub fn snapshot(&self) -> Provenance {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn partial_failure_parses_and_defaults() {
        assert_eq!(
            PartialFailure::parse("strict"),
            Some(PartialFailure::Strict)
        );
        assert_eq!(
            PartialFailure::parse(" Degrade "),
            Some(PartialFailure::Degrade)
        );
        assert_eq!(PartialFailure::parse("???"), None);
        assert_eq!(PartialFailure::from_env_value(None), PartialFailure::Strict);
        assert_eq!(
            PartialFailure::from_env_value(Some("degrade")),
            PartialFailure::Degrade
        );
    }

    #[test]
    fn partial_failure_invalid_value_warns_and_falls_back() {
        let (tx, rx) = mpsc::channel();
        yat_obs::set_warn_sink(Some(Box::new(move |m| {
            let _ = tx.send(m.to_string());
        })));
        assert_eq!(
            PartialFailure::from_env_value(Some("lenient")),
            PartialFailure::Strict
        );
        let msg = rx.recv().expect("a warning is emitted");
        assert!(msg.contains("YAT_PARTIAL"), "{msg}");
        assert!(msg.contains("lenient"), "{msg}");
        yat_obs::set_warn_sink(None);
    }

    #[test]
    fn provenance_attrs_round_trip() {
        let log = ProvLog::new();
        log.touch("o2art_0");
        log.touch("wais_1");
        log.miss("wais_2", "connection reset");
        log.miss("wais_2", "second error is ignored");
        let p = log.snapshot();
        assert!(p.is_degraded());
        assert_eq!(p.answered_by_attr(), "o2art_0,wais_1");
        assert_eq!(p.missing_attr(), "wais_2");
        assert_eq!(p.missing["wais_2"], "connection reset");

        let back = Provenance::from_attrs(Some("o2art_0,wais_1"), Some("wais_2"));
        assert_eq!(back.answered_by, p.answered_by);
        assert_eq!(
            back.missing.keys().collect::<Vec<_>>(),
            p.missing.keys().collect::<Vec<_>>()
        );

        let complete = Provenance::from_attrs(None, None);
        assert!(!complete.is_degraded());
        assert!(complete.answered_by.is_empty());
    }
}
