//! Executable reproductions of the paper's figures: plan pairs
//! (before/after each rewriting) and the Q1/Q2 pipelines at every
//! optimization level.

use std::sync::Arc;
use yat_algebra::{Alg, Pred, Template};
use yat_mediator::OptimizerOptions;
use yat_model::{Forest, Node, Tree};
use yat_oql::art::{art_store, ArtSpec};
use yat_oql::export::extent_tree;
use yat_yatl::parse_filter;

/// Fig. 4: the Bind and Tree operators over the works collection.
pub mod fig4 {
    use super::*;
    use yat_wais::{generate_works, WorksSpec};

    /// A local forest holding `works` at the given size.
    pub fn forest(n: usize) -> Forest {
        let mut f = Forest::new();
        f.insert(
            "works",
            generate_works(&WorksSpec {
                works: n,
                impressionist_pct: 40,
                optional_pct: 60,
                giverny_pct: 30,
                seed: 4,
            }),
        );
        f
    }

    /// The Fig. 4 filter `F[$t,$a,$s,$si,$fields]`.
    pub fn filter() -> yat_model::Pattern {
        parse_filter("works *work [ title: $t, artist: $a, style: $s, size: $si, *($fields) ]")
            .expect("static filter parses")
    }

    /// `Bind(works, F)`.
    pub fn bind_plan() -> Arc<Alg> {
        Alg::bind(Alg::source("works"), filter())
    }

    /// `Tree(Bind(works, F))` with the figure's artist grouping.
    pub fn tree_plan() -> Arc<Alg> {
        Alg::tree(
            bind_plan(),
            Template::sym(
                "s",
                vec![Template::skolem_group(
                    "artist",
                    &["a"],
                    Template::sym(
                        "artist",
                        vec![
                            Template::elem_var("name", "a"),
                            Template::group(&["t"], Template::elem_var("title", "t")),
                        ],
                    ),
                )],
            ),
        )
    }
}

/// Fig. 7: the algebraic equivalences, as before/after plan pairs over
/// the exported O2 data.
pub mod fig7 {
    use super::*;
    use yat_model::Oid;
    use yat_prng::Rng;

    /// A local forest with the exported `artifacts` and `persons`
    /// documents (references resolvable).
    pub fn forest(artifacts: usize) -> Forest {
        let store = art_store(&ArtSpec {
            artifacts,
            persons: (artifacts / 5).max(2),
            seed: 7,
        });
        let mut f = Forest::new();
        f.insert(
            "artifacts",
            extent_tree(&store, "artifacts").expect("extent exists"),
        );
        f.insert(
            "persons",
            extent_tree(&store, "persons").expect("extent exists"),
        );
        f
    }

    /// A forest whose persons carry `extra_fields` additional attributes:
    /// the paper's navigation-vs-associative-access tradeoff shows once
    /// per-object matching is non-trivial and objects are shared (each
    /// person is owned by many artifacts). Navigation re-matches the
    /// person pattern per *occurrence*; the extent join matches each
    /// person once.
    pub fn wide_forest(artifacts: usize, extra_fields: usize) -> Forest {
        let persons = (artifacts / 10).max(2);
        let mut rng = Rng::seed_from_u64(77);
        let mut person_trees = Vec::with_capacity(persons);
        for p in 0..persons {
            let mut fields = vec![
                Node::elem("name", format!("Collector {p}")),
                Node::elem("auction", (10_000 * (p as i64 + 1)) as f64),
            ];
            for k in 0..extra_fields {
                fields.push(Node::elem(
                    format!("detail{k}"),
                    format!("lot {} of season {}", rng.gen_range(0..10_000), k),
                ));
            }
            person_trees.push(Node::oid(
                Oid::new(format!("p{p}")),
                vec![Node::sym(
                    "class",
                    vec![Node::sym("person", vec![Node::sym("tuple", fields)])],
                )],
            ));
        }
        let mut artifact_trees = Vec::with_capacity(artifacts);
        for a in 0..artifacts {
            let owners: Vec<yat_model::Tree> = (0..2)
                .map(|_| Node::reference(Oid::new(format!("p{}", rng.gen_range(0..persons)))))
                .collect();
            artifact_trees.push(Node::oid(
                Oid::new(format!("a{a}")),
                vec![Node::sym(
                    "class",
                    vec![Node::sym(
                        "artifact",
                        vec![Node::sym(
                            "tuple",
                            vec![
                                Node::elem("title", format!("Composition No. {a}")),
                                Node::sym("owners", vec![Node::sym("list", owners)]),
                            ],
                        )],
                    )],
                )],
            ));
        }
        let mut f = Forest::new();
        f.insert("persons", Node::sym("set", person_trees));
        f.insert("artifacts", Node::sym("set", artifact_trees));
        f
    }

    /// **Upper row**: the monolithic Bind navigating from artifacts down
    /// into the owners' person tuples (vertical navigation through
    /// references).
    pub fn navigation_plan() -> Arc<Alg> {
        Alg::bind(
            Alg::source("artifacts"),
            parse_filter(
                "set *class: artifact: tuple [ title: $t, \
                 owners: list *class: person: tuple [ name: $o, auction: $au ] ]",
            )
            .expect("static filter parses"),
        )
    }

    /// **Upper right**: navigation replaced by associative access — bind
    /// owners shallowly (each owner dereferences to its person object),
    /// bind the `persons` extent once, and hash-join the two
    /// ("we exploit the persons extent to transform the DJoin into a
    /// standard Join supporting more efficient evaluation algorithms").
    pub fn extent_join_plan() -> Arc<Alg> {
        let left = Alg::bind(
            Alg::source("artifacts"),
            parse_filter("set *class: artifact: tuple [ title: $t, owners: list [ *$own ] ]")
                .expect("static filter parses"),
        );
        let right = Alg::bind(
            Alg::source("persons"),
            parse_filter("set *$p2: class: person: tuple [ name: $o, auction: $au ]")
                .expect("static filter parses"),
        );
        Alg::project(
            Alg::join(left, right, Pred::var_eq("own", "p2")),
            vec![
                ("t".into(), "t".into()),
                ("o".into(), "o".into()),
                ("au".into(), "au".into()),
            ],
        )
    }

    /// Projection of the navigation plan onto the extent-join plan's
    /// columns, so the pair is comparable.
    pub fn navigation_plan_projected() -> Arc<Alg> {
        Alg::project(
            navigation_plan(),
            vec![
                ("t".into(), "t".into()),
                ("o".into(), "o".into()),
                ("au".into(), "au".into()),
            ],
        )
    }

    /// **Lower left**: a deep monolithic Bind over works.
    pub fn deep_bind_plan() -> Arc<Alg> {
        Alg::bind(
            Alg::source("works"),
            parse_filter("works *work [ title: $t, artist: $a, style: $s ]")
                .expect("static filter parses"),
        )
    }

    /// Its linear split: `Bind_over(Bind(works, works *$w), $w, …)`
    /// projected back to the original columns.
    pub fn split_bind_plan() -> Arc<Alg> {
        let split = yat_mediator::rules::bind_split::split_linear(
            &Alg::source("works"),
            &parse_filter("works *work [ title: $t, artist: $a, style: $s ]")
                .expect("static filter parses"),
        )
        .expect("the filter is splittable");
        Alg::project(
            split,
            vec![
                ("t".into(), "t".into()),
                ("a".into(), "a".into()),
                ("s".into(), "s".into()),
            ],
        )
    }

    /// **Lower middle** ("structured queries over semistructured data"):
    /// the full five-variable filter versus the projection-simplified
    /// filter when only `title`/`artist` are needed. The `_untyped`
    /// variant keeps mandatory edges as wildcards; `_typed` drops them
    /// using the Artworks structure.
    pub fn full_filter_bind() -> Arc<Alg> {
        Alg::project(
            Alg::bind(
                Alg::source("works"),
                parse_filter(
                    "works *work [ title: $t, artist: $a, style: $s, size: $si, *($fields) ]",
                )
                .expect("static filter parses"),
            ),
            vec![("t".into(), "t".into()), ("a".into(), "a".into())],
        )
    }

    /// The same query with the filter simplified *without* type
    /// information: unused variables become wildcards but the mandatory
    /// edges must stay.
    pub fn untyped_simplified_bind() -> Arc<Alg> {
        Alg::project(
            Alg::bind(
                Alg::source("works"),
                parse_filter("works *work [ title: $t, artist: $a, style: _, size: _ ]")
                    .expect("static filter parses"),
            ),
            vec![("t".into(), "t".into()), ("a".into(), "a".into())],
        )
    }

    /// The same query simplified *with* type information (Section 5.1):
    /// the structure guarantees `style`/`size`, so the filter shrinks to
    /// the two useful edges.
    pub fn typed_simplified_bind() -> Arc<Alg> {
        Alg::bind(
            Alg::source("works"),
            parse_filter("works *work [ title: $t, artist: $a ]").expect("static filter parses"),
        )
    }

    /// **Lower right** ("semistructured queries over structured data"):
    /// retrieve the attribute names of person objects with a label
    /// variable.
    pub fn label_variable_bind() -> Arc<Alg> {
        Alg::bind(
            Alg::source("persons"),
            parse_filter("set *class: person: tuple [ *$f: ~$n [ _ ] ]")
                .expect("static filter parses"),
        )
    }
}

/// Figs. 5, 8 and 9: the Q1/Q2 pipelines at increasing optimization
/// levels.
pub mod pipeline {
    use super::*;

    /// How much of Section 5 is enabled.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Level {
        /// Materialize the view, evaluate the query on it (Fig. 8 left).
        Naive,
        /// Round 1 only: composition + simplification (Fig. 8 middle).
        Composition,
        /// Rounds 1–2: + capability-based pushdown (Fig. 8 right /
        /// Fig. 9 before information passing).
        Capability,
        /// All three rounds (Fig. 9 right).
        Full,
    }

    /// All levels, for sweeps.
    pub const LEVELS: [Level; 4] = [
        Level::Naive,
        Level::Composition,
        Level::Capability,
        Level::Full,
    ];

    impl Level {
        /// Optimizer options for this level. `containment` enables the
        /// Fig. 8 branch elimination (sound for Q1 by the paper's
        /// assumption; unnecessary for Q2).
        pub fn options(self, containment: bool) -> OptimizerOptions {
            match self {
                Level::Naive => OptimizerOptions::naive(),
                Level::Composition => OptimizerOptions {
                    capability_pushdown: false,
                    info_passing: false,
                    assume_containment: containment,
                    ..Default::default()
                },
                Level::Capability => OptimizerOptions {
                    info_passing: false,
                    assume_containment: containment,
                    ..Default::default()
                },
                Level::Full => OptimizerOptions {
                    assume_containment: containment,
                    ..Default::default()
                },
            }
        }

        /// Display name for reports.
        pub fn name(self) -> &'static str {
            match self {
                Level::Naive => "naive",
                Level::Composition => "composition",
                Level::Capability => "capability",
                Level::Full => "full",
            }
        }
    }
}

/// A tiny helper: evaluate a plan over a local forest with fresh
/// registries, returning the Tab row count (benches use it to force
/// evaluation).
pub fn eval_rows(plan: &Alg, forest: &Forest) -> usize {
    let funcs = yat_algebra::FnRegistry::with_builtins();
    let skolems = yat_algebra::SkolemRegistry::new();
    let ctx = yat_algebra::EvalCtx::local(forest, &funcs, &skolems);
    match yat_algebra::eval(plan, &ctx).expect("figure plans evaluate") {
        yat_algebra::EvalOut::Tab(t) => t.len(),
        yat_algebra::EvalOut::Tree(t) => t.children.len(),
    }
}

/// Sorted leaf fingerprint of a result tree (Skolem ids ignored) —
/// shared by report and tests to compare plan outputs.
pub fn fingerprint(t: &Tree) -> Vec<String> {
    fn walk(t: &Tree, out: &mut Vec<String>) {
        match &t.label {
            yat_model::Label::Atom(a) => out.push(a.to_string()),
            yat_model::Label::Sym(s) => out.push(format!("<{s}>")),
            yat_model::Label::Oid(_) => out.push("<id>".into()),
            yat_model::Label::Ref(_) => out.push("<ref>".into()),
        }
        for c in &t.children {
            walk(c, out);
        }
    }
    let mut v = Vec::new();
    walk(t, &mut v);
    v.sort();
    v
}

/// Convenience used in benches: an empty-forest guard value.
pub fn empty_tree() -> Tree {
    Node::sym("empty", vec![])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_plans_evaluate() {
        let f = fig4::forest(50);
        assert_eq!(eval_rows(&fig4::bind_plan(), &f), 50);
        let groups = eval_rows(&fig4::tree_plan(), &f);
        assert!(
            groups > 0 && groups <= 8,
            "one group per artist, got {groups}"
        );
    }

    #[test]
    fn fig7_navigation_equals_extent_join() {
        let f = fig7::forest(40);
        let funcs = yat_algebra::FnRegistry::with_builtins();
        let sk = yat_algebra::SkolemRegistry::new();
        let ctx = yat_algebra::EvalCtx::local(&f, &funcs, &sk);
        let nav = yat_algebra::eval(&fig7::navigation_plan_projected(), &ctx).unwrap();
        let join = yat_algebra::eval(&fig7::extent_join_plan(), &ctx).unwrap();
        let (Some(nav), Some(join)) = (nav.as_tab(), join.as_tab()) else {
            panic!()
        };
        assert!(!nav.is_empty());
        let key = |t: &yat_algebra::Tab| {
            let mut rows: Vec<String> = t
                .rows()
                .map(|r| r.iter().map(|v| v.group_key() + ";").collect())
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(key(nav), key(join));
    }

    #[test]
    fn fig7_split_equals_monolithic() {
        let f = fig4::forest(30);
        assert_eq!(
            eval_rows(&fig7::deep_bind_plan(), &f),
            eval_rows(&fig7::split_bind_plan(), &f)
        );
    }

    #[test]
    fn fig7_simplified_binds_agree() {
        let f = fig4::forest(30);
        let full = eval_rows(&fig7::full_filter_bind(), &f);
        let untyped = eval_rows(&fig7::untyped_simplified_bind(), &f);
        let typed = eval_rows(&fig7::typed_simplified_bind(), &f);
        assert_eq!(full, untyped);
        assert_eq!(full, typed, "type info guarantees the dropped edges");
    }

    #[test]
    fn fig7_label_variables_extract_schema() {
        let f = fig7::forest(10);
        let rows = eval_rows(&fig7::label_variable_bind(), &f);
        assert_eq!(rows, 4, "name and auction per person: 2 persons × 2 attrs");
    }

    #[test]
    fn levels_are_monotonic_in_enabled_rounds() {
        use pipeline::Level;
        let naive = Level::Naive.options(false);
        assert!(!naive.compose_elimination && !naive.capability_pushdown);
        let full = Level::Full.options(true);
        assert!(full.compose_elimination && full.capability_pushdown && full.info_passing);
        assert!(full.assume_containment);
    }
}
