//! Reference string-key implementations of the set-based operators.
//!
//! Before the hashed-key data plane, DupElim/Intersection/Difference/
//! GroupBy and the hash join all keyed rows by concatenated canonical
//! [`Value::group_key`] strings. These functions preserve that
//! implementation — with the separator bug fixed (each per-cell key is
//! length-prefixed, so adversarial strings cannot re-split the
//! concatenation) — to serve two purposes:
//!
//! * the `fig_scale` benchmark times them against the hashed operators,
//!   quantifying what the hashes buy at each scale;
//! * the property tests use them as the semantics oracle: on random
//!   inputs the hashed operators must produce byte-identical `Tab`s.

use std::collections::{BTreeMap, BTreeSet};
use yat_algebra::{Tab, Value};

/// Canonical key of one cell, length-prefixed (closed under
/// concatenation).
pub fn cell_key(v: &Value) -> String {
    let k = v.group_key();
    format!("{}\u{1}{}\u{2}", k.len(), k)
}

/// Canonical key of a full row.
pub fn row_key(row: &[Value]) -> String {
    row.iter().map(cell_key).collect()
}

/// Canonical key of a row restricted to `cols`.
pub fn cols_key(row: &[Value], cols: &[usize]) -> String {
    cols.iter().map(|&c| cell_key(&row[c])).collect()
}

/// String-keyed duplicate elimination, first occurrence order.
pub fn dedup(tab: &Tab) -> Tab {
    let mut out = Tab::new(tab.columns().to_vec());
    for &i in &dedup_indices(tab) {
        out.push(tab.row(i).to_vec());
    }
    out
}

/// The keying core of [`dedup`]: indices of the rows a string-keyed
/// DupElim keeps, in order. The kernel the `fig_scale` benchmark times
/// against the hashed data plane (output construction is identical on
/// both sides, so the kernels are what meaningfully differ).
pub fn dedup_indices(tab: &Tab) -> Vec<usize> {
    let mut seen = BTreeSet::new();
    let mut keep = Vec::new();
    for (i, row) in tab.rows().enumerate() {
        if seen.insert(row_key(row)) {
            keep.push(i);
        }
    }
    keep
}

/// String-keyed `Union` (append + set semantics).
pub fn union(l: &Tab, r: &Tab) -> Tab {
    let mut both = l.clone();
    for row in r.rows() {
        both.push(row.to_vec());
    }
    dedup(&both)
}

/// String-keyed `Intersect` (rows of `l` whose key appears in `r`).
pub fn intersect(l: &Tab, r: &Tab) -> Tab {
    let keys: BTreeSet<String> = r.rows().map(row_key).collect();
    let mut out = Tab::new(l.columns().to_vec());
    for row in l.rows() {
        if keys.contains(&row_key(row)) {
            out.push(row.to_vec());
        }
    }
    dedup(&out)
}

/// String-keyed `Diff` (rows of `l` whose key does not appear in `r`).
pub fn diff(l: &Tab, r: &Tab) -> Tab {
    let keys: BTreeSet<String> = r.rows().map(row_key).collect();
    let mut out = Tab::new(l.columns().to_vec());
    for row in l.rows() {
        if !keys.contains(&row_key(row)) {
            out.push(row.to_vec());
        }
    }
    dedup(&out)
}

/// String-keyed `Group` by the named key columns: one output row per
/// distinct key (first-occurrence order), key cells from the group's
/// first member, remaining columns nested as collections — the exact
/// output shape of the algebra's `Group` operator.
pub fn group(tab: &Tab, keys: &[String]) -> Tab {
    let kidx: Vec<usize> = keys
        .iter()
        .map(|k| tab.col(k).expect("group key column exists"))
        .collect();
    let rest: Vec<usize> = (0..tab.columns().len())
        .filter(|i| !kidx.contains(i))
        .collect();
    let mut cols: Vec<String> = keys.to_vec();
    cols.extend(rest.iter().map(|&i| tab.columns()[i].clone()));
    let mut out = Tab::new(cols);
    for members in group_indices(tab, &kidx) {
        let first = tab.row(members[0]);
        let mut row: Vec<Value> = kidx.iter().map(|&i| first[i].clone()).collect();
        for &ci in &rest {
            row.push(Value::Coll(
                members.iter().map(|&ri| tab.row(ri)[ci].clone()).collect(),
            ));
        }
        out.push(row);
    }
    out
}

/// The keying core of [`group`]: the string-keyed partition of row
/// indices into groups, first-occurrence order — the counterpart of
/// `yat_algebra::keys::group_indices` that `fig_scale` times it against.
pub fn group_indices(tab: &Tab, kidx: &[usize]) -> Vec<Vec<usize>> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (ri, row) in tab.rows().enumerate() {
        let key = cols_key(row, kidx);
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(ri);
    }
    order
        .into_iter()
        .map(|k| groups.remove(&k).unwrap())
        .collect()
}

/// The keying core of [`join`]: build a string-key table on the right,
/// probe with per-row key strings from the left, emit left-major
/// `(left, right)` index pairs — the counterpart of
/// `yat_algebra::keys::join_pairs`.
pub fn join_pairs(lt: &Tab, rt: &Tab, lkeys: &[usize], rkeys: &[usize]) -> Vec<(usize, usize)> {
    let mut table: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (ri, rrow) in rt.rows().enumerate() {
        table.entry(cols_key(rrow, rkeys)).or_default().push(ri);
    }
    let mut pairs = Vec::new();
    for (li, lrow) in lt.rows().enumerate() {
        if let Some(matches) = table.get(&cols_key(lrow, lkeys)) {
            for &ri in matches {
                pairs.push((li, ri));
            }
        }
    }
    pairs
}

/// String-keyed equi-join on `lkeys`/`rkeys` column indices: build a
/// string-key table on the right, probe with per-row key strings from
/// the left, emit concatenated rows (right columns after left, as the
/// algebra's join does).
pub fn join(lt: &Tab, rt: &Tab, lkeys: &[usize], rkeys: &[usize]) -> Tab {
    let mut cols = lt.columns().to_vec();
    for c in rt.columns() {
        if cols.contains(c) {
            cols.push(format!("{c}'"));
        } else {
            cols.push(c.clone());
        }
    }
    let mut out = Tab::new(cols);
    for (li, ri) in join_pairs(lt, rt, lkeys, rkeys) {
        let mut row = lt.row(li).to_vec();
        row.extend(rt.row(ri).iter().cloned());
        out.push(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yat_model::Atom;

    fn tab(rows: &[&[i64]]) -> Tab {
        let mut t = Tab::new(vec!["a".into(), "b".into()]);
        for r in rows {
            t.push(r.iter().map(|&v| Value::Atom(Atom::Int(v))).collect());
        }
        t
    }

    #[test]
    fn reference_ops_behave_setwise() {
        let l = tab(&[&[1, 2], &[1, 2], &[3, 4]]);
        let r = tab(&[&[3, 4], &[5, 6]]);
        assert_eq!(dedup(&l).len(), 2);
        assert_eq!(intersect(&l, &r).len(), 1);
        assert_eq!(diff(&l, &r).len(), 1);
        assert_eq!(union(&l, &r).len(), 3);
        let j = join(&l, &r, &[0], &[0]);
        assert_eq!(j.len(), 1); // only [3,4] finds a partner
        assert_eq!(j.columns(), &["a", "b", "a'", "b'"]);
    }

    #[test]
    fn keys_are_closed_under_concatenation() {
        let a = vec![
            Value::Atom(Atom::Str("x\u{1}ty".into())),
            Value::Atom(Atom::Str("z".into())),
        ];
        let b = vec![
            Value::Atom(Atom::Str("x".into())),
            Value::Atom(Atom::Str("y\u{1}tz".into())),
        ];
        assert_ne!(row_key(&a), row_key(&b));
    }
}
