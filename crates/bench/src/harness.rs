//! A tiny, std-only timing harness for the `benches/` targets.
//!
//! The bench targets are plain `harness = false` executables: each calls
//! [`run`] per measured case, which warms up, picks an iteration count
//! targeting a fixed measurement window, and prints median/mean wall
//! time. No statistics framework — the figures these benches back are
//! order-of-magnitude comparisons (naive vs pushed, monolithic vs split),
//! not microsecond-level regressions.

use std::time::{Duration, Instant};

/// Warm-up window per case.
const WARMUP: Duration = Duration::from_millis(200);
/// Measurement window per case.
const WINDOW: Duration = Duration::from_millis(600);

/// Measures `f`, printing `label`, the median and mean wall time per
/// iteration, and the iteration count.
pub fn run<T, F: FnMut() -> T>(label: &str, mut f: F) {
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP || warm_iters == 0 {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let per = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let iters = ((WINDOW.as_secs_f64() / per).ceil() as u64).clamp(5, 100_000);

    let mut samples: Vec<Duration> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / iters as u32;
    println!(
        "{label:<48} median {:>9}   mean {:>9}   ({iters} iters)",
        yat_obs::profile::fmt_duration(median),
        yat_obs::profile::fmt_duration(mean),
    );
}

/// Prints a group heading, mirroring the old Criterion group names.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

/// Measures `f` like [`run`] but returns the median wall time per
/// iteration instead of printing — machine-readable benches
/// (`fig_scale`) aggregate these into JSON.
pub fn measure<T, F: FnMut() -> T>(mut f: F) -> Duration {
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP || warm_iters == 0 {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let per = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let iters = ((WINDOW.as_secs_f64() / per).ceil() as u64).clamp(5, 100_000);
    let mut samples: Vec<Duration> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}
