//! Seeded scenario builders for the cultural-goods federation.

use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use yat_capability::protocol::WrapperServer;
use yat_capability::{IndexPolicy, StorePolicy};
use yat_mediator::{Dead, FetchOnly, Mediator, MemberRole};
use yat_model::{Label, Node, Tree};
use yat_oql::art::{art_store, art_store_at, fig1_store, ArtSpec};
use yat_oql::O2Wrapper;
use yat_store::{StoreError, StoreOptions};
use yat_wais::{fig1_works, generate_works, WaisSource, WaisWrapper, WorksSpec};
use yat_yatl::paper;

/// Process-wide counter giving every store-backed scenario its own
/// subdirectory, so concurrent tests under one `YAT_STORE` root never
/// collide.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, unique store root under `path` for one scenario mount.
fn unique_store_root(path: &str, tag: &str) -> PathBuf {
    let n = STORE_SEQ.fetch_add(1, Ordering::SeqCst);
    Path::new(path).join(format!("{tag}-{}-{n}", std::process::id()))
}

/// [`StoreOptions`] for a `YAT_STORE` budget (default options when
/// unset).
fn store_opts(budget: Option<u64>) -> StoreOptions {
    match budget {
        Some(b) => StoreOptions::with_budget(b),
        None => StoreOptions::default(),
    }
}

/// One end-to-end scenario configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Artifacts in the O2 database (persons scale at 1/5).
    pub artifacts: usize,
    /// Works in the Wais collection.
    pub works: usize,
    /// Percentage of Impressionist works (Q2 full-text selectivity).
    pub impressionist_pct: u8,
    /// Percentage of works with optional fields.
    pub optional_pct: u8,
    /// Percentage of `cplace`s that are Giverny (Q1 selectivity).
    pub giverny_pct: u8,
    /// RNG seed.
    pub seed: u64,
    /// Index policy pinned on the mediator and both sources (defaults
    /// to `YAT_INDEX`). The differential's index axis sets it per
    /// instance so indexed and scan federations coexist in one process.
    pub index: IndexPolicy,
}

impl Scenario {
    /// A scenario with both sources at `scale` documents and the default
    /// selectivities.
    pub fn at_scale(scale: usize) -> Self {
        Scenario {
            artifacts: scale,
            works: scale,
            impressionist_pct: 30,
            optional_pct: 60,
            giverny_pct: 30,
            seed: 42,
            index: IndexPolicy::from_env(),
        }
    }

    /// The specs for the two generators.
    pub fn specs(&self) -> (ArtSpec, WorksSpec) {
        (
            ArtSpec {
                artifacts: self.artifacts,
                persons: (self.artifacts / 5).max(2),
                seed: self.seed,
            },
            WorksSpec {
                works: self.works,
                impressionist_pct: self.impressionist_pct,
                optional_pct: self.optional_pct,
                giverny_pct: self.giverny_pct,
                seed: self.seed,
            },
        )
    }

    /// Builds the full federation: O2 wrapper + Wais wrapper + view1.
    ///
    /// Honors `YAT_STORE`: under a `dir:` policy both sources mount
    /// persistent stores in a unique subdirectory of the given root
    /// (answers stay byte-identical to the in-memory build); a mount
    /// failure warns and falls back to in-memory, like `YAT_INDEX`.
    pub fn mediator(&self) -> Mediator {
        match StorePolicy::from_env() {
            StorePolicy::Off => self.mediator_mem(),
            StorePolicy::Dir { path, budget } => {
                let root = unique_store_root(&path, "scenario");
                match self.mediator_store(&root, store_opts(budget)) {
                    Ok(m) => m,
                    Err(e) => {
                        yat_obs::warn(format!(
                            "YAT_STORE mount under `{}` failed ({e}); \
                             falling back to in-memory sources",
                            root.display()
                        ));
                        self.mediator_mem()
                    }
                }
            }
        }
    }

    /// The in-memory federation — the oracle every store-backed build is
    /// held to.
    pub fn mediator_mem(&self) -> Mediator {
        let (art, works) = self.specs();
        let mut m = Mediator::new();
        m.set_index_policy(self.index);
        m.connect(Box::new(O2Wrapper::new(
            "o2artifact",
            art_store(&art).with_index_policy(self.index),
        )))
        .expect("fresh mediator accepts the O2 wrapper");
        m.connect(Box::new(WaisWrapper::new(
            "xmlartwork",
            WaisSource::new("works", &generate_works(&works)).with_index_policy(self.index),
        )))
        .expect("fresh mediator accepts the Wais wrapper");
        m.load_program(paper::VIEW1).expect("view1 is well-formed");
        m
    }

    /// The same federation with both sources mounted from persistent
    /// stores under `root` (one subdirectory per source), creating and
    /// populating them when fresh — a second call over the same root
    /// remounts instead of regenerating.
    pub fn mediator_store(&self, root: &Path, opts: StoreOptions) -> Result<Mediator, StoreError> {
        let (art, works) = self.specs();
        let mut m = Mediator::new();
        m.set_index_policy(self.index);
        m.connect(Box::new(O2Wrapper::new(
            "o2artifact",
            art_store_at(&art, &root.join("o2artifact"), opts)?.with_index_policy(self.index),
        )))
        .expect("fresh mediator accepts the O2 wrapper");
        m.connect(Box::new(WaisWrapper::new(
            "xmlartwork",
            WaisSource::open_store(
                "works",
                &generate_works(&works),
                &root.join("xmlartwork"),
                opts,
            )?
            .with_index_policy(self.index),
        )))
        .expect("fresh mediator accepts the Wais wrapper");
        m.load_program(paper::VIEW1).expect("view1 is well-formed");
        Ok(m)
    }
}

/// The style vocabulary `generate_works` draws from — the partition
/// field values of a federated works collection.
pub const FED_STYLES: [&str; 5] = [
    "Impressionist",
    "Post-Impressionist",
    "Realist",
    "Cubist",
    "Romantic",
];

/// An N-member federation over the cultural-goods data: the O2 database
/// replicated across an `art` group, the Wais collection partitioned by
/// `style` across a `wais` group.
///
/// Shard value sets must be disjoint (the registry enforces it), so
/// shard `i` owns the styles `j ≡ i (mod S)` and S caps at the 5-style
/// vocabulary — past that, extra members replicate the O2 database. A
/// query constrained to one style needs only that style's owner — the
/// pruning the `fig_federate` sweep measures.
#[derive(Debug, Clone, PartialEq)]
pub struct FedScenario {
    /// Total member count: `members / 2` (min 1) replicas, the rest
    /// shards.
    pub members: usize,
    /// Artifacts in the replicated O2 database (persons scale at 1/5).
    pub artifacts: usize,
    /// Works across the whole partitioned collection.
    pub works: usize,
    /// Percentage of Impressionist works (Q2 selectivity).
    pub impressionist_pct: u8,
    /// Every k-th shard joins fetch-only (0 = none): its documents are
    /// pulled and evaluated mediator-side, never pushed to.
    pub fetch_only_every: usize,
    /// Member names wrapped in [`Dead`]: they connect, then fail every
    /// data request.
    pub dead: Vec<String>,
    /// RNG seed.
    pub seed: u64,
}

impl FedScenario {
    /// `members` members over `scale` documents per collection, no
    /// fetch-only members, everyone alive.
    pub fn new(members: usize, scale: usize) -> Self {
        FedScenario {
            members,
            artifacts: scale,
            works: scale,
            impressionist_pct: 30,
            fetch_only_every: 0,
            dead: Vec::new(),
            seed: 42,
        }
    }

    /// How many members partition the Wais collection: half the
    /// federation, capped at the style vocabulary (value sets must be
    /// disjoint).
    pub fn shard_count(&self) -> usize {
        self.members
            .saturating_sub(self.members / 2)
            .clamp(1, FED_STYLES.len())
    }

    /// How many members replicate the O2 database: everyone else.
    pub fn replica_count(&self) -> usize {
        self.members.saturating_sub(self.shard_count()).max(1)
    }

    /// Names of the `art` replicas.
    pub fn replica_names(&self) -> Vec<String> {
        (0..self.replica_count())
            .map(|i| format!("art-{i}"))
            .collect()
    }

    /// Names of the `wais` shards.
    pub fn shard_names(&self) -> Vec<String> {
        (0..self.shard_count())
            .map(|i| format!("works-{i}"))
            .collect()
    }

    /// All member names, replicas first.
    pub fn member_names(&self) -> Vec<String> {
        let mut names = self.replica_names();
        names.extend(self.shard_names());
        names
    }

    /// The styles shard `i` owns (disjoint across shards, covering the
    /// whole vocabulary).
    pub fn shard_styles(&self, i: usize) -> BTreeSet<String> {
        let s = self.shard_count();
        FED_STYLES
            .iter()
            .enumerate()
            .filter(|(j, _)| j % s == i)
            .map(|(_, style)| style.to_string())
            .collect()
    }

    /// The shards owning works of `style` — the only members a query
    /// constrained to that style may contact.
    pub fn shards_owning(&self, style: &str) -> Vec<String> {
        (0..self.shard_count())
            .filter(|&i| self.shard_styles(i).contains(style))
            .map(|i| format!("works-{i}"))
            .collect()
    }

    fn art_spec(&self) -> ArtSpec {
        ArtSpec {
            artifacts: self.artifacts,
            persons: (self.artifacts / 5).max(2),
            seed: self.seed,
        }
    }

    /// The works document each shard serves, in shard order: each work
    /// is dealt to one owner of its style, round-robin.
    pub fn shard_docs(&self) -> Vec<Tree> {
        let works = generate_works(&WorksSpec {
            works: self.works,
            impressionist_pct: self.impressionist_pct,
            optional_pct: 60,
            giverny_pct: 30,
            seed: self.seed,
        });
        let s = self.shard_count();
        let mut buckets: Vec<Vec<Tree>> = vec![Vec::new(); s];
        let mut dealt: HashMap<String, usize> = HashMap::new();
        for work in &works.children {
            let style = style_of(work);
            let owners: Vec<usize> = (0..s)
                .filter(|&i| self.shard_styles(i).contains(&style))
                .collect();
            let owners = if owners.is_empty() { vec![0] } else { owners };
            let turn = dealt.entry(style).or_insert(0);
            buckets[owners[*turn % owners.len()]].push(work.clone());
            *turn += 1;
        }
        buckets
            .into_iter()
            .map(|works_of_shard| Node::labeled(works.label.clone(), works_of_shard))
            .collect()
    }

    /// A plain two-source mediator over the same data minus the works
    /// held by the `killed` shards — the oracle a degraded federated
    /// answer is checked against (killed *replicas* are lossless and
    /// must not change the answer at all).
    pub fn plain_twin(&self, killed: &[String]) -> Mediator {
        let docs = self.shard_docs();
        let mut surviving: Vec<Tree> = Vec::new();
        let mut label = None;
        for (name, doc) in self.shard_names().iter().zip(docs) {
            label.get_or_insert(doc.label.clone());
            if !killed.contains(name) {
                surviving.extend(doc.children.iter().cloned());
            }
        }
        let works = Node::labeled(label.expect("at least one shard"), surviving);
        let mut m = Mediator::new();
        m.connect(Box::new(O2Wrapper::new(
            "o2artifact",
            art_store(&self.art_spec()),
        )))
        .expect("fresh mediator accepts the O2 wrapper");
        m.connect(Box::new(WaisWrapper::new(
            "xmlartwork",
            WaisSource::new("works", &works),
        )))
        .expect("fresh mediator accepts the Wais wrapper");
        m.load_program(paper::VIEW1).expect("view1 is well-formed");
        m
    }

    /// Builds the federation: replicas and shards connected as group
    /// members, `view1` loaded.
    pub fn mediator(&self) -> Mediator {
        let spec = self.art_spec();
        let docs = self.shard_docs();
        let mut m = Mediator::new();
        for name in &self.replica_names() {
            let wrapper = O2Wrapper::new(name, art_store(&spec));
            m.connect_member(
                self.boxed(wrapper, self.dead.iter().any(|d| d == name), false),
                "art",
                MemberRole::Replica,
            )
            .expect("fresh mediator accepts every replica");
        }
        for ((i, name), doc) in self.shard_names().iter().enumerate().zip(&docs) {
            let wrapper = WaisWrapper::new(name, WaisSource::new("works", doc));
            let fetch_only = self.fetch_only_every > 0 && (i + 1) % self.fetch_only_every == 0;
            m.connect_member(
                self.boxed(wrapper, self.dead.iter().any(|d| d == name), fetch_only),
                "wais",
                MemberRole::Shard {
                    field: "style".into(),
                    values: self.shard_styles(i),
                },
            )
            .expect("fresh mediator accepts every shard");
        }
        m.load_program(paper::VIEW1).expect("view1 is well-formed");
        m
    }

    fn boxed<W: WrapperServer + 'static>(
        &self,
        wrapper: W,
        dead: bool,
        fetch_only: bool,
    ) -> Box<dyn WrapperServer> {
        match (dead, fetch_only) {
            (true, true) => Box::new(Dead(FetchOnly(wrapper))),
            (true, false) => Box::new(Dead(wrapper)),
            (false, true) => Box::new(FetchOnly(wrapper)),
            (false, false) => Box::new(wrapper),
        }
    }
}

/// The text of a work's `style` element (empty when absent).
fn style_of(work: &Tree) -> String {
    work.children
        .iter()
        .find(|c| matches!(&c.label, Label::Sym(s) if s.as_str() == "style"))
        .and_then(|c| c.children.first())
        .map(|v| format!("{}", v.label))
        .unwrap_or_default()
}

/// The tiny Fig. 1 federation (two artifacts, two works, three persons).
pub fn fig1_mediator() -> Mediator {
    let mut m = Mediator::new();
    m.connect(Box::new(O2Wrapper::new("o2artifact", fig1_store())))
        .expect("fresh mediator accepts the O2 wrapper");
    m.connect(Box::new(WaisWrapper::new(
        "xmlartwork",
        WaisSource::new("works", &fig1_works()),
    )))
    .expect("fresh mediator accepts the Wais wrapper");
    m.load_program(paper::VIEW1).expect("view1 is well-formed");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build_and_answer() {
        let m = Scenario::at_scale(30).mediator();
        let out = m
            .query(
                yat_yatl::paper::Q2,
                yat_mediator::OptimizerOptions::default(),
            )
            .unwrap();
        match out {
            yat_algebra::EvalOut::Tree(t) => assert_eq!(t.label.as_sym(), Some("answers")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn store_backed_scenario_matches_the_in_memory_oracle() {
        use yat_bench_figures_fp::fp;
        let sc = Scenario::at_scale(20);
        let root = std::env::temp_dir().join(format!("yat-scenario-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mem = sc.mediator_mem();
        let disk = sc.mediator_store(&root, StoreOptions::default()).unwrap();
        for query in [paper::Q1, paper::Q2] {
            assert_eq!(fp(&disk, query), fp(&mem, query), "{query}");
        }
        // a remount answers identically too
        drop(disk);
        let remounted = sc.mediator_store(&root, StoreOptions::default()).unwrap();
        for query in [paper::Q1, paper::Q2] {
            assert_eq!(fp(&remounted, query), fp(&mem, query), "remount {query}");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn store_backed_explain_reports_the_storage_section() {
        let sc = Scenario::at_scale(20);
        let root =
            std::env::temp_dir().join(format!("yat-scenario-explain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let disk = sc.mediator_store(&root, StoreOptions::default()).unwrap();
        let plan = disk.plan_query(paper::Q2).unwrap();
        let explain = disk.explain(&plan).unwrap();
        assert!(
            !explain.storage.is_empty(),
            "a store-backed execution reports storage lines"
        );
        let rendered = explain.render();
        assert!(rendered.contains("storage:"), "{rendered}");
        let xml = explain.to_xml().to_xml();
        assert!(xml.contains("<storage"), "{xml}");

        // the in-memory oracle executes the same plan with no storage section
        let mem = sc.mediator_mem();
        let plan = mem.plan_query(paper::Q2).unwrap();
        let explain = mem.explain(&plan).unwrap();
        assert!(explain.storage.is_empty(), "in-memory has no storage");
        assert!(!explain.render().contains("storage:"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn specs_are_deterministic() {
        let a = Scenario::at_scale(10);
        let b = Scenario::at_scale(10);
        assert_eq!(a.specs(), b.specs());
    }

    #[test]
    fn fed_scenario_covers_every_style_disjointly() {
        for members in [2usize, 4, 8, 16, 32] {
            let sc = FedScenario::new(members, 20);
            assert_eq!(
                sc.replica_count() + sc.shard_count(),
                members.max(2),
                "members split exactly"
            );
            let mut seen = std::collections::BTreeMap::new();
            for i in 0..sc.shard_count() {
                for style in sc.shard_styles(i) {
                    assert!(
                        seen.insert(style.clone(), i).is_none(),
                        "style {style} owned by two shards at S={}",
                        sc.shard_count()
                    );
                }
            }
            for style in FED_STYLES {
                assert!(seen.contains_key(style), "style {style} unowned");
                assert!(!sc.shards_owning(style).is_empty());
            }
        }
    }

    #[test]
    fn fed_scenario_answers_match_the_plain_scenario() {
        use yat_bench_figures_fp::fp;
        let plain = Scenario::at_scale(16).mediator();
        for members in [2usize, 5] {
            let fed = FedScenario::new(members, 16).mediator();
            for query in [paper::Q1, paper::Q2] {
                assert_eq!(
                    fp(&fed, query),
                    fp(&plain, query),
                    "members={members} {query}"
                );
            }
        }
    }

    mod yat_bench_figures_fp {
        use super::super::Mediator;
        use crate::figures::fingerprint;
        use yat_mediator::OptimizerOptions;

        pub fn fp(m: &Mediator, query: &str) -> Vec<String> {
            match m.query(query, OptimizerOptions::default()).unwrap() {
                yat_algebra::EvalOut::Tree(t) => fingerprint(&t),
                yat_algebra::EvalOut::Tab(_) => panic!("queries answer trees"),
            }
        }
    }
}
