//! Seeded scenario builders for the cultural-goods federation.

use yat_mediator::Mediator;
use yat_oql::art::{art_store, fig1_store, ArtSpec};
use yat_oql::O2Wrapper;
use yat_wais::{fig1_works, generate_works, WaisSource, WaisWrapper, WorksSpec};
use yat_yatl::paper;

/// One end-to-end scenario configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Artifacts in the O2 database (persons scale at 1/5).
    pub artifacts: usize,
    /// Works in the Wais collection.
    pub works: usize,
    /// Percentage of Impressionist works (Q2 full-text selectivity).
    pub impressionist_pct: u8,
    /// Percentage of works with optional fields.
    pub optional_pct: u8,
    /// Percentage of `cplace`s that are Giverny (Q1 selectivity).
    pub giverny_pct: u8,
    /// RNG seed.
    pub seed: u64,
}

impl Scenario {
    /// A scenario with both sources at `scale` documents and the default
    /// selectivities.
    pub fn at_scale(scale: usize) -> Self {
        Scenario {
            artifacts: scale,
            works: scale,
            impressionist_pct: 30,
            optional_pct: 60,
            giverny_pct: 30,
            seed: 42,
        }
    }

    /// The specs for the two generators.
    pub fn specs(&self) -> (ArtSpec, WorksSpec) {
        (
            ArtSpec {
                artifacts: self.artifacts,
                persons: (self.artifacts / 5).max(2),
                seed: self.seed,
            },
            WorksSpec {
                works: self.works,
                impressionist_pct: self.impressionist_pct,
                optional_pct: self.optional_pct,
                giverny_pct: self.giverny_pct,
                seed: self.seed,
            },
        )
    }

    /// Builds the full federation: O2 wrapper + Wais wrapper + view1.
    pub fn mediator(&self) -> Mediator {
        let (art, works) = self.specs();
        let mut m = Mediator::new();
        m.connect(Box::new(O2Wrapper::new("o2artifact", art_store(&art))))
            .expect("fresh mediator accepts the O2 wrapper");
        m.connect(Box::new(WaisWrapper::new(
            "xmlartwork",
            WaisSource::new("works", &generate_works(&works)),
        )))
        .expect("fresh mediator accepts the Wais wrapper");
        m.load_program(paper::VIEW1).expect("view1 is well-formed");
        m
    }
}

/// The tiny Fig. 1 federation (two artifacts, two works, three persons).
pub fn fig1_mediator() -> Mediator {
    let mut m = Mediator::new();
    m.connect(Box::new(O2Wrapper::new("o2artifact", fig1_store())))
        .expect("fresh mediator accepts the O2 wrapper");
    m.connect(Box::new(WaisWrapper::new(
        "xmlartwork",
        WaisSource::new("works", &fig1_works()),
    )))
    .expect("fresh mediator accepts the Wais wrapper");
    m.load_program(paper::VIEW1).expect("view1 is well-formed");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build_and_answer() {
        let m = Scenario::at_scale(30).mediator();
        let out = m
            .query(
                yat_yatl::paper::Q2,
                yat_mediator::OptimizerOptions::default(),
            )
            .unwrap();
        match out {
            yat_algebra::EvalOut::Tree(t) => assert_eq!(t.label.as_sym(), Some("answers")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn specs_are_deterministic() {
        let a = Scenario::at_scale(10);
        let b = Scenario::at_scale(10);
        assert_eq!(a.specs(), b.specs());
    }
}
