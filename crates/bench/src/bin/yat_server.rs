//! `yat-server` — the paper's `yat-mediator -port 6666`, for real: serves
//! the seeded cultural-goods federation over TCP until a client sends
//! `shutdown`.
//!
//! ```text
//! yat-server [--port N] [--scale N] [--workers N] [--queue N] [--latency-ms N]
//!            [--federate N]
//! ```
//!
//! * `--port` — TCP port on 127.0.0.1 (default 0 = OS-assigned).
//! * `--scale` — documents per source in the seeded scenario (default 50).
//! * `--workers` — worker threads (default 4).
//! * `--queue` — admission-queue capacity (default 64).
//! * `--latency-ms` — simulated per-source round-trip delay (default 0).
//! * `--federate` — serve an N-member federation registry instead of the
//!   plain two-source scenario: `N/2` O2 replicas, the rest style
//!   shards of the Wais collection. `YAT_PARTIAL` / `YAT_SCHED` select
//!   the partial-failure and scheduling policies as everywhere else.
//!
//! Execution mode and cache policy come from `YAT_EXEC_MODE` / `YAT_CACHE`
//! as everywhere else. Prints one `listening on <addr>` line once ready —
//! the CI smoke job and `yat-load --shutdown` drive it from there.

use std::time::Duration;
use yat_bench::workload::{FedScenario, Scenario};
use yat_mediator::Latency;
use yat_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: yat-server [--port N] [--scale N] [--workers N] [--queue N] [--latency-ms N] [--federate N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut port: u16 = 0;
    let mut scale: usize = 50;
    let mut config = ServerConfig::default();
    let mut latency_ms: u64 = 0;
    let mut federate: usize = 0;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> &str {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("{name} needs a value");
                    usage();
                }
            }
        };
        match flag.as_str() {
            "--port" => port = value("--port").parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = value("--scale").parse().unwrap_or_else(|_| usage()),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => {
                config.queue_capacity = value("--queue").parse().unwrap_or_else(|_| usage())
            }
            "--latency-ms" => {
                latency_ms = value("--latency-ms").parse().unwrap_or_else(|_| usage())
            }
            "--federate" => federate = value("--federate").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    let (mediator, sources) = if federate > 0 {
        let sc = FedScenario::new(federate, scale);
        (sc.mediator(), sc.member_names())
    } else {
        (
            Scenario::at_scale(scale).mediator(),
            vec!["o2artifact".into(), "xmlartwork".into()],
        )
    };
    if latency_ms > 0 {
        for source in &sources {
            if let Some(conn) = mediator.connection(source) {
                conn.set_latency(Some(Latency::fixed(Duration::from_millis(latency_ms))));
            }
        }
    }
    let handle = match Server::bind(mediator, config, ("127.0.0.1", port)) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("yat-server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "yat-server listening on {} ({} workers, queue {}, scale {scale}, {} sources)",
        handle.addr(),
        config.workers.max(1),
        config.queue_capacity.max(1),
        sources.len(),
    );
    // serves until a client's `shutdown` verb drains the pool
    handle.join();
    println!("yat-server drained and stopped");
}
