//! Regenerates every figure of the paper as text: plans before/after each
//! rewriting, result fingerprints proving equivalence, and traffic
//! measurements backing the optimization claims.
//!
//! ```text
//! cargo run -p yat-bench --bin report            # all figures
//! cargo run -p yat-bench --bin report -- fig8    # one figure
//! cargo run -p yat-bench --bin report -- profile # EXPLAIN ANALYZE of Q1/Q2
//! ```

use std::time::Instant;
use yat_algebra::{eval, EvalCtx, EvalOut, FnRegistry, SkolemRegistry};
use yat_bench::figures::{self, fig4, fig7, pipeline};
use yat_bench::workload::{fig1_mediator, Scenario};
use yat_capability::xml::interface_to_xml;
use yat_mediator::Mediator;
use yat_yatl::{paper, translate};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `bench-diff <old.json> <new.json>` is a CI gate, not a figure:
    // dispatch before the figure fan-out and exit with its verdict.
    if args.first().map(String::as_str) == Some("bench-diff") {
        match bench_diff(args.get(1), args.get(2)) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("bench-diff: {msg}");
                std::process::exit(1);
            }
        }
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("fig1") {
        fig1();
    }
    if want("fig2") {
        fig2();
    }
    if want("fig3") {
        fig3();
    }
    if want("fig4") {
        fig4_report();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig6") {
        fig6();
    }
    if want("fig7") {
        fig7_report();
    }
    if want("fig8") {
        fig8();
    }
    if want("fig9") {
        fig9();
    }
    if want("profile") {
        profile_report();
    }
}

fn heading(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

fn fig1() {
    heading("Figure 1 — sample XML data for cultural goods");
    let store = yat_oql::art::fig1_store();
    let artifacts = yat_oql::export::extent_tree(&store, "artifacts").expect("extent exists");
    let first = yat_model::xml_convert::tree_to_xml(&artifacts.children[0]);
    println!("O2 export (first object):\n{}", first.to_pretty_xml());
    let works = yat_wais::fig1_works();
    let first = yat_model::xml_convert::tree_to_xml(&works.children[0]);
    println!("XML-Wais document (first work):\n{}", first.to_pretty_xml());
}

fn fig2() {
    heading("Figure 2 — installing wrappers and mediators");
    let mut s = yat_mediator::session::Session::start();
    s.connect(
        "logos.inria.fr",
        Box::new(yat_oql::O2Wrapper::new(
            "o2artifact",
            yat_oql::art::fig1_store(),
        )),
    )
    .expect("connect o2");
    s.connect(
        "sappho.ics.forth.gr",
        Box::new(yat_wais::WaisWrapper::new(
            "xmlartwork",
            yat_wais::WaisSource::new("works", &yat_wais::fig1_works()),
        )),
    )
    .expect("connect wais");
    s.load("/u/cluet/YAT/view1.yat", paper::VIEW1)
        .expect("load view1");
    println!("{}", s.transcript());
}

fn fig3() {
    heading("Figure 3 — structural metadata and instantiation");
    let store = yat_oql::art::fig1_store();
    let art = yat_oql::export::schema_model(&store, "art");
    println!("{art}\n");
    let wais = yat_wais::WaisWrapper::new(
        "xmlartwork",
        yat_wais::WaisSource::new("works", &yat_wais::fig1_works()),
    );
    println!("{}\n", wais.structure());
    // the instantiation chain Artifact <: ODMG::Class (and everything <: YAT)
    let yat = yat_model::instantiate::yat_metamodel();
    for name in ["Artifact", "Person"] {
        let ok = yat_model::instantiate::subsumes(
            &yat_model::Pattern::Ref("Yat".into()),
            &yat_model::Pattern::Ref(name.into()),
            Some(&yat),
            Some(&art),
        );
        println!("{name} <: YAT : {ok}");
    }
}

fn fig4_report() {
    heading("Figure 4 — Bind and Tree operators");
    let forest = fig4::forest(4);
    let funcs = FnRegistry::with_builtins();
    let skolems = SkolemRegistry::new();
    let ctx = EvalCtx::local(&forest, &funcs, &skolems);
    println!("plan:\n{}", fig4::bind_plan().explain());
    if let EvalOut::Tab(tab) = eval(&fig4::bind_plan(), &ctx).expect("bind evaluates") {
        println!("Tab ({} rows):\n{tab}", tab.len());
    }
    println!("plan:\n{}", fig4::tree_plan().explain());
    if let EvalOut::Tree(t) = eval(&fig4::tree_plan(), &ctx).expect("tree evaluates") {
        println!("constructed tree:\n{t}\n");
    }
    // scaling
    for n in [100usize, 1000, 5000] {
        let forest = fig4::forest(n);
        let ctx = EvalCtx::local(&forest, &funcs, &skolems);
        let t0 = Instant::now();
        let rows = match eval(&fig4::bind_plan(), &ctx).expect("bind evaluates") {
            EvalOut::Tab(t) => t.len(),
            _ => 0,
        };
        let bind_t = t0.elapsed();
        let t0 = Instant::now();
        let _ = eval(&fig4::tree_plan(), &ctx).expect("tree evaluates");
        let tree_t = t0.elapsed();
        println!("n={n:>5}  bind: {rows} rows in {bind_t:?}   bind+tree: {tree_t:?}");
    }
}

fn fig5() {
    heading("Figure 5 — algebraization of YATL queries");
    println!("view1.yat:\n{}", paper::VIEW1.trim());
    println!("\nalgebra:\n{}", translate(&paper::view1()).explain());
    println!("Q1:\n{}", paper::Q1.trim());
    println!("\nalgebra:\n{}", translate(&paper::q1()).explain());
}

fn fig6() {
    heading("Figure 6 — O2 filter patterns and operational interface");
    let w = yat_oql::O2Wrapper::new("o2artifact", yat_oql::art::fig1_store());
    println!("{}", interface_to_xml(&w.interface()).to_pretty_xml());
}

fn fig7_report() {
    heading("Figure 7 — algebraic equivalences (time per strategy)");

    println!("\n-- navigation vs extent join (artifacts → owners, 24-field persons) --");
    for n in [200usize, 1000, 5000] {
        let forest = fig7::wide_forest(n, 24);
        let t0 = Instant::now();
        let nav = figures::eval_rows(&fig7::navigation_plan_projected(), &forest);
        let nav_t = t0.elapsed();
        let t0 = Instant::now();
        let join = figures::eval_rows(&fig7::extent_join_plan(), &forest);
        let join_t = t0.elapsed();
        assert_eq!(nav, join, "equivalence must hold");
        println!("n={n:>5}  navigation: {nav_t:?}   extent join: {join_t:?}   ({nav} rows)");
    }

    println!("\n-- monolithic vs linearly split Bind (works) --");
    for n in [500usize, 2000] {
        let forest = fig4::forest(n);
        let t0 = Instant::now();
        let a = figures::eval_rows(&fig7::deep_bind_plan(), &forest);
        let mono = t0.elapsed();
        let t0 = Instant::now();
        let b = figures::eval_rows(&fig7::split_bind_plan(), &forest);
        let split = t0.elapsed();
        assert_eq!(a, b);
        println!("n={n:>5}  monolithic: {mono:?}   split: {split:?}");
    }

    println!("\n-- typed vs untyped filter simplification --");
    for n in [500usize, 2000] {
        let forest = fig4::forest(n);
        let t0 = Instant::now();
        figures::eval_rows(&fig7::full_filter_bind(), &forest);
        let full = t0.elapsed();
        let t0 = Instant::now();
        figures::eval_rows(&fig7::untyped_simplified_bind(), &forest);
        let untyped = t0.elapsed();
        let t0 = Instant::now();
        figures::eval_rows(&fig7::typed_simplified_bind(), &forest);
        let typed = t0.elapsed();
        println!("n={n:>5}  full: {full:?}   untyped-simplified: {untyped:?}   typed-simplified: {typed:?}");
    }

    println!("\n-- label variables over structured data --");
    let forest = fig7::forest(50);
    let rows = figures::eval_rows(&fig7::label_variable_bind(), &forest);
    println!("attribute-name rows over persons: {rows}");
}

fn run_levels(m: &Mediator, query: &str, containment: bool, label: &str) {
    let plan = m.plan_query(query).expect("query plans");
    for level in pipeline::LEVELS {
        let (opt, trace) = m.optimize(&plan, level.options(containment));
        m.reset_traffic();
        let t0 = Instant::now();
        let out = m.execute(&opt).expect("plan executes");
        let elapsed = t0.elapsed();
        let traffic = m.traffic();
        let fp_len = match &out {
            EvalOut::Tree(t) => figures::fingerprint(t).len(),
            EvalOut::Tab(t) => t.len(),
        };
        println!(
            "{label} {:>12}: {elapsed:>10?}  bytes={:>8}  docs={:>5}  round-trips={:>4}  result-leaves={fp_len}  (rules fired: {})",
            level.name(),
            traffic.total_bytes(),
            traffic.documents_received,
            traffic.round_trips,
            trace.steps.len(),
        );
    }
}

fn fig8() {
    heading("Figure 8 — optimization of Q1 (naive → composed → pushed)");
    let m = fig1_mediator();
    let plan = m.plan_query(paper::Q1).expect("Q1 plans");
    println!("naive (materialize the view):\n{}", plan.explain());
    let (opt, _) = m.optimize(&plan, pipeline::Level::Composition.options(true));
    println!(
        "after round 1 (Bind–Tree elimination, prune, Fig. 8 branch elimination):\n{}",
        opt.explain()
    );
    let (opt, _) = m.optimize(&plan, pipeline::Level::Full.options(true));
    println!("fully optimized:\n{}", opt.explain());

    println!("\n-- sweep (artifacts = works = n, Giverny 30%) --");
    for n in [50usize, 200, 800] {
        let m = Scenario::at_scale(n).mediator();
        run_levels(&m, paper::Q1, true, &format!("Q1 n={n:>4}"));
    }
}

fn fig9() {
    heading("Figure 9 — Q2: capability-based rewriting and information passing");
    let m = fig1_mediator();
    let plan = m.plan_query(paper::Q2).expect("Q2 plans");
    println!("naive:\n{}", plan.explain());
    let (opt, _) = m.optimize(&plan, pipeline::Level::Capability.options(false));
    println!(
        "after capability round (contains pushed, fragments delegated):\n{}",
        opt.explain()
    );
    let (opt, _) = m.optimize(&plan, pipeline::Level::Full.options(false));
    println!(
        "with information passing (Fig. 9 right):\n{}",
        opt.explain()
    );

    println!("\n-- sweep (n documents per source, Impressionist 30%) --");
    for n in [50usize, 200, 800] {
        let m = Scenario::at_scale(n).mediator();
        run_levels(&m, paper::Q2, false, &format!("Q2 n={n:>4}"));
    }
    println!("\n-- selectivity sweep at n=400 --");
    for pct in [5u8, 20, 60] {
        let mut sc = Scenario::at_scale(400);
        sc.impressionist_pct = pct;
        let m = sc.mediator();
        run_levels(&m, paper::Q2, false, &format!("Q2 sel={pct:>2}%"));
    }
}

/// Compares two `BENCH_scale.json` files (old baseline, new run) on the
/// *speedup* column — hashed-vs-string ratios are machine-independent,
/// so a checked-in baseline from one machine still gates CI on another.
/// Fails when any matching entry's speedup regressed by more than 25%
/// (new < old × 0.75). End-to-end entries carry no ratio — no `speedup`
/// key (older baselines wrote `baseline_ns: 0` with a placeholder 1.0;
/// both spellings are skipped) — and are reported informationally only.
fn bench_diff(old_path: Option<&String>, new_path: Option<&String>) -> Result<(), String> {
    let (old_path, new_path) = match (old_path, new_path) {
        (Some(o), Some(n)) => (o, n),
        _ => return Err("usage: report bench-diff <old.json> <new.json>".into()),
    };
    // rows are (name, n, baseline_ns, speedup-if-ratio-gated)
    type Row = (String, u64, f64, Option<f64>);
    let load = |path: &str| -> Result<Vec<Row>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let json = yat_bench::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let arr = json
            .as_arr()
            .ok_or_else(|| format!("{path}: expected a top-level array"))?;
        arr.iter()
            .map(|e| {
                let field = |k: &str| {
                    e.get(k)
                        .and_then(yat_bench::json::Json::as_f64)
                        .ok_or_else(|| format!("{path}: entry missing numeric \"{k}\""))
                };
                let base = field("baseline_ns")?;
                // a baseline-less row's ratio is meaningless whether or
                // not an old writer stamped a placeholder there
                let speedup = if base == 0.0 {
                    None
                } else {
                    e.get("speedup").and_then(yat_bench::json::Json::as_f64)
                };
                Ok((
                    e.get("name")
                        .and_then(yat_bench::json::Json::as_str)
                        .ok_or_else(|| format!("{path}: entry missing \"name\""))?
                        .to_string(),
                    field("n")? as u64,
                    base,
                    speedup,
                ))
            })
            .collect()
    };
    let old = load(old_path)?;
    let new = load(new_path)?;

    // Disjoint name sets are not a regression — the two files measure
    // different benchmarks (a baseline from before a bench was added, or
    // a bench that was renamed). Note it and exit clean; the gate only
    // judges rows both files share.
    if !old.is_empty()
        && !new.is_empty()
        && old
            .iter()
            .all(|(name, n, _, _)| !new.iter().any(|(nn, nnn, _, _)| nn == name && nnn == n))
    {
        println!(
            "bench-diff: no comparable rows — {old_path} and {new_path} share no (name, n) entries"
        );
        return Ok(());
    }

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for (name, n, _, old_speedup) in &old {
        let Some((_, _, _, new_speedup)) =
            new.iter().find(|(nn, nnn, _, _)| nn == name && nnn == n)
        else {
            regressions.push(format!("{name} n={n}: missing from {new_path}"));
            continue;
        };
        let Some(old_speedup) = old_speedup else {
            println!("{name:<8} n={n:<6} end-to-end only, no ratio gate");
            continue;
        };
        let Some(new_speedup) = new_speedup else {
            regressions.push(format!(
                "{name} n={n}: baseline has a ratio but the new run carries none"
            ));
            continue;
        };
        compared += 1;
        let verdict = if *new_speedup < old_speedup * 0.75 {
            regressions.push(format!(
                "{name} n={n}: speedup {new_speedup:.2}x < 75% of baseline {old_speedup:.2}x"
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{name:<8} n={n:<6} speedup {old_speedup:>7.2}x -> {new_speedup:>7.2}x   {verdict}"
        );
    }
    if compared == 0 {
        return Err("no ratio-gated entries in common — wrong files?".into());
    }
    if regressions.is_empty() {
        println!("bench-diff: {compared} ratio-gated entries, none regressed >25%");
        Ok(())
    } else {
        Err(regressions.join("\n"))
    }
}

fn profile_report() {
    heading("EXPLAIN ANALYZE — per-operator profiles of Q1 and Q2");
    let m = fig1_mediator();
    for (name, query, containment) in [("Q1", paper::Q1, true), ("Q2", paper::Q2, false)] {
        let plan = m.plan_query(query).expect("query plans");
        println!("\n-- {name}, naive (view materialized) --");
        let ex = m.explain(&plan).expect("naive plan explains");
        print!("{}", ex.render());

        println!("\n-- {name}, fully optimized --");
        let (opt, trace) = m.optimize(&plan, pipeline::Level::Full.options(containment));
        let ex = m
            .explain_with_trace(&opt, Some(trace))
            .expect("optimized plan explains");
        print!("{}", ex.render());
    }

    // the same profile as a document, so it can be stored or diffed
    let plan = m.plan_query(paper::Q1).expect("Q1 plans");
    let (opt, _) = m.optimize(&plan, pipeline::Level::Full.options(true));
    let ex = m.explain(&opt).expect("Q1 explains");
    println!("\n-- Q1 optimized profile as XML --");
    println!("{}", ex.to_xml().to_pretty_xml());
}

#[cfg(test)]
mod tests {
    use super::bench_diff;

    fn write(name: &str, body: &str) -> String {
        let path =
            std::env::temp_dir().join(format!("yat-bench-diff-{}-{name}", std::process::id()));
        std::fs::write(&path, body).unwrap();
        path.to_string_lossy().into_owned()
    }

    /// Two files that share no (name, n) rows compare nothing: the diff
    /// notes it and exits zero instead of reporting every row missing.
    #[test]
    fn disjoint_name_sets_are_not_a_regression() {
        let old = write(
            "old.json",
            r#"[{"name": "fig8", "n": 100, "baseline_ns": 10, "speedup": 2.0}]"#,
        );
        let new = write(
            "new.json",
            r#"[{"name": "fig9", "n": 100, "baseline_ns": 10, "speedup": 2.0}]"#,
        );
        bench_diff(Some(&old), Some(&new)).expect("disjoint sets exit clean");
        let _ = std::fs::remove_file(&old);
        let _ = std::fs::remove_file(&new);
    }

    /// Overlapping files still gate: a shared row that regressed past the
    /// 25% envelope fails, and a row missing from the new run is named.
    #[test]
    fn overlapping_sets_still_gate_regressions() {
        let old = write(
            "old-gate.json",
            r#"[{"name": "fig8", "n": 100, "baseline_ns": 10, "speedup": 2.0},
                {"name": "fig8", "n": 200, "baseline_ns": 10, "speedup": 2.0}]"#,
        );
        let new = write(
            "new-gate.json",
            r#"[{"name": "fig8", "n": 100, "baseline_ns": 10, "speedup": 1.0}]"#,
        );
        let err = bench_diff(Some(&old), Some(&new)).expect_err("a 2x->1x fall regresses");
        assert!(err.contains("fig8 n=100"), "the fallen row is named: {err}");
        assert!(
            err.contains("fig8 n=200") && err.contains("missing"),
            "the missing row is named: {err}"
        );
        let _ = std::fs::remove_file(&old);
        let _ = std::fs::remove_file(&new);
    }
}
