//! `yat-load` — seeded closed/open-loop load against a live `yat-server`.
//!
//! ```text
//! yat-load --addr HOST:PORT [--clients N] [--queries N] [--seed N]
//!          [--mode closed|open:QPS] [--deadline-ms N] [--stream]
//!          [--verify-scale N] [--p99-max-ms X] [--shutdown] [--json PATH]
//! ```
//!
//! Drives the Q1/Q2 mix. With `--verify-scale N` it answers the same
//! seeded scenario in-process first and compares every wire answer
//! byte-for-byte (streamed answers are reassembled first). Exits nonzero on protocol errors, server errors,
//! verification mismatches, or a p99 above `--p99-max-ms` — which is
//! what lets CI use it as a gate. `--shutdown` sends the drain verb when
//! the run completes; `--json` writes the report machine-readably.

use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use yat_bench::workload::Scenario;
use yat_capability::protocol::ServerReply;
use yat_mediator::OptimizerOptions;
use yat_server::{load, Client, LoadMode, LoadSpec};
use yat_yatl::paper;

fn usage() -> ! {
    eprintln!(
        "usage: yat-load --addr HOST:PORT [--clients N] [--queries N] [--seed N] \
         [--mode closed|open:QPS] [--deadline-ms N] [--stream] [--verify-scale N] \
         [--p99-max-ms X] [--shutdown] [--json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut spec = LoadSpec::closed(vec![paper::Q1.to_string(), paper::Q2.to_string()]);
    let mut verify_scale: Option<usize> = None;
    let mut p99_max_ms: Option<f64> = None;
    let mut shutdown = false;
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> &str {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("{name} needs a value");
                    usage();
                }
            }
        };
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr").to_string()),
            "--clients" => spec.clients = value("--clients").parse().unwrap_or_else(|_| usage()),
            "--queries" => spec.queries = value("--queries").parse().unwrap_or_else(|_| usage()),
            "--seed" => spec.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                spec.mode = match value("--mode") {
                    "closed" => LoadMode::Closed,
                    open => match open.strip_prefix("open:").map(str::parse) {
                        Some(Ok(offered_qps)) => LoadMode::Open { offered_qps },
                        _ => usage(),
                    },
                }
            }
            "--deadline-ms" => {
                spec.deadline_ms = Some(value("--deadline-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--verify-scale" => {
                verify_scale = Some(value("--verify-scale").parse().unwrap_or_else(|_| usage()))
            }
            "--p99-max-ms" => {
                p99_max_ms = Some(value("--p99-max-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--stream" => spec.stream = true,
            "--shutdown" => shutdown = true,
            "--json" => json_path = Some(value("--json").to_string()),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let addr: SocketAddr = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(addr) => addr,
        None => {
            eprintln!("yat-load: cannot resolve `{addr}`");
            std::process::exit(2);
        }
    };

    if let Some(scale) = verify_scale {
        // answer the same seeded scenario in-process: the wire must
        // reproduce these bytes exactly
        let reference = Scenario::at_scale(scale).mediator();
        let mut expected = HashMap::new();
        for query in &spec.mix {
            let out = reference
                .query(query, OptimizerOptions::default())
                .expect("reference query answers in-process");
            expected.insert(query.clone(), ServerReply::answer(out).to_xml().to_xml());
        }
        spec.expected = Some(expected);
    }

    let report = load::run(addr, &spec);
    println!(
        "yat-load: {} answered / {} sent in {:.2}s  ({:.1} q/s)  p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms  \
         overloaded {}  errors {}  protocol errors {}  mismatches {}",
        report.answered,
        report.sent,
        report.elapsed.as_secs_f64(),
        report.throughput_qps(),
        report.p50_ms(),
        report.p95_ms(),
        report.p99_ms(),
        report.overloaded,
        report.errors,
        report.protocol_errors,
        report.mismatches,
    );
    if spec.stream {
        println!(
            "yat-load: streamed — ttfr p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms",
            report.ttfr_percentile_ms(0.50),
            report.ttfr_percentile_ms(0.95),
            report.ttfr_percentile_ms(0.99),
        );
    }

    if let Some(path) = json_path {
        let json = format!(
            "{{\"answered\": {}, \"sent\": {}, \"elapsed_s\": {:.3}, \"throughput_qps\": {:.3}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"overloaded\": {}, \
             \"errors\": {}, \"protocol_errors\": {}, \"mismatches\": {}, \
             \"stream\": {}, \"ttfr_p50_ms\": {:.3}, \"ttfr_p99_ms\": {:.3}}}\n",
            report.answered,
            report.sent,
            report.elapsed.as_secs_f64(),
            report.throughput_qps(),
            report.p50_ms(),
            report.p95_ms(),
            report.p99_ms(),
            report.overloaded,
            report.errors,
            report.protocol_errors,
            report.mismatches,
            spec.stream,
            report.ttfr_percentile_ms(0.50),
            report.ttfr_percentile_ms(0.99),
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("yat-load: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    if shutdown {
        match Client::connect(addr).and_then(|mut c| c.shutdown()) {
            Ok(drained) => println!("yat-load: server drained ({drained} in flight)"),
            Err(e) => {
                eprintln!("yat-load: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut failed = false;
    if !report.clean() {
        eprintln!("yat-load: FAIL — run was not clean");
        failed = true;
    }
    if report.answered as usize != spec.queries {
        eprintln!(
            "yat-load: FAIL — {} of {} queries answered",
            report.answered, spec.queries
        );
        failed = true;
    }
    if let Some(bound) = p99_max_ms {
        if report.p99_ms() > bound {
            eprintln!(
                "yat-load: FAIL — p99 {:.2}ms exceeds the {bound:.2}ms bound",
                report.p99_ms()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
