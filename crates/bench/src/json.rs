//! A minimal JSON reader/writer for the benchmark result files.
//!
//! The workspace is intentionally dependency-free, so the machine-
//! readable bench output (`BENCH_scale.json`) is read back by this tiny
//! hand-rolled parser instead of serde. It supports the full JSON value
//! grammar except `\u` escapes beyond the BMP surrogate-free range —
//! far more than the flat `[{name, n, hashed_ns, ...}]` schema needs.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (held as f64 — bench counters fit losslessly well past
    /// the precision this comparison needs).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // copy one UTF-8 scalar
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        members.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_bench_schema() {
        let text = r#"[
            {"name": "dedup", "n": 1000, "hashed_ns": 12345, "baseline_ns": 67890, "speedup": 5.5},
            {"name": "q1 e2e", "n": 200, "hashed_ns": 1e6, "baseline_ns": 0, "speedup": 1.0}
        ]"#;
        let v = parse(text).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("dedup"));
        assert_eq!(arr[0].get("speedup").unwrap().as_f64(), Some(5.5));
        assert_eq!(arr[1].get("hashed_ns").unwrap().as_f64(), Some(1e6));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[] trailing").is_err());
    }

    #[test]
    fn escapes_control_chars() {
        assert_eq!(escape("a\"b\u{1}"), "a\\\"b\\u0001");
        assert_eq!(parse("\"a\\u0001\"").unwrap(), Json::Str("a\u{1}".into()));
    }
}
