//! # yat-bench — workloads and figure reproductions
//!
//! The paper has no quantitative tables; its evaluation is the worked
//! figures (algebraic translations and rewritings of Q1/Q2 over the O2
//! and XML-Wais sources). This crate makes each figure executable and
//! measurable:
//!
//! * [`workload`] — parameterized, seeded scenario builders shared by
//!   benches, the report binary and the integration tests;
//! * [`figures`] — per-figure plan constructors: the Fig. 4 Bind/Tree
//!   pair, the Fig. 7 equivalence pairs (before/after of each rewriting),
//!   and the Fig. 8/9 pipelines at every optimization level;
//! * [`harness`] — a std-only timing harness;
//! * `benches/` — `harness = false` benchmarks regenerating the
//!   performance claim behind each figure;
//! * `src/bin/report.rs` — prints the plans, traffic and result
//!   fingerprints per figure (the source of EXPERIMENTS.md).

pub mod baseline;
pub mod figures;
pub mod harness;
pub mod json;
pub mod workload;
