//! Answer-cache payoff — Q1 and Q2 executed repeatedly against sources
//! with ~25 ms of simulated wire latency, cold vs warm, under both
//! execution modes. A cold cache pays full wire cost; a warm one answers
//! every fetch and push from memory, so warm latency collapses to the
//! mediator-side evaluation time regardless of execution mode. A final
//! selectivity sweep rotates a Q2-shaped query through several price
//! thresholds (each a distinct plan signature) and reports the hit rate
//! and bytes saved the cache accumulates across the workload.

use std::time::Duration;
use yat_bench::harness;
use yat_bench::workload::Scenario;
use yat_mediator::{CachePolicy, ExecMode, Latency, Mediator, OptimizerOptions};
use yat_yatl::paper;

/// Per-source simulated wire latency: 25 ms base + up to 5 ms of
/// deterministic per-request jitter (same shape as `fig_parallel`).
fn add_latency(m: &Mediator) {
    for (i, src) in ["o2artifact", "xmlartwork"].iter().enumerate() {
        m.connection(src)
            .expect("scenario connects both sources")
            .set_latency(Some(Latency {
                base: Duration::from_millis(25),
                jitter: Duration::from_millis(5),
                seed: 0xBE7C + i as u64,
            }));
    }
}

fn main() {
    let scenario = Scenario::at_scale(60);
    let cases = [
        ("q1", paper::Q1, OptimizerOptions::full()),
        ("q2", paper::Q2, OptimizerOptions::default()),
    ];
    let modes = [
        ("sequential", ExecMode::Sequential),
        ("parallel/4", ExecMode::Parallel { max_in_flight: 4 }),
    ];

    for (mode_name, mode) in modes {
        harness::group(&format!("fig_cache/{mode_name}"));
        for (name, query, options) in cases {
            let mut m = scenario.mediator();
            add_latency(&m);
            m.set_exec_mode(mode);
            m.set_cache_policy(CachePolicy::bounded());
            let plan = m.plan_query(query).expect("paper query plans");
            let (opt, _) = m.optimize(&plan, options);

            // cold: every iteration starts from an empty cache and pays
            // the full wire latency
            harness::run(&format!("{name}/cold"), || {
                m.cache().clear();
                m.execute(&opt).expect("query executes")
            });

            // warm: the answers stay cached between iterations
            m.execute(&opt).expect("query executes");
            harness::run(&format!("{name}/warm"), || {
                m.execute(&opt).expect("query executes")
            });
            let stats = m.cache_stats();
            println!(
                "{:<48} hit rate {:>5.1}%   {} B saved   ({} lookups)",
                format!("{name}/stats"),
                100.0 * stats.hit_rate(),
                stats.bytes_saved,
                stats.lookups,
            );
        }

        // Selectivity sweep: a Q2-shaped workload rotating through four
        // price thresholds. Each threshold is a distinct signature, so
        // the first round misses four times and every later round hits.
        harness::group(&format!("fig_cache/{mode_name}/selectivity"));
        let mut m = scenario.mediator();
        add_latency(&m);
        m.set_exec_mode(mode);
        m.set_cache_policy(CachePolicy::bounded());
        let thresholds = [50_000, 100_000, 200_000, 400_000];
        const ROUNDS: usize = 8;
        for _ in 0..ROUNDS {
            for k in thresholds {
                let q = format!(
                    "MAKE answers *($t,$a,$p) := answer [ title: $t, artist: $a, price: $p ] \
                     MATCH artworks WITH doc.work.[ title.$t, artist.$a, price.$p, style.$s ] \
                     WHERE $s = \"Impressionist\" AND $p <= {k}.00"
                );
                m.query(&q, OptimizerOptions::default())
                    .expect("sweep query executes");
            }
        }
        let stats = m.cache_stats();
        println!(
            "{:<48} hit rate {:>5.1}%   {} B saved   ({} lookups, {} insertions)",
            format!("{ROUNDS} rounds x {} thresholds", thresholds.len()),
            100.0 * stats.hit_rate(),
            stats.bytes_saved,
            stats.lookups,
            stats.insertions,
        );
    }
}
