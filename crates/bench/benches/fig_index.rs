//! Index-plane sweep: selective queries against each of the three index
//! structures — the Wais inverted index, the model's structural
//! [`TreeIndex`], and the O2 per-extent field indexes — timed indexed
//! vs scan at n = 10^3 .. 10^6 documents. The scan paths are the
//! semantic oracle, so every timed pair is also an equality assertion:
//! a divergence aborts the bench.
//!
//! Three entry families, one per index structure:
//!
//! - `wais contains` — a pushed full-text predicate whose needle occurs
//!   in exactly one document (the number token of the last title), the
//!   paper's "selective pushed query". Indexed cost is one posting
//!   probe; scan cost walks every live document.
//! - `wais giverny` — a ~10%-selectivity needle, showing the indexed
//!   cost tracks the *hit count*, not the collection.
//! - `model match` — structural matching of a constant-leaf filter via
//!   [`match_filter_indexed`] (path-hash candidates) vs the full walker.
//! - `oql eq` — an extent eq predicate probing the per-field hash index
//!   vs the extent scan, toggled by the store's [`IndexPolicy`].
//!
//! Index *builds* happen outside the measurement windows: the plane is
//! built around build-once / probe-per-query, and the builds are already
//! exercised (and timed end to end) by the generators.
//!
//! Writes `BENCH_index.json` (override with `YAT_INDEX_OUT`) with one
//! entry per (family, n):
//!
//! ```json
//! {"name": "wais contains", "n": 1000, "indexed_ns": ..., "scan_ns": ..., "speedup": ...}
//! ```
//!
//! Knobs: `YAT_INDEX_NS=1000,10000` overrides the sweep sizes (CI smoke
//! runs small sizes); `YAT_INDEX_GATE=1` additionally asserts every
//! entry's indexed path is at least as fast as its scan — combined with
//! the always-on equality checks this is the "zero divergences, indexed
//! never slower" CI gate.

use std::fmt::Write as _;
use yat_bench::harness;
use yat_capability::IndexPolicy;
use yat_model::{match_filter, match_filter_indexed, MatchOptions, Pattern, TreeIndex};
use yat_oql::art::{art_store, title_of, ArtSpec};
use yat_oql::oql;
use yat_wais::{generate_works, WaisSource, WorksSpec};

struct Entry {
    name: &'static str,
    n: usize,
    indexed_ns: u128,
    scan_ns: u128,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.scan_ns as f64 / self.indexed_ns.max(1) as f64
    }
}

fn sweep_sizes() -> Vec<usize> {
    match std::env::var("YAT_INDEX_NS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("YAT_INDEX_NS holds sizes"))
            .collect(),
        Err(_) => vec![1_000, 10_000, 100_000, 1_000_000],
    }
}

/// Times one indexed/scan pair and records it. `indexed` and `scan`
/// must already have been asserted equal by the caller.
fn record(entries: &mut Vec<Entry>, name: &'static str, n: usize, indexed_ns: u128, scan_ns: u128) {
    let e = Entry {
        name,
        n,
        indexed_ns,
        scan_ns,
    };
    println!(
        "{name:<14} n={n:<8} indexed {:>12} ns   scan {:>12} ns   ({:.1}x)",
        e.indexed_ns,
        e.scan_ns,
        e.speedup()
    );
    entries.push(e);
}

fn wais_sweep(entries: &mut Vec<Entry>, n: usize) {
    let works = generate_works(&WorksSpec {
        works: n,
        impressionist_pct: 30,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 42,
    });
    let mut src = WaisSource::new("works", &works).with_index_policy(IndexPolicy::On);
    drop(works);

    // the number token of the last title occurs in exactly one document
    // (sizes stop at two digits, artists carry no digits)
    let unique = format!("{}", n - 1);
    for (name, needle) in [
        ("wais contains", unique.as_str()),
        ("wais giverny", "Giverny"),
    ] {
        src.set_index_policy(IndexPolicy::On);
        let hits = src.contains(needle).expect("open policy accepts full text");
        let indexed = harness::measure(|| src.contains(needle).expect("search answers"));
        src.set_index_policy(IndexPolicy::Off);
        assert_eq!(
            hits,
            src.contains(needle).expect("search answers"),
            "indexed and scan hits diverge for `{needle}` at n={n}"
        );
        let scan = harness::measure(|| src.contains(needle).expect("search answers"));
        record(entries, name, n, indexed.as_nanos(), scan.as_nanos());
    }
}

fn model_sweep(entries: &mut Vec<Entry>, n: usize) {
    let works = generate_works(&WorksSpec {
        works: n,
        impressionist_pct: 30,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 42,
    });
    let index = TreeIndex::build(&works);
    // `works[* work[title["Composition No. {n-1}"]]]` — a constant-leaf
    // spine the path-hash lookup turns into a one-candidate probe
    let filter = Pattern::sym(
        "works",
        vec![yat_model::Edge::star_iter(
            "w",
            Pattern::sym(
                "work",
                vec![yat_model::Edge::one(Pattern::elem_const(
                    "title",
                    title_of(n - 1),
                ))],
            ),
        )],
    );
    let opts = MatchOptions::default();
    let (rows, stats) = match_filter_indexed(&works, &filter, opts, &index);
    assert!(stats.covered, "the collection filter must be index-covered");
    assert_eq!(
        rows,
        match_filter(&works, &filter, opts),
        "indexed and walker rows diverge at n={n}"
    );
    let indexed = harness::measure(|| match_filter_indexed(&works, &filter, opts, &index));
    let scan = harness::measure(|| match_filter(&works, &filter, opts));
    record(
        entries,
        "model match",
        n,
        indexed.as_nanos(),
        scan.as_nanos(),
    );
}

fn oql_sweep(entries: &mut Vec<Entry>, n: usize) {
    let mut store = art_store(&ArtSpec {
        artifacts: n,
        persons: (n / 5).max(2),
        seed: 42,
    });
    let q = oql::parse(&format!(
        "select t: A.title from A in artifacts where A.title = '{}'",
        title_of(n - 1)
    ))
    .expect("eq query parses");

    store.set_index_policy(IndexPolicy::On);
    let (rows, stats) = oql::eval_stats(&q, &store).expect("eq query answers");
    assert!(stats.indexed, "the eq predicate must probe the field index");
    let indexed = harness::measure(|| oql::eval(&q, &store).expect("eq query answers"));
    store.set_index_policy(IndexPolicy::Off);
    assert_eq!(
        rows,
        oql::eval(&q, &store).expect("eq query answers"),
        "indexed and scan rows diverge at n={n}"
    );
    let scan = harness::measure(|| oql::eval(&q, &store).expect("eq query answers"));
    record(entries, "oql eq", n, indexed.as_nanos(), scan.as_nanos());
}

fn main() {
    let sizes = sweep_sizes();
    let mut entries: Vec<Entry> = Vec::new();
    for &n in &sizes {
        assert!(n >= 100, "sweep sizes start at 100 (unique-token needle)");
        harness::group(&format!("fig_index/n={n}"));
        wais_sweep(&mut entries, n);
        model_sweep(&mut entries, n);
        oql_sweep(&mut entries, n);
    }

    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"n\": {}, \"indexed_ns\": {}, \"scan_ns\": {}, \"speedup\": {:.3}}}",
            e.name,
            e.n,
            e.indexed_ns,
            e.scan_ns,
            e.speedup()
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    let path = std::env::var("YAT_INDEX_OUT").unwrap_or_else(|_| "BENCH_index.json".to_string());
    std::fs::write(&path, &out).expect("write index results");
    println!("\nwrote {path}");

    if std::env::var("YAT_INDEX_GATE").as_deref() == Ok("1") {
        let slower: Vec<String> = entries
            .iter()
            .filter(|e| e.speedup() < 1.0)
            .map(|e| format!("{} n={}: {:.2}x", e.name, e.n, e.speedup()))
            .collect();
        assert!(
            slower.is_empty(),
            "indexed evaluation slower than the scan:\n{}",
            slower.join("\n")
        );
        println!("gate: every indexed path at least matches its scan, zero divergences");
    }
}
