//! Serving-layer sweep: throughput and latency percentiles of a live
//! `yat-server` on a loopback socket, versus worker count and admission
//! queue depth.
//!
//! Each configuration starts a fresh server over the seeded scenario
//! with a simulated 25 ms per-source round trip (so worker parallelism
//! has wire time to overlap, exactly as in the paper's distributed
//! deployment — without it, a single-core runner would show no scaling
//! at all), then drives a closed-loop Q1/Q2 mix with 8 clients.
//!
//! A second sweep drives one large answer (a full scan of a 50k-work
//! collection) through the wire materialized and streamed, recording
//! time-to-first-row percentiles and the process's peak live heap — the
//! memory the answer path holds at its worst. Streaming should cut both:
//! the first chunk leaves before the tail is serialized, and no hop ever
//! holds the whole serialized answer.
//!
//! Machine-readable output goes to `BENCH_serve.json` (override with
//! `YAT_SERVE_OUT`), one entry per configuration:
//!
//! ```json
//! {"workers": 4, "queue": 32, "clients": 8, "queries": 96,
//!  "throughput_qps": ..., "p50_ms": ..., "p95_ms": ..., "p99_ms": ...,
//!  "overloaded": 0, "speedup_vs_1_worker": ...}
//! {"sweep": "large_answer", "stream": true, "rows": 50000,
//!  "ttfr_p50_ms": ..., "ttfr_p99_ms": ..., "peak_heap_mb": ...}
//! ```
//!
//! Absolute times are machine-dependent; the columns worth watching are
//! `speedup_vs_1_worker`, which should rise with the worker count until
//! the two wrapper connections saturate, and the streamed-vs-materialized
//! deltas in `ttfr_p50_ms` and `peak_heap_mb`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use yat_bench::workload::Scenario;
use yat_mediator::{Latency, StreamPolicy};
use yat_server::{load, LoadMode, LoadSpec, Server, ServerConfig};
use yat_yatl::paper;

/// A counting wrapper around the system allocator: tracks live heap and
/// its high-water mark, so the large-answer sweep can report peak memory
/// per configuration without OS-specific RSS probes (`VmHWM` cannot be
/// reset between configurations; this can).
struct PeakAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = self.live.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.peak.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.live.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static HEAP: PeakAlloc = PeakAlloc {
    live: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

/// Restarts the high-water mark at the current live size.
fn reset_peak_heap() {
    HEAP.peak
        .store(HEAP.live.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn peak_heap_mb() -> f64 {
    HEAP.peak.load(Ordering::Relaxed) as f64 / (1024.0 * 1024.0)
}

const SCALE: usize = 20;
const CLIENTS: usize = 8;
const QUERIES: usize = 96;
const SOURCE_LATENCY: Duration = Duration::from_millis(25);

struct Entry {
    workers: usize,
    queue: usize,
    throughput_qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    overloaded: u64,
}

/// One configuration: fresh server, fixed seeded load, torn down after.
fn run_config(workers: usize, queue: usize) -> Entry {
    let mediator = Scenario::at_scale(SCALE).mediator();
    for source in ["o2artifact", "xmlartwork"] {
        mediator
            .connection(source)
            .expect("scenario connects both sources")
            .set_latency(Some(Latency::fixed(SOURCE_LATENCY)));
    }
    let handle = Server::spawn(
        mediator,
        ServerConfig {
            workers,
            queue_capacity: queue,
            retry_after_ms: 5,
            ..ServerConfig::default()
        },
    )
    .expect("server binds a loopback port");
    let report = load::run(
        handle.addr(),
        &LoadSpec {
            clients: CLIENTS,
            queries: QUERIES,
            seed: 20260807,
            mode: LoadMode::Closed,
            deadline_ms: None,
            stream: false,
            mix: vec![paper::Q1.to_string(), paper::Q2.to_string()],
            expected: None,
        },
    );
    assert_eq!(
        report.answered as usize, QUERIES,
        "every query must be answered (overloads are retried): {report:?}"
    );
    assert!(report.clean(), "{report:?}");
    handle.shutdown();
    handle.join();
    Entry {
        workers,
        queue,
        throughput_qps: report.throughput_qps(),
        p50_ms: report.p50_ms(),
        p95_ms: report.p95_ms(),
        p99_ms: report.p99_ms(),
        overloaded: report.overloaded,
    }
}

/// How many works the large-answer sweep scans — every one becomes an
/// answer subtree.
const LARGE_ROWS: usize = 50_000;

/// A full scan of the Wais works collection: a `LARGE_ROWS`-subtree
/// answer.
const WORKS_SCAN: &str = "MAKE out *($t2) := r [ $t2 ] MATCH works WITH works *work [ title: $t2 ]";

struct LargeEntry {
    stream: bool,
    ttfr_p50_ms: f64,
    ttfr_p99_ms: f64,
    p50_ms: f64,
    peak_heap_mb: f64,
}

/// One large-answer configuration: a works-heavy federation, 2 clients,
/// 6 scans each, materialized or streamed.
fn run_large(stream: bool) -> LargeEntry {
    let mut mediator = Scenario {
        artifacts: 50,
        works: LARGE_ROWS,
        ..Scenario::at_scale(50)
    }
    .mediator();
    mediator.set_stream_policy(StreamPolicy::chunked());
    for source in ["o2artifact", "xmlartwork"] {
        mediator
            .connection(source)
            .expect("scenario connects both sources")
            .set_latency(Some(Latency::fixed(SOURCE_LATENCY)));
    }
    let handle = Server::spawn(
        mediator,
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
            retry_after_ms: 5,
            ..ServerConfig::default()
        },
    )
    .expect("server binds a loopback port");
    reset_peak_heap();
    let report = load::run(
        handle.addr(),
        &LoadSpec {
            clients: 2,
            queries: 12,
            seed: 20260807,
            mode: LoadMode::Closed,
            deadline_ms: None,
            stream,
            mix: vec![WORKS_SCAN.to_string()],
            expected: None,
        },
    );
    let peak = peak_heap_mb();
    assert_eq!(report.answered, 12, "{report:?}");
    assert!(report.clean(), "{report:?}");
    handle.shutdown();
    handle.join();
    LargeEntry {
        stream,
        ttfr_p50_ms: report.ttfr_percentile_ms(0.50),
        ttfr_p99_ms: report.ttfr_percentile_ms(0.99),
        p50_ms: report.p50_ms(),
        peak_heap_mb: peak,
    }
}

fn main() {
    let mut entries: Vec<Entry> = Vec::new();

    println!("\n== fig_serve/worker sweep (8 closed-loop clients, queue 32) ==");
    for workers in [1usize, 2, 4, 8] {
        let e = run_config(workers, 32);
        println!(
            "workers={workers:<2} queue=32  {:>7.1} q/s  p50 {:>7.2}ms  p95 {:>7.2}ms  p99 {:>7.2}ms",
            e.throughput_qps, e.p50_ms, e.p95_ms, e.p99_ms
        );
        entries.push(e);
    }

    println!("\n== fig_serve/queue sweep (8 closed-loop clients, 2 workers) ==");
    for queue in [1usize, 4, 32] {
        let e = run_config(2, queue);
        println!(
            "workers=2  queue={queue:<3} {:>7.1} q/s  p50 {:>7.2}ms  p95 {:>7.2}ms  p99 {:>7.2}ms  shed-retries {}",
            e.throughput_qps, e.p50_ms, e.p95_ms, e.p99_ms, e.overloaded
        );
        entries.push(e);
    }

    println!("\n== fig_serve/large-answer sweep ({LARGE_ROWS}-row scans, 2 clients) ==");
    let mut large: Vec<LargeEntry> = Vec::new();
    for stream in [false, true] {
        let e = run_large(stream);
        println!(
            "{:<12} p50 {:>8.2}ms  ttfr-p50 {:>8.2}ms  ttfr-p99 {:>8.2}ms  peak heap {:>7.1} MiB",
            if stream { "streamed" } else { "materialized" },
            e.p50_ms,
            e.ttfr_p50_ms,
            e.ttfr_p99_ms,
            e.peak_heap_mb
        );
        large.push(e);
    }

    let base_qps = entries
        .iter()
        .find(|e| e.workers == 1 && e.queue == 32)
        .map(|e| e.throughput_qps)
        .unwrap_or(0.0);
    let mut out = String::from("[\n");
    for e in entries.iter() {
        let _ = writeln!(
            out,
            "  {{\"workers\": {}, \"queue\": {}, \"clients\": {CLIENTS}, \"queries\": {QUERIES}, \
             \"throughput_qps\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"overloaded\": {}, \"speedup_vs_1_worker\": {:.3}}},",
            e.workers,
            e.queue,
            e.throughput_qps,
            e.p50_ms,
            e.p95_ms,
            e.p99_ms,
            e.overloaded,
            if base_qps > 0.0 {
                e.throughput_qps / base_qps
            } else {
                1.0
            },
        );
    }
    for (i, e) in large.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"sweep\": \"large_answer\", \"stream\": {}, \"rows\": {LARGE_ROWS}, \
             \"p50_ms\": {:.3}, \"ttfr_p50_ms\": {:.3}, \"ttfr_p99_ms\": {:.3}, \
             \"peak_heap_mb\": {:.1}}}",
            e.stream, e.p50_ms, e.ttfr_p50_ms, e.ttfr_p99_ms, e.peak_heap_mb,
        );
        out.push_str(if i + 1 < large.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    // default to the workspace root, next to BENCH_scale.json, however
    // cargo set the bench's working directory
    let path = std::env::var("YAT_SERVE_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").into());
    std::fs::write(&path, &out).expect("write serve results");
    println!("\nwrote {path}");
}
