//! Serving-layer sweep: throughput and latency percentiles of a live
//! `yat-server` on a loopback socket, versus worker count and admission
//! queue depth.
//!
//! Each configuration starts a fresh server over the seeded scenario
//! with a simulated 25 ms per-source round trip (so worker parallelism
//! has wire time to overlap, exactly as in the paper's distributed
//! deployment — without it, a single-core runner would show no scaling
//! at all), then drives a closed-loop Q1/Q2 mix with 8 clients.
//!
//! Machine-readable output goes to `BENCH_serve.json` (override with
//! `YAT_SERVE_OUT`), one entry per configuration:
//!
//! ```json
//! {"workers": 4, "queue": 32, "clients": 8, "queries": 96,
//!  "throughput_qps": ..., "p50_ms": ..., "p95_ms": ..., "p99_ms": ...,
//!  "overloaded": 0, "speedup_vs_1_worker": ...}
//! ```
//!
//! Absolute times are machine-dependent; the column worth watching is
//! `speedup_vs_1_worker`, which should rise with the worker count until
//! the two wrapper connections saturate.

use std::fmt::Write as _;
use std::time::Duration;
use yat_bench::workload::Scenario;
use yat_mediator::Latency;
use yat_server::{load, LoadMode, LoadSpec, Server, ServerConfig};
use yat_yatl::paper;

const SCALE: usize = 20;
const CLIENTS: usize = 8;
const QUERIES: usize = 96;
const SOURCE_LATENCY: Duration = Duration::from_millis(25);

struct Entry {
    workers: usize,
    queue: usize,
    throughput_qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    overloaded: u64,
}

/// One configuration: fresh server, fixed seeded load, torn down after.
fn run_config(workers: usize, queue: usize) -> Entry {
    let mediator = Scenario::at_scale(SCALE).mediator();
    for source in ["o2artifact", "xmlartwork"] {
        mediator
            .connection(source)
            .expect("scenario connects both sources")
            .set_latency(Some(Latency::fixed(SOURCE_LATENCY)));
    }
    let handle = Server::spawn(
        mediator,
        ServerConfig {
            workers,
            queue_capacity: queue,
            retry_after_ms: 5,
            ..ServerConfig::default()
        },
    )
    .expect("server binds a loopback port");
    let report = load::run(
        handle.addr(),
        &LoadSpec {
            clients: CLIENTS,
            queries: QUERIES,
            seed: 20260807,
            mode: LoadMode::Closed,
            deadline_ms: None,
            mix: vec![paper::Q1.to_string(), paper::Q2.to_string()],
            expected: None,
        },
    );
    assert_eq!(
        report.answered as usize, QUERIES,
        "every query must be answered (overloads are retried): {report:?}"
    );
    assert!(report.clean(), "{report:?}");
    handle.shutdown();
    handle.join();
    Entry {
        workers,
        queue,
        throughput_qps: report.throughput_qps(),
        p50_ms: report.p50_ms(),
        p95_ms: report.p95_ms(),
        p99_ms: report.p99_ms(),
        overloaded: report.overloaded,
    }
}

fn main() {
    let mut entries: Vec<Entry> = Vec::new();

    println!("\n== fig_serve/worker sweep (8 closed-loop clients, queue 32) ==");
    for workers in [1usize, 2, 4, 8] {
        let e = run_config(workers, 32);
        println!(
            "workers={workers:<2} queue=32  {:>7.1} q/s  p50 {:>7.2}ms  p95 {:>7.2}ms  p99 {:>7.2}ms",
            e.throughput_qps, e.p50_ms, e.p95_ms, e.p99_ms
        );
        entries.push(e);
    }

    println!("\n== fig_serve/queue sweep (8 closed-loop clients, 2 workers) ==");
    for queue in [1usize, 4, 32] {
        let e = run_config(2, queue);
        println!(
            "workers=2  queue={queue:<3} {:>7.1} q/s  p50 {:>7.2}ms  p95 {:>7.2}ms  p99 {:>7.2}ms  shed-retries {}",
            e.throughput_qps, e.p50_ms, e.p95_ms, e.p99_ms, e.overloaded
        );
        entries.push(e);
    }

    let base_qps = entries
        .iter()
        .find(|e| e.workers == 1 && e.queue == 32)
        .map(|e| e.throughput_qps)
        .unwrap_or(0.0);
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"workers\": {}, \"queue\": {}, \"clients\": {CLIENTS}, \"queries\": {QUERIES}, \
             \"throughput_qps\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"overloaded\": {}, \"speedup_vs_1_worker\": {:.3}}}",
            e.workers,
            e.queue,
            e.throughput_qps,
            e.p50_ms,
            e.p95_ms,
            e.p99_ms,
            e.overloaded,
            if base_qps > 0.0 {
                e.throughput_qps / base_qps
            } else {
                1.0
            },
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    // default to the workspace root, next to BENCH_scale.json, however
    // cargo set the bench's working directory
    let path = std::env::var("YAT_SERVE_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").into());
    std::fs::write(&path, &out).expect("write serve results");
    println!("\nwrote {path}");
}
