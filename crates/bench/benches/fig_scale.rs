//! Scaling sweep of the hashed-key data plane: the dedup / group / join
//! keying kernels on Q1-shaped binding tables at increasing row counts,
//! each timed against the string-key reference implementation, plus
//! end-to-end Q1/Q2 over the mediator at increasing document sizes.
//!
//! The timed closures are the *kernels* — which rows survive DupElim,
//! how rows partition into groups, which (left, right) pairs join — on
//! both sides; output construction is identical row-cloning either way
//! (asserted below) and would only add the same constant to both
//! measurements.
//!
//! Unlike the other figure benches this one is machine-readable: besides
//! the usual console lines it writes `BENCH_scale.json` (override the
//! path with `YAT_SCALE_OUT`) with one entry per (operator, n):
//!
//! ```json
//! {"name": "dedup", "n": 8000, "hashed_ns": ..., "baseline_ns": ..., "speedup": ...}
//! ```
//!
//! A second family of entries compares the two *execution engines* on
//! the expression kernels the compiler actually changes: `vm select` and
//! `vm map` time the same plan under the bytecode VM (`hashed_ns`, the
//! new path) and the recursive interpreter (`baseline_ns`, the
//! reference), with the input table served by a `Push` handler so
//! neither side pays for `Bind`. Those ratios are gated like the keying
//! kernels. `q1/q2 e2e vm` repeat the end-to-end sweep with
//! `ExecEngine::Vm` selected on the mediator.
//!
//! End-to-end entries have no reference counterpart timed in the same
//! process; they carry `baseline_ns: 0` and *no* `speedup` key (a
//! placeholder 1.0 ratio would read as a measured result) and are
//! tracked for wall-clock context only. CI compares the *speedup* column
//! against the checked-in baseline via `report bench-diff` — ratios are
//! machine-independent, absolute times are not — and skips the
//! ratio-less rows.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use yat_algebra::{
    compile, eval, keys, vm, Alg, CmpOp, EvalCtx, EvalError, FnRegistry, Operand, Pred,
    PushHandler, SkolemRegistry, Tab, Value,
};
use yat_bench::{baseline, harness, workload::Scenario};
use yat_mediator::{ExecEngine, OptimizerOptions};
use yat_model::{match_filter, Atom, Forest, MatchOptions};
use yat_wais::{generate_works, WorksSpec};
use yat_yatl::parse_filter;

struct Entry {
    name: &'static str,
    n: usize,
    hashed_ns: u128,
    baseline_ns: u128,
}

impl Entry {
    /// The baseline/hashed ratio — `None` when no baseline was timed
    /// (end-to-end entries), so the JSON never carries a fake 1.0.
    fn speedup(&self) -> Option<f64> {
        (self.baseline_ns != 0).then(|| self.baseline_ns as f64 / self.hashed_ns.max(1) as f64)
    }
}

/// A Q1-shaped binding table: one row per work with title/artist/style/
/// size columns (trees, exercising the coercion path) — what `Bind` over
/// the works collection actually feeds the set-based operators.
fn bind_tab(works: usize) -> Tab {
    let doc = generate_works(&WorksSpec {
        works,
        impressionist_pct: 30,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 7,
    });
    let filter =
        parse_filter("works *work [ title: $t, artist: $a, style: $s, size: $si, *($fields) ]")
            .expect("static filter parses");
    let rows = match_filter(&doc, &filter, MatchOptions::default());
    let cols = vec![
        "t".to_string(),
        "a".to_string(),
        "s".to_string(),
        "si".to_string(),
        "fields".to_string(),
    ];
    Tab::from_binding_rows(cols, rows)
}

/// The hashed dedup kernel: kept-row indices, first-occurrence order —
/// the loop inside `Tab::dedup`, expressed over the shared
/// `yat_algebra::keys` primitives so the measurement and the shipped
/// operator share their keying code.
fn hashed_dedup_indices(tab: &Tab) -> Vec<usize> {
    let mut seen: HashMap<u64, Vec<usize>> = HashMap::with_capacity(tab.len());
    let mut keep = Vec::new();
    for (i, row) in tab.rows().enumerate() {
        let h = keys::row_hash(row);
        let bucket = seen.entry(h).or_default();
        if bucket.iter().any(|&k| keys::row_key_eq(tab.row(k), row)) {
            continue;
        }
        bucket.push(i);
        keep.push(i);
    }
    keep
}

/// Stacks `copies` clones of the table (duplicate-heavy dedup input).
fn replicate(tab: &Tab, copies: usize) -> Tab {
    let mut out = Tab::new(tab.columns().to_vec());
    for _ in 0..copies {
        for row in tab.rows() {
            out.push(row.to_vec());
        }
    }
    out
}

/// Builds the hashed `Group` output from the shared kernel — the same
/// construction `eval` performs, so baseline and hashed sides do equal
/// output-building work and the measured difference is the keying.
fn hashed_group(tab: &Tab, kidx: &[usize]) -> Tab {
    let rest: Vec<usize> = (0..tab.columns().len())
        .filter(|i| !kidx.contains(i))
        .collect();
    let mut cols: Vec<String> = kidx.iter().map(|&i| tab.columns()[i].clone()).collect();
    cols.extend(rest.iter().map(|&i| tab.columns()[i].clone()));
    let mut out = Tab::new(cols);
    for members in keys::group_indices(tab.raw_rows(), kidx) {
        let first = tab.row(members[0]);
        let mut row: Vec<Value> = kidx.iter().map(|&i| first[i].clone()).collect();
        for &ci in &rest {
            row.push(Value::Coll(
                members.iter().map(|&ri| tab.row(ri)[ci].clone()).collect(),
            ));
        }
        out.push(row);
    }
    out
}

/// Builds the hashed join output from the shared kernel (columns primed
/// like the algebra's join).
fn hashed_join(lt: &Tab, rt: &Tab, lkeys: &[usize], rkeys: &[usize]) -> Tab {
    let mut cols = lt.columns().to_vec();
    for c in rt.columns() {
        if cols.contains(c) {
            cols.push(format!("{c}'"));
        } else {
            cols.push(c.clone());
        }
    }
    let mut out = Tab::new(cols);
    for (li, ri) in keys::join_pairs(lt.raw_rows(), rt.raw_rows(), lkeys, rkeys) {
        let mut row = lt.row(li).to_vec();
        row.extend(rt.row(ri).iter().cloned());
        out.push(row);
    }
    out
}

/// Serves a precomputed table to `Push` nodes. `Push` fragments stay
/// uncompiled on both engines and run through the same handler call, so
/// plans rooted here cost both engines the identical table clone and the
/// timed difference is the Select/Map control plane, not `Bind`.
struct MemTab(Tab);

impl PushHandler for MemTab {
    fn execute_push(
        &self,
        _source: &str,
        _plan: &Alg,
        _env: &std::collections::BTreeMap<String, Value>,
    ) -> Result<Tab, EvalError> {
        Ok(self.0.clone())
    }
}

/// A flat atom-valued works table (`id`, `size`, `price`, `style`,
/// `floor`) for the engine kernels. Atom cells clone cheaply, so the
/// per-row expression work — the thing the compiler changes — dominates
/// the measurement instead of allocator traffic.
fn atom_tab(n: usize) -> Tab {
    let styles = ["Impressionist", "Baroque", "Cubist", "Realist"];
    let mut tab = Tab::new(
        ["id", "size", "price", "style", "floor"]
            .map(String::from)
            .to_vec(),
    );
    for i in 0..n {
        tab.push(vec![
            Value::Atom(Atom::Int(i as i64)),
            Value::Atom(Atom::Int((i * 37 % 900 + 20) as i64)),
            Value::Atom(Atom::Float((i * 13 % 4000) as f64 + 0.5)),
            Value::Atom(Atom::Str(styles[i % styles.len()].to_string())),
            Value::Atom(Atom::Int(0)),
        ]);
    }
    tab
}

/// A 16-term disjunctive filter over [`atom_tab`] columns that matches
/// no row (`id`/`size`/`price` are non-negative and bounded, `floor` is
/// zero): every term is evaluated for every row (`Or` short-circuits
/// only on true) and the empty output makes the shared row-cloning cost
/// zero on both sides, leaving per-row predicate evaluation as the
/// measured work. All terms compare numbers, so the shared comparison
/// kernel is allocation-free and the engines differ only in how they
/// dispatch it: the interpreter recurses and clones both operands per
/// term per row, the VM runs one fused by-reference compare each.
fn engine_select_pred() -> Pred {
    let int = |v: i64| Operand::cst(Atom::Int(v));
    let num = |v: f64| Operand::cst(Atom::Float(v));
    let mut terms = Vec::new();
    for k in 0..4i64 {
        terms.push(Pred::cmp(CmpOp::Lt, Operand::var("id"), int(-1 - k)));
        terms.push(Pred::cmp(CmpOp::Gt, Operand::var("size"), int(100_000 + k)));
        terms.push(Pred::cmp(
            CmpOp::Lt,
            Operand::var("price"),
            num(-0.5 - k as f64),
        ));
        // var–var: `floor` is always zero, `size` at least 20
        terms.push(Pred::cmp(
            CmpOp::Gt,
            Operand::var("floor"),
            Operand::var("size"),
        ));
    }
    terms
        .into_iter()
        .reduce(|a, b| Pred::Or(Box::new(a), Box::new(b)))
        .expect("terms is non-empty")
}

fn main() {
    let mut entries: Vec<Entry> = Vec::new();

    harness::group("fig_scale/row-count sweeps (hashed vs string keys)");
    for &n in &[500usize, 2000, 8000] {
        let tab = bind_tab(n);

        // DupElim over a duplicate-heavy table
        let dup = replicate(&tab, 4);
        let hashed = harness::measure(|| hashed_dedup_indices(&dup));
        let base = harness::measure(|| baseline::dedup_indices(&dup));
        {
            let mut t = dup.clone();
            t.dedup();
            assert_eq!(
                t.len(),
                baseline::dedup(&dup).len(),
                "dedup implementations must agree"
            );
        }
        println!(
            "dedup   n={:<6} hashed {:>12?}  string {:>12?}  ({:.2}x)",
            dup.len(),
            hashed,
            base,
            base.as_nanos() as f64 / hashed.as_nanos().max(1) as f64
        );
        entries.push(Entry {
            name: "dedup",
            n: dup.len(),
            hashed_ns: hashed.as_nanos(),
            baseline_ns: base.as_nanos(),
        });

        // GroupBy (artist, style, size) — a compound key over tree cells,
        // where the string side re-serializes three subtrees per row and
        // the hashed side reads three cached hashes
        let kidx = [
            tab.col("a").expect("artist column"),
            tab.col("s").expect("style column"),
            tab.col("si").expect("size column"),
        ];
        let gkeys = vec!["a".to_string(), "s".to_string(), "si".to_string()];
        let hashed = harness::measure(|| keys::group_indices(tab.raw_rows(), &kidx));
        let base = harness::measure(|| baseline::group_indices(&tab, &kidx));
        assert_eq!(
            hashed_group(&tab, &kidx).len(),
            baseline::group(&tab, &gkeys).len(),
            "group implementations must agree"
        );
        println!(
            "group   n={:<6} hashed {:>12?}  string {:>12?}  ({:.2}x)",
            tab.len(),
            hashed,
            base,
            base.as_nanos() as f64 / hashed.as_nanos().max(1) as f64
        );
        entries.push(Entry {
            name: "group",
            n: tab.len(),
            hashed_ns: hashed.as_nanos(),
            baseline_ns: base.as_nanos(),
        });

        // Equi-join on title between two differently-seeded tables:
        // titles are per-index and shared across seeds, so the join is
        // 1:1 and the measurement is the build/probe keying, not output
        // explosion. Both sides are narrow (title, artist) tables so the
        // identical output construction does not drown the keying.
        let narrow = |seed: u64, tv: &str, av: &str| {
            let doc = generate_works(&WorksSpec {
                works: n,
                impressionist_pct: 30,
                optional_pct: 60,
                giverny_pct: 30,
                seed,
            });
            let filter = parse_filter(&format!("works *work [ title: ${tv}, artist: ${av} ]"))
                .expect("static filter parses");
            let rows = match_filter(&doc, &filter, MatchOptions::default());
            Tab::from_binding_rows(vec![tv.to_string(), av.to_string()], rows)
        };
        let lt = narrow(7, "t", "a");
        let rt = narrow(8, "t2", "a2");
        let (lk, rk) = ([lt.col("t").unwrap()], [rt.col("t2").unwrap()]);
        let hashed = harness::measure(|| keys::join_pairs(lt.raw_rows(), rt.raw_rows(), &lk, &rk));
        let base = harness::measure(|| baseline::join_pairs(&lt, &rt, &lk, &rk));
        assert_eq!(
            hashed_join(&lt, &rt, &lk, &rk).len(),
            baseline::join(&lt, &rt, &lk, &rk).len(),
            "join implementations must agree"
        );
        println!(
            "join    n={:<6} hashed {:>12?}  string {:>12?}  ({:.2}x)",
            lt.len(),
            hashed,
            base,
            base.as_nanos() as f64 / hashed.as_nanos().max(1) as f64
        );
        entries.push(Entry {
            name: "join",
            n: lt.len(),
            hashed_ns: hashed.as_nanos(),
            baseline_ns: base.as_nanos(),
        });
    }

    harness::group("fig_scale/engine sweeps (compiled VM vs interpreter)");
    let funcs = FnRegistry::with_builtins();
    let skolems = SkolemRegistry::new();
    let forest = Forest::new();
    for &n in &[2000usize, 8000, 32000] {
        let mem = MemTab(atom_tab(n));
        let mut ctx = EvalCtx::local(&forest, &funcs, &skolems);
        ctx.push = Some(&mem);
        let input = Alg::push("mem", Alg::source("works"));
        let select = Alg::select(input.clone(), engine_select_pred());
        let map = Arc::new(Alg::Map {
            input,
            col: "text".to_string(),
            expr: Operand::Call {
                name: "textof".to_string(),
                args: vec![Operand::var("style")],
            },
        });
        for (name, plan) in [("vm select", &select), ("vm map", &map)] {
            // compile once outside the window — the compile-once /
            // execute-many lifecycle the engine is built around
            let program = compile(plan);
            let vm_t = harness::measure(|| {
                vm::run(&program, &ctx, &Default::default()).expect("vm executes")
            });
            let interp_t = harness::measure(|| eval(plan, &ctx).expect("interpreter executes"));
            assert_eq!(
                vm::run(&program, &ctx, &Default::default()).expect("vm executes"),
                eval(plan, &ctx).expect("interpreter executes"),
                "engines must agree"
            );
            println!(
                "{name:<9} n={n:<6} vm     {vm_t:>12?}  interp {interp_t:>12?}  ({:.2}x)",
                interp_t.as_nanos() as f64 / vm_t.as_nanos().max(1) as f64
            );
            entries.push(Entry {
                name,
                n,
                hashed_ns: vm_t.as_nanos(),
                baseline_ns: interp_t.as_nanos(),
            });
        }
    }

    harness::group("fig_scale/document-size sweeps (end-to-end)");
    for &scale in &[50usize, 200, 800] {
        for (engine, q1_name, q2_name) in [
            (ExecEngine::Interp, "q1 e2e", "q2 e2e"),
            (ExecEngine::Vm, "q1 e2e vm", "q2 e2e vm"),
        ] {
            let mut m = Scenario::at_scale(scale).mediator();
            m.set_exec_engine(engine);
            for (name, query) in [
                (q1_name, yat_yatl::paper::Q1),
                (q2_name, yat_yatl::paper::Q2),
            ] {
                let t = harness::measure(|| {
                    m.query(query, OptimizerOptions::default())
                        .expect("paper query answers")
                });
                println!("{name:<9} scale={scale:<5} {t:>12?}");
                entries.push(Entry {
                    name,
                    n: scale,
                    hashed_ns: t.as_nanos(),
                    baseline_ns: 0,
                });
            }
        }
    }

    // machine-readable output
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"n\": {}, \"hashed_ns\": {}, \"baseline_ns\": {}",
            e.name, e.n, e.hashed_ns, e.baseline_ns,
        );
        if let Some(s) = e.speedup() {
            let _ = write!(out, ", \"speedup\": {s:.3}");
        }
        out.push('}');
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    let path = std::env::var("YAT_SCALE_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    std::fs::write(&path, &out).expect("write scale results");
    println!("\nwrote {path}");
}
