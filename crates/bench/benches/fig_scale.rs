//! Scaling sweep of the hashed-key data plane: the dedup / group / join
//! keying kernels on Q1-shaped binding tables at increasing row counts,
//! each timed against the string-key reference implementation, plus
//! end-to-end Q1/Q2 over the mediator at increasing document sizes.
//!
//! The timed closures are the *kernels* — which rows survive DupElim,
//! how rows partition into groups, which (left, right) pairs join — on
//! both sides; output construction is identical row-cloning either way
//! (asserted below) and would only add the same constant to both
//! measurements.
//!
//! Unlike the other figure benches this one is machine-readable: besides
//! the usual console lines it writes `BENCH_scale.json` (override the
//! path with `YAT_SCALE_OUT`) with one entry per (operator, n):
//!
//! ```json
//! {"name": "dedup", "n": 8000, "hashed_ns": ..., "baseline_ns": ..., "speedup": ...}
//! ```
//!
//! End-to-end entries have no string-key counterpart (the tree no longer
//! contains one); they carry `baseline_ns: 0, speedup: 1.0` and are
//! tracked for wall-clock context only. CI compares the *speedup* column
//! against the checked-in baseline via `report bench-diff` — ratios are
//! machine-independent, absolute times are not.

use std::collections::HashMap;
use std::fmt::Write as _;
use yat_algebra::{keys, Tab, Value};
use yat_bench::{baseline, harness, workload::Scenario};
use yat_mediator::OptimizerOptions;
use yat_model::{match_filter, MatchOptions};
use yat_wais::{generate_works, WorksSpec};
use yat_yatl::parse_filter;

struct Entry {
    name: &'static str,
    n: usize,
    hashed_ns: u128,
    baseline_ns: u128,
}

impl Entry {
    fn speedup(&self) -> f64 {
        if self.baseline_ns == 0 {
            1.0
        } else {
            self.baseline_ns as f64 / self.hashed_ns.max(1) as f64
        }
    }
}

/// A Q1-shaped binding table: one row per work with title/artist/style/
/// size columns (trees, exercising the coercion path) — what `Bind` over
/// the works collection actually feeds the set-based operators.
fn bind_tab(works: usize) -> Tab {
    let doc = generate_works(&WorksSpec {
        works,
        impressionist_pct: 30,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 7,
    });
    let filter =
        parse_filter("works *work [ title: $t, artist: $a, style: $s, size: $si, *($fields) ]")
            .expect("static filter parses");
    let rows = match_filter(&doc, &filter, MatchOptions::default());
    let cols = vec![
        "t".to_string(),
        "a".to_string(),
        "s".to_string(),
        "si".to_string(),
        "fields".to_string(),
    ];
    Tab::from_binding_rows(cols, rows)
}

/// The hashed dedup kernel: kept-row indices, first-occurrence order —
/// the loop inside `Tab::dedup`, expressed over the shared
/// `yat_algebra::keys` primitives so the measurement and the shipped
/// operator share their keying code.
fn hashed_dedup_indices(tab: &Tab) -> Vec<usize> {
    let mut seen: HashMap<u64, Vec<usize>> = HashMap::with_capacity(tab.len());
    let mut keep = Vec::new();
    for (i, row) in tab.rows().enumerate() {
        let h = keys::row_hash(row);
        let bucket = seen.entry(h).or_default();
        if bucket.iter().any(|&k| keys::row_key_eq(tab.row(k), row)) {
            continue;
        }
        bucket.push(i);
        keep.push(i);
    }
    keep
}

/// Stacks `copies` clones of the table (duplicate-heavy dedup input).
fn replicate(tab: &Tab, copies: usize) -> Tab {
    let mut out = Tab::new(tab.columns().to_vec());
    for _ in 0..copies {
        for row in tab.rows() {
            out.push(row.to_vec());
        }
    }
    out
}

/// Builds the hashed `Group` output from the shared kernel — the same
/// construction `eval` performs, so baseline and hashed sides do equal
/// output-building work and the measured difference is the keying.
fn hashed_group(tab: &Tab, kidx: &[usize]) -> Tab {
    let rest: Vec<usize> = (0..tab.columns().len())
        .filter(|i| !kidx.contains(i))
        .collect();
    let mut cols: Vec<String> = kidx.iter().map(|&i| tab.columns()[i].clone()).collect();
    cols.extend(rest.iter().map(|&i| tab.columns()[i].clone()));
    let mut out = Tab::new(cols);
    for members in keys::group_indices(tab.raw_rows(), kidx) {
        let first = tab.row(members[0]);
        let mut row: Vec<Value> = kidx.iter().map(|&i| first[i].clone()).collect();
        for &ci in &rest {
            row.push(Value::Coll(
                members.iter().map(|&ri| tab.row(ri)[ci].clone()).collect(),
            ));
        }
        out.push(row);
    }
    out
}

/// Builds the hashed join output from the shared kernel (columns primed
/// like the algebra's join).
fn hashed_join(lt: &Tab, rt: &Tab, lkeys: &[usize], rkeys: &[usize]) -> Tab {
    let mut cols = lt.columns().to_vec();
    for c in rt.columns() {
        if cols.contains(c) {
            cols.push(format!("{c}'"));
        } else {
            cols.push(c.clone());
        }
    }
    let mut out = Tab::new(cols);
    for (li, ri) in keys::join_pairs(lt.raw_rows(), rt.raw_rows(), lkeys, rkeys) {
        let mut row = lt.row(li).to_vec();
        row.extend(rt.row(ri).iter().cloned());
        out.push(row);
    }
    out
}

fn main() {
    let mut entries: Vec<Entry> = Vec::new();

    harness::group("fig_scale/row-count sweeps (hashed vs string keys)");
    for &n in &[500usize, 2000, 8000] {
        let tab = bind_tab(n);

        // DupElim over a duplicate-heavy table
        let dup = replicate(&tab, 4);
        let hashed = harness::measure(|| hashed_dedup_indices(&dup));
        let base = harness::measure(|| baseline::dedup_indices(&dup));
        {
            let mut t = dup.clone();
            t.dedup();
            assert_eq!(
                t.len(),
                baseline::dedup(&dup).len(),
                "dedup implementations must agree"
            );
        }
        println!(
            "dedup   n={:<6} hashed {:>12?}  string {:>12?}  ({:.2}x)",
            dup.len(),
            hashed,
            base,
            base.as_nanos() as f64 / hashed.as_nanos().max(1) as f64
        );
        entries.push(Entry {
            name: "dedup",
            n: dup.len(),
            hashed_ns: hashed.as_nanos(),
            baseline_ns: base.as_nanos(),
        });

        // GroupBy (artist, style, size) — a compound key over tree cells,
        // where the string side re-serializes three subtrees per row and
        // the hashed side reads three cached hashes
        let kidx = [
            tab.col("a").expect("artist column"),
            tab.col("s").expect("style column"),
            tab.col("si").expect("size column"),
        ];
        let gkeys = vec!["a".to_string(), "s".to_string(), "si".to_string()];
        let hashed = harness::measure(|| keys::group_indices(tab.raw_rows(), &kidx));
        let base = harness::measure(|| baseline::group_indices(&tab, &kidx));
        assert_eq!(
            hashed_group(&tab, &kidx).len(),
            baseline::group(&tab, &gkeys).len(),
            "group implementations must agree"
        );
        println!(
            "group   n={:<6} hashed {:>12?}  string {:>12?}  ({:.2}x)",
            tab.len(),
            hashed,
            base,
            base.as_nanos() as f64 / hashed.as_nanos().max(1) as f64
        );
        entries.push(Entry {
            name: "group",
            n: tab.len(),
            hashed_ns: hashed.as_nanos(),
            baseline_ns: base.as_nanos(),
        });

        // Equi-join on title between two differently-seeded tables:
        // titles are per-index and shared across seeds, so the join is
        // 1:1 and the measurement is the build/probe keying, not output
        // explosion. Both sides are narrow (title, artist) tables so the
        // identical output construction does not drown the keying.
        let narrow = |seed: u64, tv: &str, av: &str| {
            let doc = generate_works(&WorksSpec {
                works: n,
                impressionist_pct: 30,
                optional_pct: 60,
                giverny_pct: 30,
                seed,
            });
            let filter = parse_filter(&format!("works *work [ title: ${tv}, artist: ${av} ]"))
                .expect("static filter parses");
            let rows = match_filter(&doc, &filter, MatchOptions::default());
            Tab::from_binding_rows(vec![tv.to_string(), av.to_string()], rows)
        };
        let lt = narrow(7, "t", "a");
        let rt = narrow(8, "t2", "a2");
        let (lk, rk) = ([lt.col("t").unwrap()], [rt.col("t2").unwrap()]);
        let hashed = harness::measure(|| keys::join_pairs(lt.raw_rows(), rt.raw_rows(), &lk, &rk));
        let base = harness::measure(|| baseline::join_pairs(&lt, &rt, &lk, &rk));
        assert_eq!(
            hashed_join(&lt, &rt, &lk, &rk).len(),
            baseline::join(&lt, &rt, &lk, &rk).len(),
            "join implementations must agree"
        );
        println!(
            "join    n={:<6} hashed {:>12?}  string {:>12?}  ({:.2}x)",
            lt.len(),
            hashed,
            base,
            base.as_nanos() as f64 / hashed.as_nanos().max(1) as f64
        );
        entries.push(Entry {
            name: "join",
            n: lt.len(),
            hashed_ns: hashed.as_nanos(),
            baseline_ns: base.as_nanos(),
        });
    }

    harness::group("fig_scale/document-size sweeps (end-to-end)");
    for &scale in &[50usize, 200, 800] {
        let m = Scenario::at_scale(scale).mediator();
        for (name, query) in [
            ("q1 e2e", yat_yatl::paper::Q1),
            ("q2 e2e", yat_yatl::paper::Q2),
        ] {
            let t = harness::measure(|| {
                m.query(query, OptimizerOptions::default())
                    .expect("paper query answers")
            });
            println!("{name} scale={scale:<5} {t:>12?}");
            entries.push(Entry {
                name,
                n: scale,
                hashed_ns: t.as_nanos(),
                baseline_ns: 0,
            });
        }
    }

    // machine-readable output
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"n\": {}, \"hashed_ns\": {}, \"baseline_ns\": {}, \"speedup\": {:.3}}}",
            e.name,
            e.n,
            e.hashed_ns,
            e.baseline_ns,
            e.speedup()
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    let path = std::env::var("YAT_SCALE_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    std::fs::write(&path, &out).expect("write scale results");
    println!("\nwrote {path}");
}
