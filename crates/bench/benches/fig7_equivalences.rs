//! Fig. 7 — each algebraic equivalence measured as before/after:
//!
//! * vertical navigation through references vs extent join ("transform
//!   navigation into associative access");
//! * monolithic deep Bind vs linear split;
//! * full filter vs projection-simplified filter, untyped vs typed
//!   (the Section 5.1 type-information ablation).

use yat_bench::figures::{eval_rows, fig4, fig7};
use yat_bench::harness;

fn main() {
    harness::group("fig7/owners");
    for n in [200usize, 1000] {
        let forest = fig7::wide_forest(n, 24);
        let plan = fig7::navigation_plan_projected();
        harness::run(&format!("navigation/{n}"), || eval_rows(&plan, &forest));
        let plan = fig7::extent_join_plan();
        harness::run(&format!("extent-join/{n}"), || eval_rows(&plan, &forest));
    }

    harness::group("fig7/split");
    for n in [500usize, 2000] {
        let forest = fig4::forest(n);
        let plan = fig7::deep_bind_plan();
        harness::run(&format!("monolithic/{n}"), || eval_rows(&plan, &forest));
        let plan = fig7::split_bind_plan();
        harness::run(&format!("linear-split/{n}"), || eval_rows(&plan, &forest));
    }

    harness::group("fig7/typing");
    let forest = fig4::forest(1000);
    let plan = fig7::full_filter_bind();
    harness::run("full-filter", || eval_rows(&plan, &forest));
    let plan = fig7::untyped_simplified_bind();
    harness::run("untyped-simplified", || eval_rows(&plan, &forest));
    let plan = fig7::typed_simplified_bind();
    harness::run("typed-simplified", || eval_rows(&plan, &forest));
}
