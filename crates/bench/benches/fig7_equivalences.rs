//! Fig. 7 — each algebraic equivalence measured as before/after:
//!
//! * vertical navigation through references vs extent join ("transform
//!   navigation into associative access");
//! * monolithic deep Bind vs linear split;
//! * full filter vs projection-simplified filter, untyped vs typed
//!   (the Section 5.1 type-information ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use yat_bench::figures::{eval_rows, fig4, fig7};

fn bench_navigation_vs_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/owners");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [200usize, 1000] {
        let forest = fig7::wide_forest(n, 24);
        group.bench_with_input(BenchmarkId::new("navigation", n), &n, |b, _| {
            let plan = fig7::navigation_plan_projected();
            b.iter(|| eval_rows(&plan, &forest));
        });
        group.bench_with_input(BenchmarkId::new("extent-join", n), &n, |b, _| {
            let plan = fig7::extent_join_plan();
            b.iter(|| eval_rows(&plan, &forest));
        });
    }
    group.finish();
}

fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/split");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [500usize, 2000] {
        let forest = fig4::forest(n);
        group.bench_with_input(BenchmarkId::new("monolithic", n), &n, |b, _| {
            let plan = fig7::deep_bind_plan();
            b.iter(|| eval_rows(&plan, &forest));
        });
        group.bench_with_input(BenchmarkId::new("linear-split", n), &n, |b, _| {
            let plan = fig7::split_bind_plan();
            b.iter(|| eval_rows(&plan, &forest));
        });
    }
    group.finish();
}

fn bench_type_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/typing");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let forest = fig4::forest(1000);
    group.bench_function("full-filter", |b| {
        let plan = fig7::full_filter_bind();
        b.iter(|| eval_rows(&plan, &forest));
    });
    group.bench_function("untyped-simplified", |b| {
        let plan = fig7::untyped_simplified_bind();
        b.iter(|| eval_rows(&plan, &forest));
    });
    group.bench_function("typed-simplified", |b| {
        let plan = fig7::typed_simplified_bind();
        b.iter(|| eval_rows(&plan, &forest));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_navigation_vs_join,
    bench_split,
    bench_type_ablation
);
criterion_main!(benches);
