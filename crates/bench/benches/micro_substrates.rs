//! Micro-benchmarks of the substrates every figure stands on: XML
//! parsing/serialization (the wire), filter matching (Bind's engine),
//! OQL evaluation (the O2 source) and the inverted index (the Wais
//! source).

use yat_bench::harness;
use yat_model::MatchOptions;
use yat_oql::art::{art_store, ArtSpec};
use yat_wais::{generate_works, WorksSpec};
use yat_yatl::parse_filter;

fn main() {
    harness::group("micro/xml");
    let works = generate_works(&WorksSpec {
        works: 200,
        impressionist_pct: 40,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 1,
    });
    let xml = yat_model::xml_convert::tree_to_xml(&works).to_xml();
    harness::run(&format!("parse ({} bytes)", xml.len()), || {
        yat_xml::parse_element(&xml).expect("well-formed")
    });
    let doc = yat_xml::parse_element(&xml).expect("well-formed");
    harness::run("serialize", || doc.to_xml());
    harness::run("convert-to-trees", || {
        yat_model::xml_convert::tree_from_xml(&doc)
    });

    harness::group("micro/match");
    let works = generate_works(&WorksSpec {
        works: 500,
        impressionist_pct: 40,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 2,
    });
    let filter =
        parse_filter("works *work [ title: $t, artist: $a, style: $s, size: $si, *($fields) ]")
            .expect("static filter parses");
    harness::run("match-filter-500-works", || {
        yat_model::match_filter(&works, &filter, MatchOptions::default())
    });

    harness::group("micro/oql");
    let store = art_store(&ArtSpec {
        artifacts: 500,
        persons: 100,
        seed: 3,
    });
    let q = "select t: A.title, o: O.name from A in artifacts, O in A.owners \
             where A.year > 1800";
    harness::run("oql-join-500-artifacts", || {
        yat_oql::oql::run(q, &store).expect("OQL evaluates")
    });

    harness::group("micro/join");
    // the hash-join kernel: key-column resolution happens once, probing
    // allocates no per-row key strings (the regression this guards)
    let mk = |seed: u64, n: usize| {
        let doc = generate_works(&WorksSpec {
            works: n,
            impressionist_pct: 40,
            optional_pct: 60,
            giverny_pct: 30,
            seed,
        });
        let f = parse_filter("works *work [ title: $t, artist: $a ]").expect("filter parses");
        yat_algebra::Tab::from_binding_rows(
            vec!["t".to_string(), "a".to_string()],
            yat_model::match_filter(&doc, &f, MatchOptions::default()),
        )
    };
    let (lt, rt) = (mk(5, 1000), mk(6, 1000));
    let (lk, rk) = ([lt.col("a").unwrap()], [rt.col("a").unwrap()]);
    harness::run("hash-join-pairs-1000x1000", || {
        yat_algebra::keys::join_pairs(lt.raw_rows(), rt.raw_rows(), &lk, &rk)
    });

    harness::group("micro/wais");
    let works = generate_works(&WorksSpec {
        works: 2000,
        impressionist_pct: 40,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 4,
    });
    harness::run("index-build-2000", || {
        yat_wais::WaisSource::new("works", &works)
    });
    let source = yat_wais::WaisSource::new("works", &works);
    harness::run("contains-lookup", || {
        source.contains("Impressionist").expect("open policy")
    });
}
