//! Micro-benchmarks of the substrates every figure stands on: XML
//! parsing/serialization (the wire), filter matching (Bind's engine),
//! OQL evaluation (the O2 source) and the inverted index (the Wais
//! source).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;
use yat_model::MatchOptions;
use yat_oql::art::{art_store, ArtSpec};
use yat_wais::{generate_works, WorksSpec};
use yat_yatl::parse_filter;

fn bench_xml(c: &mut Criterion) {
    let works = generate_works(&WorksSpec {
        works: 200,
        impressionist_pct: 40,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 1,
    });
    let xml = yat_model::xml_convert::tree_to_xml(&works).to_xml();
    let mut group = c.benchmark_group("micro/xml");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("parse", |b| {
        b.iter(|| yat_xml::parse_element(&xml).expect("well-formed"))
    });
    let doc = yat_xml::parse_element(&xml).expect("well-formed");
    group.bench_function("serialize", |b| b.iter(|| doc.to_xml()));
    group.bench_function("convert-to-trees", |b| {
        b.iter(|| yat_model::xml_convert::tree_from_xml(&doc))
    });
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let works = generate_works(&WorksSpec {
        works: 500,
        impressionist_pct: 40,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 2,
    });
    let filter =
        parse_filter("works *work [ title: $t, artist: $a, style: $s, size: $si, *($fields) ]")
            .expect("static filter parses");
    c.bench_function("micro/match-filter-500-works", |b| {
        b.iter(|| yat_model::match_filter(&works, &filter, MatchOptions::default()))
    });
}

fn bench_oql(c: &mut Criterion) {
    let store = art_store(&ArtSpec {
        artifacts: 500,
        persons: 100,
        seed: 3,
    });
    let q = "select t: A.title, o: O.name from A in artifacts, O in A.owners \
             where A.year > 1800";
    c.bench_function("micro/oql-join-500-artifacts", |b| {
        b.iter(|| yat_oql::oql::run(q, &store).expect("OQL evaluates"))
    });
}

fn bench_index(c: &mut Criterion) {
    let works = generate_works(&WorksSpec {
        works: 2000,
        impressionist_pct: 40,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 4,
    });
    let mut group = c.benchmark_group("micro/wais");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("index-build-2000", |b| {
        b.iter(|| yat_wais::WaisSource::new("works", &works))
    });
    let source = yat_wais::WaisSource::new("works", &works);
    group.bench_function("contains-lookup", |b| {
        b.iter(|| source.contains("Impressionist").expect("open policy"))
    });
    group.finish();
}

criterion_group!(benches, bench_xml, bench_matching, bench_oql, bench_index);
criterion_main!(benches);
