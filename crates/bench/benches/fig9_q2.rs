//! Fig. 9 — Q2 end-to-end at each optimization level, plus the
//! full-text selectivity sweep that locates the information-passing
//! crossover (per-row round trips vs bulk document shipping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use yat_bench::figures::pipeline::LEVELS;
use yat_bench::workload::Scenario;
use yat_yatl::paper;

fn bench_q2_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/q2");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for n in [50usize, 200] {
        let m = Scenario::at_scale(n).mediator();
        let plan = m.plan_query(paper::Q2).expect("Q2 plans");
        for level in LEVELS {
            let (opt, _) = m.optimize(&plan, level.options(false));
            group.bench_with_input(BenchmarkId::new(level.name(), n), &n, |b, _| {
                b.iter(|| m.execute(&opt).expect("Q2 executes"))
            });
        }
    }
    group.finish();
}

fn bench_q2_selectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/selectivity");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(15);
    for pct in [5u8, 40] {
        let mut sc = Scenario::at_scale(200);
        sc.impressionist_pct = pct;
        let m = sc.mediator();
        let plan = m.plan_query(paper::Q2).expect("Q2 plans");
        let (naive, _) = m.optimize(&plan, LEVELS[0].options(false));
        let (full, _) = m.optimize(&plan, LEVELS[3].options(false));
        group.bench_with_input(BenchmarkId::new("naive", pct), &pct, |b, _| {
            b.iter(|| m.execute(&naive).expect("naive executes"))
        });
        group.bench_with_input(BenchmarkId::new("full", pct), &pct, |b, _| {
            b.iter(|| m.execute(&full).expect("full executes"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_q2_levels, bench_q2_selectivity);
criterion_main!(benches);
