//! Fig. 9 — Q2 end-to-end at each optimization level, plus the
//! full-text selectivity sweep that locates the information-passing
//! crossover (per-row round trips vs bulk document shipping).

use yat_bench::figures::pipeline::LEVELS;
use yat_bench::harness;
use yat_bench::workload::Scenario;
use yat_yatl::paper;

fn main() {
    harness::group("fig9/q2");
    for n in [50usize, 200] {
        let m = Scenario::at_scale(n).mediator();
        let plan = m.plan_query(paper::Q2).expect("Q2 plans");
        for level in LEVELS {
            let (opt, _) = m.optimize(&plan, level.options(false));
            harness::run(&format!("{}/{n}", level.name()), || {
                m.execute(&opt).expect("Q2 executes")
            });
        }
    }

    harness::group("fig9/selectivity");
    for pct in [5u8, 40] {
        let mut sc = Scenario::at_scale(200);
        sc.impressionist_pct = pct;
        let m = sc.mediator();
        let plan = m.plan_query(paper::Q2).expect("Q2 plans");
        let (naive, _) = m.optimize(&plan, LEVELS[0].options(false));
        let (full, _) = m.optimize(&plan, LEVELS[3].options(false));
        harness::run(&format!("naive/{pct}%"), || {
            m.execute(&naive).expect("naive executes")
        });
        harness::run(&format!("full/{pct}%"), || {
            m.execute(&full).expect("full executes")
        });
    }
}
