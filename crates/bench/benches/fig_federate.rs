//! Federation sweep: plan-time partition pruning, degraded answers and
//! stat-fed scheduling over an N-member [`FedScenario`], N ∈ {2..32},
//! with a simulated 25 ms per-member round trip.
//!
//! Three sweeps, all over the same seeded federation:
//!
//! * **prune** — Q2 (style = Impressionist) with and without
//!   plan-time partition pruning. The pruned plan must contact *only*
//!   the shards owning the Impressionist style; every round trip to an
//!   excluded shard, and any answer divergence, counts as a
//!   `violations` entry — the CI smoke gate requires zero.
//! * **degrade** — one shard killed, `PartialFailure::Degrade`: Q1
//!   still answers, provenance names exactly the dead member, and the
//!   strict policy still fails fast.
//! * **sched** — Q1 under cost-fed vs static scatter ordering with
//!   skewed member latencies (answers must agree; wall times are
//!   reported, not gated — they are machine-dependent).
//!
//! Machine-readable output goes to `BENCH_federate.json` (override with
//! `YAT_FED_OUT`); `YAT_FED_SMOKE=1` shrinks the member sweep for CI.
//!
//! ```json
//! {"sweep": "prune", "members": 8, "replicas": 4, "shards": 4,
//!  "pruned_ms": ..., "unpruned_ms": ..., "pruned_bytes": ...,
//!  "unpruned_bytes": ..., "shards_contacted_pruned": 1,
//!  "shards_contacted_unpruned": 4, "violations": 0}
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use yat_algebra::EvalOut;
use yat_bench::figures::fingerprint;
use yat_bench::workload::FedScenario;
use yat_mediator::{ExecMode, Latency, Mediator, OptimizerOptions, PartialFailure, SchedPolicy};
use yat_yatl::paper;

const SCALE: usize = 40;
const LATENCY: Duration = Duration::from_millis(25);

fn set_latency(m: &Mediator, sc: &FedScenario, of: impl Fn(&str) -> Duration) {
    for name in sc.member_names() {
        m.connection(&name)
            .expect("every member is connected")
            .set_latency(Some(Latency::fixed(of(&name))));
    }
}

fn answer_fp(out: &EvalOut) -> Vec<String> {
    match out {
        EvalOut::Tree(t) => fingerprint(t),
        EvalOut::Tab(_) => panic!("paper queries answer trees"),
    }
}

/// Per-shard round trips since the last `reset_traffic`.
fn shard_trips(m: &Mediator, sc: &FedScenario) -> Vec<(String, u64)> {
    sc.shard_names()
        .into_iter()
        .map(|name| {
            let trips = m.traffic_of(&name).map(|t| t.round_trips).unwrap_or(0);
            (name, trips)
        })
        .collect()
}

struct PruneEntry {
    members: usize,
    replicas: usize,
    shards: usize,
    pruned_ms: f64,
    unpruned_ms: f64,
    pruned_bytes: u64,
    unpruned_bytes: u64,
    contacted_pruned: usize,
    contacted_unpruned: usize,
    violations: usize,
}

fn run_prune(members: usize) -> PruneEntry {
    let sc = FedScenario::new(members, SCALE);
    let mut m = sc.mediator();
    m.set_exec_mode(ExecMode::Parallel { max_in_flight: 4 });
    set_latency(&m, &sc, |_| LATENCY);
    let plan = m.plan_query(paper::Q2).expect("Q2 plans");

    let unpruned_opts = OptimizerOptions {
        prune_partitions: false,
        ..OptimizerOptions::default()
    };
    let (unpruned_plan, _) = m.optimize(&plan, unpruned_opts);
    m.reset_traffic();
    let t0 = Instant::now();
    let unpruned_out = m.execute(&unpruned_plan).expect("unpruned Q2 executes");
    let unpruned_ms = t0.elapsed().as_secs_f64() * 1e3;
    let unpruned_trips = shard_trips(&m, &sc);
    let unpruned_bytes: u64 = sc
        .member_names()
        .iter()
        .filter_map(|n| m.traffic_of(n))
        .map(|t| t.total_bytes())
        .sum();

    let (pruned_plan, _) = m.optimize(&plan, OptimizerOptions::default());
    m.reset_traffic();
    let t0 = Instant::now();
    let pruned_out = m.execute(&pruned_plan).expect("pruned Q2 executes");
    let pruned_ms = t0.elapsed().as_secs_f64() * 1e3;
    let pruned_trips = shard_trips(&m, &sc);
    let pruned_bytes: u64 = sc
        .member_names()
        .iter()
        .filter_map(|n| m.traffic_of(n))
        .map(|t| t.total_bytes())
        .sum();

    // pruning-correctness: an excluded shard must never be contacted,
    // and the pruned answer must equal the unpruned one
    let owners = sc.shards_owning("Impressionist");
    let mut violations = 0usize;
    for (name, trips) in &pruned_trips {
        if *trips > 0 && !owners.contains(name) {
            eprintln!("violation: pruned Q2 contacted excluded shard {name} ({trips} trips)");
            violations += 1;
        }
    }
    if answer_fp(&pruned_out) != answer_fp(&unpruned_out) {
        eprintln!("violation: pruned and unpruned Q2 answers diverge at N={members}");
        violations += 1;
    }
    PruneEntry {
        members,
        replicas: sc.replica_count(),
        shards: sc.shard_count(),
        pruned_ms,
        unpruned_ms,
        pruned_bytes,
        unpruned_bytes,
        contacted_pruned: pruned_trips.iter().filter(|(_, t)| *t > 0).count(),
        contacted_unpruned: unpruned_trips.iter().filter(|(_, t)| *t > 0).count(),
        violations,
    }
}

struct DegradeEntry {
    members: usize,
    killed: String,
    degraded_ms: f64,
    answered_by: usize,
    missing: usize,
}

fn run_degrade(members: usize) -> DegradeEntry {
    let mut sc = FedScenario::new(members, SCALE);
    let killed = sc.shard_names().pop().expect("at least one shard");
    sc.dead = vec![killed.clone()];
    // strict (the default) fails fast, naming the dead member
    let m = sc.mediator();
    set_latency(&m, &sc, |_| LATENCY);
    let err = m
        .query(paper::Q1, OptimizerOptions::default())
        .expect_err("strict mode must fail when a consulted shard is dead");
    assert!(err.to_string().contains(&killed), "{err}");

    let mut m = sc.mediator();
    m.set_exec_mode(ExecMode::Parallel { max_in_flight: 4 });
    m.set_partial_failure(PartialFailure::Degrade);
    set_latency(&m, &sc, |_| LATENCY);
    let plan = m.plan_query(paper::Q1).expect("Q1 plans");
    let (opt, _) = m.optimize(&plan, OptimizerOptions::default());
    let t0 = Instant::now();
    let (_, prov) = m
        .execute_federated(&opt)
        .expect("degrade mode answers past the dead shard");
    let degraded_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(prov.is_degraded(), "the dead shard must be missed");
    assert_eq!(
        prov.missing.keys().cloned().collect::<Vec<_>>(),
        vec![killed.clone()],
        "provenance must name exactly the killed shard"
    );
    DegradeEntry {
        members,
        killed,
        degraded_ms,
        answered_by: prov.answered_by.len(),
        missing: prov.missing.len(),
    }
}

struct SchedEntry {
    members: usize,
    cost_ms: f64,
    static_ms: f64,
}

fn run_sched(members: usize) -> SchedEntry {
    let sc = FedScenario::new(members, SCALE);
    let mut m = sc.mediator();
    m.set_exec_mode(ExecMode::Parallel { max_in_flight: 4 });
    // skewed federation: even members answer fast, odd members slowly
    let skew = |name: &str| {
        let i: usize = name
            .rsplit('-')
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        if i.is_multiple_of(2) {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(50)
        }
    };
    set_latency(&m, &sc, skew);
    let plan = m.plan_query(paper::Q1).expect("Q1 plans");
    let (opt, _) = m.optimize(&plan, OptimizerOptions::default());
    // two warm runs feed the cost records before anything is measured
    let baseline = answer_fp(&m.execute(&opt).expect("warm run 1"));
    let _ = m.execute(&opt).expect("warm run 2");

    let mut timed = |policy: SchedPolicy| {
        m.set_sched_policy(policy);
        let t0 = Instant::now();
        let out = m.execute(&opt).expect("scheduled run executes");
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            answer_fp(&out),
            baseline,
            "scheduling must not change answers"
        );
        elapsed
    };
    let static_ms = timed(SchedPolicy::Static);
    let cost_ms = timed(SchedPolicy::Cost);
    SchedEntry {
        members,
        cost_ms,
        static_ms,
    }
}

fn main() {
    let smoke = std::env::var("YAT_FED_SMOKE").is_ok_and(|v| v == "1");
    let member_counts: &[usize] = if smoke { &[2, 8] } else { &[2, 4, 8, 16, 32] };

    println!("\n== fig_federate/prune sweep (Q2, 25 ms per member) ==");
    let mut prunes: Vec<PruneEntry> = Vec::new();
    for &n in member_counts {
        let e = run_prune(n);
        println!(
            "N={n:<3} ({}R+{}S)  pruned {:>8.2}ms / {:>8}B over {} shard(s)   \
             unpruned {:>8.2}ms / {:>8}B over {} shard(s)   violations={}",
            e.replicas,
            e.shards,
            e.pruned_ms,
            e.pruned_bytes,
            e.contacted_pruned,
            e.unpruned_ms,
            e.unpruned_bytes,
            e.contacted_unpruned,
            e.violations
        );
        prunes.push(e);
    }

    println!("\n== fig_federate/degrade (kill one shard, Q1) ==");
    let mut degrades: Vec<DegradeEntry> = Vec::new();
    for &n in member_counts {
        let e = run_degrade(n);
        println!(
            "N={n:<3} killed {:<9}  degraded answer in {:>8.2}ms  answered-by {} member(s), {} missing",
            e.killed, e.degraded_ms, e.answered_by, e.missing
        );
        degrades.push(e);
    }

    println!("\n== fig_federate/sched (Q1, 5 ms / 50 ms skew) ==");
    let mut scheds: Vec<SchedEntry> = Vec::new();
    for &n in member_counts {
        let e = run_sched(n);
        println!(
            "N={n:<3} static {:>8.2}ms   cost-fed {:>8.2}ms",
            e.static_ms, e.cost_ms
        );
        scheds.push(e);
    }

    let mut out = String::from("[\n");
    for e in &prunes {
        let _ = writeln!(
            out,
            "  {{\"sweep\": \"prune\", \"members\": {}, \"replicas\": {}, \"shards\": {}, \
             \"pruned_ms\": {:.3}, \"unpruned_ms\": {:.3}, \
             \"pruned_bytes\": {}, \"unpruned_bytes\": {}, \
             \"shards_contacted_pruned\": {}, \"shards_contacted_unpruned\": {}, \
             \"violations\": {}}},",
            e.members,
            e.replicas,
            e.shards,
            e.pruned_ms,
            e.unpruned_ms,
            e.pruned_bytes,
            e.unpruned_bytes,
            e.contacted_pruned,
            e.contacted_unpruned,
            e.violations,
        );
    }
    for e in &degrades {
        let _ = writeln!(
            out,
            "  {{\"sweep\": \"degrade\", \"members\": {}, \"killed\": \"{}\", \
             \"degraded_ms\": {:.3}, \"answered_by\": {}, \"missing\": {}}},",
            e.members, e.killed, e.degraded_ms, e.answered_by, e.missing,
        );
    }
    for (i, e) in scheds.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"sweep\": \"sched\", \"members\": {}, \"cost_ms\": {:.3}, \"static_ms\": {:.3}}}",
            e.members, e.cost_ms, e.static_ms,
        );
        out.push_str(if i + 1 < scheds.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    let path = std::env::var("YAT_FED_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_federate.json").into()
    });
    std::fs::write(&path, &out).expect("write federate results");
    println!("\nwrote {path}");

    let violations: usize = prunes.iter().map(|e| e.violations).sum();
    if violations > 0 {
        eprintln!("fig_federate: {violations} pruning-correctness violation(s)");
        std::process::exit(1);
    }
    println!("fig_federate: zero pruning-correctness violations");
}
