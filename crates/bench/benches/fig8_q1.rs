//! Fig. 8 — Q1 end-to-end at each optimization level: naive view
//! materialization vs composed (Bind–Tree eliminated, O2 branch gone) vs
//! fully pushed (contains at the Wais source).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use yat_bench::figures::pipeline::{Level, LEVELS};
use yat_bench::workload::Scenario;
use yat_yatl::paper;

fn bench_q1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/q1");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for n in [50usize, 200] {
        let m = Scenario::at_scale(n).mediator();
        let plan = m.plan_query(paper::Q1).expect("Q1 plans");
        for level in LEVELS {
            let (opt, _) = m.optimize(&plan, level.options(true));
            group.bench_with_input(BenchmarkId::new(level.name(), n), &n, |b, _| {
                b.iter(|| m.execute(&opt).expect("Q1 executes"))
            });
        }
    }
    group.finish();
}

fn bench_q1_optimize_cost(c: &mut Criterion) {
    // the optimizer itself must be cheap relative to execution
    let m = Scenario::at_scale(50).mediator();
    let plan = m.plan_query(paper::Q1).expect("Q1 plans");
    c.bench_function("fig8/optimize-cost", |b| {
        b.iter(|| m.optimize(&plan, Level::Full.options(true)))
    });
}

criterion_group!(benches, bench_q1, bench_q1_optimize_cost);
criterion_main!(benches);
