//! Fig. 8 — Q1 end-to-end at each optimization level: naive view
//! materialization vs composed (Bind–Tree eliminated, O2 branch gone) vs
//! fully pushed (contains at the Wais source).

use yat_bench::figures::pipeline::{Level, LEVELS};
use yat_bench::harness;
use yat_bench::workload::Scenario;
use yat_yatl::paper;

fn main() {
    harness::group("fig8/q1");
    for n in [50usize, 200] {
        let m = Scenario::at_scale(n).mediator();
        let plan = m.plan_query(paper::Q1).expect("Q1 plans");
        for level in LEVELS {
            let (opt, _) = m.optimize(&plan, level.options(true));
            harness::run(&format!("{}/{n}", level.name()), || {
                m.execute(&opt).expect("Q1 executes")
            });
        }
    }

    // the optimizer itself must be cheap relative to execution
    harness::group("fig8/optimize-cost");
    let m = Scenario::at_scale(50).mediator();
    let plan = m.plan_query(paper::Q1).expect("Q1 plans");
    harness::run("optimize-cost", || {
        m.optimize(&plan, Level::Full.options(true))
    });
}
