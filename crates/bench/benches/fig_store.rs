//! Persistent-store sweep: the Wais source mounted from a segmented
//! on-disk store at n = 10^3 .. 10^6 documents, against the in-memory
//! source as the semantic oracle.
//!
//! Per size the bench measures:
//!
//! - `populate_ns` — bulk-loading a fresh store directory (one durable
//!   commit, index sidecar saved).
//! - `cold_mount_ns` — remounting the existing directory: manifest
//!   replay, committed-byte validation, index sidecar load.
//! - `cold_query_ns` — the fig_index selective query (`contains` on the
//!   unique number token of the last title, then fetching the hit) with
//!   no segment resident: every iteration drops residency first, so the
//!   cost includes faulting segments back in under the budget.
//! - `warm_query_ns` — the same query with segments resident.
//! - `mem_query_ns` — the in-memory oracle answering the same query.
//!
//! The mount runs under a residency budget of a quarter of the on-disk
//! size (floored at 64 KiB), so the 10^6-doc source demonstrably answers
//! out of a RAM window smaller than its data. Every size asserts the
//! store-backed answer trees are byte-identical to the oracle — a
//! divergence aborts the bench.
//!
//! Writes `BENCH_store.json` (override with `YAT_STORE_OUT`); knobs:
//! `YAT_STORE_NS=1000,10000` overrides the sweep sizes, and
//! `YAT_STORE_GATE=1` additionally asserts budget discipline (budget
//! smaller than the on-disk size, residency within budget) on top of
//! the always-on equality checks — the CI "zero divergences" gate.

use std::fmt::Write as _;
use std::time::Instant;
use yat_bench::harness;
use yat_store::StoreOptions;
use yat_wais::{generate_works, WaisSource, WorksSpec};

struct Entry {
    n: usize,
    disk_bytes: u64,
    budget: u64,
    resident_bytes: u64,
    populate_ns: u128,
    cold_mount_ns: u128,
    cold_query_ns: u128,
    warm_query_ns: u128,
    mem_query_ns: u128,
}

fn sweep_sizes() -> Vec<usize> {
    match std::env::var("YAT_STORE_NS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("YAT_STORE_NS holds sizes"))
            .collect(),
        Err(_) => vec![1_000, 10_000, 100_000, 1_000_000],
    }
}

/// The selective query both sides answer: the unique number token of
/// the last title seeds `contains`, and the hits are fetched as trees.
fn answer(src: &WaisSource, needle: &str) -> Vec<yat_model::Tree> {
    src.contains(needle)
        .expect("contains answers")
        .into_iter()
        .filter_map(|id| src.fetch(id))
        .collect()
}

fn sweep(entries: &mut Vec<Entry>, n: usize, gate: bool) {
    let root = std::env::temp_dir().join(format!("yat-fig-store-{}", std::process::id()));
    let dir = root.join(format!("n{n}"));
    let _ = std::fs::remove_dir_all(&dir);

    let works = generate_works(&WorksSpec {
        works: n,
        impressionist_pct: 30,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 42,
    });
    let mem = WaisSource::new("works", &works);
    let needle = format!("{}", n - 1);
    let oracle = answer(&mem, &needle);
    assert_eq!(oracle.len(), 1, "the number token hits exactly one work");

    // populate: fresh directory, bulk load, one commit. Segments roll at
    // 64 KiB so even the smallest sweep spans several — a budget can then
    // hold the hot segment resident while the rest page out.
    let seg_opts = StoreOptions {
        segment_target: 64 * 1024,
        ..StoreOptions::default()
    };
    let t = Instant::now();
    let populated =
        WaisSource::open_store("works", &works, &dir, seg_opts).expect("fresh store populates");
    let populate_ns = t.elapsed().as_nanos();
    let disk_bytes = populated.store().expect("store-backed").disk_bytes();
    drop(populated);
    drop(works);

    // cold mount under a budget a quarter of the on-disk size
    let budget = (disk_bytes / 4).max(64 * 1024);
    let opts = StoreOptions { budget, ..seg_opts };
    let t = Instant::now();
    let src = WaisSource::open_store("works", &yat_model::Node::sym("works", vec![]), &dir, opts)
        .expect("existing store mounts");
    let cold_mount_ns = t.elapsed().as_nanos();
    assert_eq!(src.len(), n, "every document survived the remount");

    // byte-identical to the oracle, from a residency window smaller
    // than the data
    assert_eq!(
        answer(&src, &needle),
        oracle,
        "store-backed answer diverges from the in-memory oracle at n={n}"
    );
    let store = src.store().expect("store-backed").clone();
    let resident_bytes = store.stats().resident_bytes;
    if gate {
        assert!(
            budget < disk_bytes,
            "n={n}: the budget ({budget}B) must undercut the data ({disk_bytes}B)"
        );
        assert!(
            resident_bytes <= budget,
            "n={n}: residency {resident_bytes}B exceeds the budget {budget}B"
        );
    }

    // cold: drop residency every iteration, so the segment faults are
    // inside the window; warm: segments stay resident
    let cold_query_ns = harness::measure(|| {
        store.drop_resident();
        answer(&src, &needle)
    })
    .as_nanos();
    let warm_query_ns = harness::measure(|| answer(&src, &needle)).as_nanos();
    let mem_query_ns = harness::measure(|| answer(&mem, &needle)).as_nanos();

    println!(
        "n={n:<8} disk {disk_bytes:>12}B  budget {budget:>11}B  populate {populate_ns:>13} ns  \
         mount {cold_mount_ns:>12} ns  cold {cold_query_ns:>10} ns  warm {warm_query_ns:>10} ns  \
         mem {mem_query_ns:>10} ns"
    );
    entries.push(Entry {
        n,
        disk_bytes,
        budget,
        resident_bytes,
        populate_ns,
        cold_mount_ns,
        cold_query_ns,
        warm_query_ns,
        mem_query_ns,
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let gate = std::env::var("YAT_STORE_GATE").as_deref() == Ok("1");
    let sizes = sweep_sizes();
    let mut entries = Vec::new();
    for &n in &sizes {
        assert!(n >= 100, "sweep sizes start at 100 (unique-token needle)");
        harness::group(&format!("fig_store/n={n}"));
        sweep(&mut entries, n, gate);
    }

    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"n\": {}, \"disk_bytes\": {}, \"budget\": {}, \"resident_bytes\": {}, \
             \"populate_ns\": {}, \"cold_mount_ns\": {}, \"cold_query_ns\": {}, \
             \"warm_query_ns\": {}, \"mem_query_ns\": {}}}",
            e.n,
            e.disk_bytes,
            e.budget,
            e.resident_bytes,
            e.populate_ns,
            e.cold_mount_ns,
            e.cold_query_ns,
            e.warm_query_ns,
            e.mem_query_ns
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    let path = std::env::var("YAT_STORE_OUT").unwrap_or_else(|_| "BENCH_store.json".to_string());
    std::fs::write(&path, &out).expect("write store results");
    println!("\nwrote {path}");
    if gate {
        println!("gate: store-backed answers byte-identical, residency within budget");
    }
}
