//! Fig. 4 — throughput of the two XML-specific frontier operators:
//! `Bind` (pattern matching into a Tab) and `Tree` (construction with
//! grouping and Skolem functions), as collection size grows.

use yat_algebra::{eval, EvalCtx, FnRegistry, SkolemRegistry};
use yat_bench::figures::fig4;
use yat_bench::harness;

fn main() {
    harness::group("fig4/bind");
    for n in [100usize, 500, 2000] {
        let forest = fig4::forest(n);
        let plan = fig4::bind_plan();
        let funcs = FnRegistry::with_builtins();
        let skolems = SkolemRegistry::new();
        let ctx = EvalCtx::local(&forest, &funcs, &skolems);
        harness::run(&format!("bind/{n}"), || {
            eval(&plan, &ctx).expect("bind evaluates")
        });
    }

    harness::group("fig4/bind+tree");
    for n in [100usize, 500, 2000] {
        let forest = fig4::forest(n);
        let plan = fig4::tree_plan();
        let funcs = FnRegistry::with_builtins();
        let skolems = SkolemRegistry::new();
        let ctx = EvalCtx::local(&forest, &funcs, &skolems);
        harness::run(&format!("bind+tree/{n}"), || {
            eval(&plan, &ctx).expect("tree evaluates")
        });
    }
}
