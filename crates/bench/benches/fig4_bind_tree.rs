//! Fig. 4 — throughput of the two XML-specific frontier operators:
//! `Bind` (pattern matching into a Tab) and `Tree` (construction with
//! grouping and Skolem functions), as collection size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use yat_algebra::{eval, EvalCtx, FnRegistry, SkolemRegistry};
use yat_bench::figures::fig4;

fn bench_bind(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/bind");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [100usize, 500, 2000] {
        let forest = fig4::forest(n);
        let plan = fig4::bind_plan();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let funcs = FnRegistry::with_builtins();
            let skolems = SkolemRegistry::new();
            let ctx = EvalCtx::local(&forest, &funcs, &skolems);
            b.iter(|| eval(&plan, &ctx).expect("bind evaluates"));
        });
    }
    group.finish();
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/bind+tree");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [100usize, 500, 2000] {
        let forest = fig4::forest(n);
        let plan = fig4::tree_plan();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let funcs = FnRegistry::with_builtins();
            let skolems = SkolemRegistry::new();
            let ctx = EvalCtx::local(&forest, &funcs, &skolems);
            b.iter(|| eval(&plan, &ctx).expect("tree evaluates"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bind, bench_tree);
criterion_main!(benches);
