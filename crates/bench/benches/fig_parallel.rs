//! Scatter/gather speedup — Q1 and Q2 shaped so the optimizer leaves
//! work on *both* sources, with ~25 ms of simulated per-source latency.
//! Sequential execution pays roughly the *sum* of the source latencies;
//! `ExecMode::Parallel` pays roughly the *max*, because the independent
//! source jobs overlap on worker lanes. Lane counts beyond the job count
//! change nothing (there are only two sources to scatter over).

use std::time::Duration;
use yat_bench::harness;
use yat_bench::workload::Scenario;
use yat_mediator::{ExecMode, Latency, Mediator, OptimizerOptions};
use yat_yatl::paper;

/// Per-source simulated wire latency: 25 ms base + up to 5 ms of
/// deterministic per-request jitter.
fn add_latency(m: &Mediator) {
    for (i, src) in ["o2artifact", "xmlartwork"].iter().enumerate() {
        m.connection(src)
            .expect("scenario connects both sources")
            .set_latency(Some(Latency {
                base: Duration::from_millis(25),
                jitter: Duration::from_millis(5),
                seed: 0xBE7C + i as u64,
            }));
    }
}

fn main() {
    let scenario = Scenario::at_scale(60);

    // Both queries are optimized without information passing (and Q1
    // also without the containment assumption), so each plan keeps one
    // *independent* pushed fragment per source — with info passing on,
    // the O2 fragment becomes a per-row DJoin dependency that no
    // executor could overlap with the Wais fetch.
    let cases = [
        (
            "q1",
            paper::Q1,
            OptimizerOptions {
                assume_containment: false,
                info_passing: false,
                ..OptimizerOptions::full()
            },
        ),
        (
            "q2",
            paper::Q2,
            OptimizerOptions {
                info_passing: false,
                ..OptimizerOptions::default()
            },
        ),
    ];

    for (name, query, options) in cases {
        harness::group(&format!("fig_parallel/{name}"));
        let mut m = scenario.mediator();
        add_latency(&m);
        let plan = m.plan_query(query).expect("paper query plans");
        let (opt, _) = m.optimize(&plan, options);

        m.set_exec_mode(ExecMode::Sequential);
        harness::run("sequential", || m.execute(&opt).expect("query executes"));

        for lanes in [1usize, 2, 4, 8] {
            m.set_exec_mode(ExecMode::Parallel {
                max_in_flight: lanes,
            });
            harness::run(&format!("parallel/{lanes}"), || {
                m.execute(&opt).expect("query executes")
            });
        }
    }
}
