//! The service: accept loop, admission queue, worker pool, drain.
//!
//! Threading model (one `Server`):
//!
//! ```text
//!             accept loop ──spawns──▶ connection threads (1 per client)
//!                                          │  try_send (bounded)
//!                                          ▼
//!                               admission queue (sync_channel)
//!                                          │  recv
//!                                          ▼
//!                               worker pool (N threads, one Mediator)
//! ```
//!
//! A connection thread parses frames and *admits* query work; it never
//! executes a plan itself. Admission is a `try_send` into a bounded
//! channel: when the queue is full the client is answered
//! [`ServerReply::Overloaded`] with a retry hint instead of being made
//! to wait — load is shed at the door, which keeps the tail latency of
//! admitted queries bounded by queue depth × service time. Workers
//! check the request's deadline *before* starting execution: a query
//! that already waited out its budget in the queue is refused cheaply
//! rather than executed for a client that has given up.
//!
//! Shutdown is a drain, not an abort: admission stops, the queue's
//! sender is dropped so workers exit once the backlog is empty, and the
//! `Bye` reply reports how many queries were still in the house when
//! the drain began.

use std::io::{self};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use yat_algebra::{BatchSink, EvalError, EvalOut, Tab};
use yat_capability::framing;
use yat_capability::protocol::{ClientRequest, ServerReply, ServerStats, SourceGauge, StreamFrame};
use yat_capability::xml::WireError;
use yat_mediator::{Mediator, OptimizerOptions, StreamPolicy};
use yat_model::Tree;
use yat_obs::{attr, kind, Collector, SpanData};

// The worker pool shares one mediator by reference; this is the
// compile-time proof that doing so is sound.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Mediator>();
};

/// Tuning knobs for one [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads executing queries (at least 1).
    pub workers: usize,
    /// Admission-queue capacity; a `try_send` beyond it sheds the query
    /// with [`ServerReply::Overloaded`] (at least 1).
    pub queue_capacity: usize,
    /// Deadline applied to queries that do not carry their own
    /// `deadline-ms`. `None` means no deadline.
    pub default_deadline: Option<Duration>,
    /// The retry hint carried by `Overloaded` replies.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline: None,
            retry_after_ms: 25,
        }
    }
}

/// One admitted piece of work, en route from a connection thread to a
/// worker.
struct Job {
    request: ClientRequest,
    admitted_at: Instant,
    deadline: Option<Duration>,
    /// Span id of the connection thread's `serve <kind>` span, so the
    /// worker's `execute` span stitches under it across threads.
    parent_span: usize,
    /// Closed (by dropping the sender) when a worker picks the job up —
    /// ends the connection thread's `queue-wait` span at the moment the
    /// wait actually ended.
    started: SyncSender<()>,
    reply: SyncSender<ServerReply>,
    /// Present when the client negotiated `stream="chunked"`: the worker
    /// delivers frames through it instead of `reply`.
    stream: Option<StreamJob>,
}

/// The streamed-reply half of a [`Job`].
struct StreamJob {
    /// Bounded frame channel (capacity = the stream policy's
    /// `max_pending`): a worker that produces batches faster than the
    /// connection thread can write them blocks in `send`, which
    /// backpressures the mediator's delivery loop — per-query memory
    /// stays bounded by `max_pending` serialized chunks.
    events: SyncSender<StreamEvent>,
    /// The worker blocks here after its terminal event until the
    /// connection thread has written the final frame, so a drain can
    /// never observe the query retired while its stream is still being
    /// written.
    done: Receiver<()>,
}

/// One message from a worker to the connection thread of a streamed
/// query. Frames are pre-serialized on the worker so the connection
/// thread only writes bytes.
enum StreamEvent {
    /// Fall back to one ordinary reply frame: errors before the first
    /// chunk (including deadline refusals) look exactly like their
    /// materialized counterparts.
    Reply(ServerReply),
    /// One `answer-chunk` frame.
    Chunk(String),
    /// The terminal frame: `answer-end`, or `stream-abort` after a
    /// mid-stream failure.
    End(String),
}

/// What [`admit`] hands back to the connection thread.
enum Admitted {
    /// One reply frame to write.
    Reply(ServerReply),
    /// A streamed answer: frames arrive on `events`; after writing the
    /// terminal frame the connection thread acks on `done`.
    Stream {
        events: Receiver<StreamEvent>,
        done: SyncSender<()>,
    },
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    mediator: Mediator,
    config: ServerConfig,
    addr: SocketAddr,
    obs: Collector,
    /// `Some` while admitting; `drain` takes it so workers exit once the
    /// backlog empties.
    sender: Mutex<Option<SyncSender<Job>>>,
    stop: AtomicBool,
    draining: AtomicBool,
    queue_depth: AtomicU64,
    in_flight: AtomicU64,
    connections: AtomicU64,
    admitted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    protocol_errors: AtomicU64,
}

/// Spawns [`Server`]s; the unit struct exists so the entry points read
/// `Server::spawn(mediator, config)`.
pub struct Server;

impl Server {
    /// Binds a loopback port chosen by the OS and starts serving.
    pub fn spawn(mediator: Mediator, config: ServerConfig) -> io::Result<ServerHandle> {
        Server::bind(mediator, config, ("127.0.0.1", 0))
    }

    /// Binds `addr` and starts serving: the accept loop and the worker
    /// pool run until [`ServerHandle::shutdown`] or a client's
    /// `Shutdown` request drains the server.
    pub fn bind(
        mediator: Mediator,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> io::Result<ServerHandle> {
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            ..config
        };
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = sync_channel::<Job>(config.queue_capacity);
        let shared = Arc::new(Shared {
            mediator,
            config,
            addr,
            obs: Collector::new(),
            sender: Mutex::new(Some(tx)),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            queue_depth: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        });
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers)
            .map(|i| {
                let shared = shared.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("yat-worker-{i}"))
                    .spawn(move || worker_loop(i, &shared, &rx))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("yat-accept".into())
                .spawn(move || accept_loop(&shared, &listener))
                .expect("spawn accept thread")
        };
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// A running server: its address, live gauges, and the drain switch.
/// Dropping the handle drains and joins the server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Current gauges and counters — the same numbers a `Stats` request
    /// answers with.
    pub fn stats(&self) -> ServerStats {
        build_stats(&self.shared)
    }

    /// The shared mediator (e.g. to install per-source latencies or
    /// inspect cache stats from the embedding process).
    pub fn mediator(&self) -> &Mediator {
        &self.shared.mediator
    }

    /// The serving-layer spans recorded so far (`serve query` →
    /// `queue-wait` / `execute`, `respond`, `accept`).
    pub fn spans(&self) -> Vec<SpanData> {
        self.shared.obs.spans()
    }

    /// Drains the server: stops admitting, waits for queued and
    /// executing queries to finish, then stops the accept loop. Returns
    /// how many queries were still queued or executing when the drain
    /// began. Idempotent.
    pub fn shutdown(&self) -> u64 {
        drain(&self.shared)
    }

    /// Waits for the accept loop and the worker pool to exit (they do
    /// after a drain).
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        drain(&self.shared);
        self.join_inner();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let id = shared.connections.fetch_add(1, Ordering::SeqCst) + 1;
        {
            let mut span = shared.obs.span(kind::SERVER, "accept");
            span.record_u64(attr::QUEUE_DEPTH, shared.queue_depth.load(Ordering::SeqCst));
            span.record_u64(attr::IN_FLIGHT, shared.in_flight.load(Ordering::SeqCst));
        }
        let shared = shared.clone();
        // Per-connection panic containment: a handler bug takes down its
        // own thread, never the listener or the pool.
        let _ = std::thread::Builder::new()
            .name(format!("yat-conn-{id}"))
            .spawn(move || {
                if catch_unwind(AssertUnwindSafe(|| serve_connection(&shared, stream))).is_err() {
                    shared.errors.fetch_add(1, Ordering::SeqCst);
                }
            });
    }
}

/// Reads frames off one client connection until it closes (or the
/// framing breaks beyond recovery).
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let Ok(mut reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    loop {
        let el = match framing::read_element(&mut reader) {
            Ok(Some(el)) => el,
            Ok(None) => return, // client hung up between frames
            Err(e @ WireError::Malformed(_)) => {
                // the frame was consumed whole — the stream is still
                // aligned, so answer the error and keep the connection
                shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
                let message = e.to_string();
                if respond(shared, &mut writer, &ServerReply::Error { message }).is_err() {
                    return;
                }
                continue;
            }
            Err(e) => {
                // truncated/oversized frame or socket failure: the frame
                // boundary is lost, so answer if possible and hang up
                shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
                let message = e.to_string();
                let _ = respond(shared, &mut writer, &ServerReply::Error { message });
                return;
            }
        };
        let request = match ClientRequest::from_xml(&el) {
            Ok(request) => request,
            Err(e) => {
                shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
                let message = e.to_string();
                if respond(shared, &mut writer, &ServerReply::Error { message }).is_err() {
                    return;
                }
                continue;
            }
        };
        match request {
            ClientRequest::Stats => {
                let reply = ServerReply::Stats(build_stats(shared));
                if respond(shared, &mut writer, &reply).is_err() {
                    return;
                }
            }
            ClientRequest::Shutdown => {
                let drained = drain_backlog(shared);
                // Bye goes out before the accept loop is released: a
                // process embedding the server may exit the moment
                // `join` returns, and the reply must already be on the
                // wire by then.
                let _ = respond(shared, &mut writer, &ServerReply::Bye { drained });
                stop_accepting(shared);
                return;
            }
            work => {
                if serve_work(shared, &mut writer, work).is_err() {
                    return;
                }
            }
        }
    }
}

/// Admits one `Query`/`Explain`, waits for its answer, writes it back —
/// all under a `serve <kind>` span so queue wait, execution (stitched
/// from the worker thread) and the response write line up as children.
fn serve_work(
    shared: &Shared,
    writer: &mut TcpStream,
    request: ClientRequest,
) -> Result<(), WireError> {
    let mut span = shared
        .obs
        .span(kind::SERVER, format!("serve {}", request.kind()));
    let depth = shared.queue_depth.load(Ordering::SeqCst);
    span.record_u64(attr::QUEUE_DEPTH, depth);
    span.record_u64(attr::IN_FLIGHT, shared.in_flight.load(Ordering::SeqCst));
    match admit(shared, request, span.id(), depth) {
        Admitted::Reply(reply) => {
            if let ServerReply::Error { message } = &reply {
                span.record_str(attr::ERROR, message.clone());
            }
            respond(shared, writer, &reply)
        }
        Admitted::Stream { events, done } => stream_reply(shared, writer, events, done),
    }
}

/// The admission decision for one query.
fn admit(shared: &Shared, request: ClientRequest, parent_span: usize, depth: u64) -> Admitted {
    if shared.draining.load(Ordering::SeqCst) {
        shared.errors.fetch_add(1, Ordering::SeqCst);
        return Admitted::Reply(ServerReply::Error {
            message: "server is draining; no new queries admitted".into(),
        });
    }
    let deadline = match &request {
        ClientRequest::Query { deadline_ms, .. } => deadline_ms
            .map(Duration::from_millis)
            .or(shared.config.default_deadline),
        _ => shared.config.default_deadline,
    };
    let (started_tx, started_rx) = sync_channel::<()>(1);
    let (reply_tx, reply_rx) = sync_channel::<ServerReply>(1);
    // a negotiated stream gets its frame channel here, bounded by the
    // stream policy's pending budget
    let streamed = matches!(&request, ClientRequest::Query { stream: true, .. });
    let (stream_job, stream_admitted) = if streamed {
        let max_pending = match shared.mediator.stream_policy() {
            StreamPolicy::Chunked { max_pending, .. } => max_pending,
            StreamPolicy::Off => StreamPolicy::DEFAULT_MAX_PENDING,
        };
        let (events_tx, events_rx) = sync_channel::<StreamEvent>(max_pending.max(1));
        let (done_tx, done_rx) = sync_channel::<()>(1);
        (
            Some(StreamJob {
                events: events_tx,
                done: done_rx,
            }),
            Some((events_rx, done_tx)),
        )
    } else {
        (None, None)
    };
    let job = Job {
        request,
        admitted_at: Instant::now(),
        deadline,
        parent_span,
        started: started_tx,
        reply: reply_tx,
        stream: stream_job,
    };
    let sender = shared
        .sender
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let Some(sender) = sender else {
        shared.errors.fetch_add(1, Ordering::SeqCst);
        return Admitted::Reply(ServerReply::Error {
            message: "server is draining; no new queries admitted".into(),
        });
    };
    match sender.try_send(job) {
        Ok(()) => {
            shared.admitted.fetch_add(1, Ordering::SeqCst);
            shared.queue_depth.fetch_add(1, Ordering::SeqCst);
            {
                let mut wait = shared.obs.span(kind::SERVER, "queue-wait");
                wait.record_u64(attr::QUEUE_DEPTH, depth);
                // returns when the worker signals pickup (or dies with
                // the job, which also closes the channel)
                let _ = started_rx.recv();
            }
            if let Some((events, done)) = stream_admitted {
                return Admitted::Stream { events, done };
            }
            match reply_rx.recv() {
                Ok(reply) => Admitted::Reply(reply),
                Err(_) => {
                    shared.errors.fetch_add(1, Ordering::SeqCst);
                    Admitted::Reply(ServerReply::Error {
                        message: "query was dropped mid-execution (worker died)".into(),
                    })
                }
            }
        }
        Err(TrySendError::Full(_)) => {
            // load shedding: the queue is saturated, so refuse at the
            // door with a hint instead of queueing unboundedly
            shared.shed.fetch_add(1, Ordering::SeqCst);
            Admitted::Reply(ServerReply::Overloaded {
                retry_after_ms: shared.config.retry_after_ms,
            })
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            Admitted::Reply(ServerReply::Error {
                message: "server is draining; no new queries admitted".into(),
            })
        }
    }
}

/// Writes a streamed reply: chunk frames as the worker produces them,
/// then the terminal frame, then the done-ack that lets the worker
/// retire the query. Returning early on a write failure drops both
/// channel ends, which the worker observes as a refused sink (stops
/// producing) and an instant done-ack (retires the query).
fn stream_reply(
    shared: &Shared,
    writer: &mut TcpStream,
    events: Receiver<StreamEvent>,
    done: SyncSender<()>,
) -> Result<(), WireError> {
    let mut span = shared.obs.span(kind::SERVER, "respond stream");
    let mut chunks = 0u64;
    let mut bytes = 0u64;
    loop {
        match events.recv() {
            Ok(StreamEvent::Reply(reply)) => {
                // single-frame fallback: nothing was streamed
                if let ServerReply::Error { message } = &reply {
                    span.record_str(attr::ERROR, message.clone());
                }
                let result = respond(shared, writer, &reply);
                let _ = done.send(());
                return result;
            }
            Ok(StreamEvent::Chunk(frame)) => {
                chunks += 1;
                bytes += frame.len() as u64;
                if let Err(e) = framing::write_frame(writer, &frame) {
                    span.record_str(attr::ERROR, e.to_string());
                    return Err(e);
                }
            }
            Ok(StreamEvent::End(frame)) => {
                bytes += frame.len() as u64;
                span.record_u64(attr::CHUNKS, chunks);
                span.record_u64(attr::BYTES_SENT, bytes);
                let result = framing::write_frame(writer, &frame);
                if let Err(e) = &result {
                    span.record_str(attr::ERROR, e.to_string());
                }
                // the ack after the final write is the drain guarantee:
                // the worker holds the query in flight until its stream
                // is fully on the wire
                let _ = done.send(());
                return result;
            }
            Err(_) => {
                shared.errors.fetch_add(1, Ordering::SeqCst);
                let reply = ServerReply::Error {
                    message: "query was dropped mid-execution (worker died)".into(),
                };
                span.record_str(attr::ERROR, "query was dropped mid-execution (worker died)");
                return respond(shared, writer, &reply);
            }
        }
    }
}

/// Writes one reply frame under a `respond` span.
fn respond(shared: &Shared, writer: &mut TcpStream, reply: &ServerReply) -> Result<(), WireError> {
    let mut span = shared.obs.span(kind::SERVER, "respond");
    let text = reply.to_xml().to_xml();
    span.record_u64(attr::BYTES_SENT, text.len() as u64);
    let result = framing::write_frame(writer, &text);
    if let Err(e) = &result {
        span.record_str(attr::ERROR, e.to_string());
    }
    result
}

fn worker_loop(index: usize, shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        // Err means the sender was taken by `drain` and the backlog is
        // empty: the pool winds down.
        let Ok(job) = job else { break };
        // in_flight rises before queue_depth falls so the drain loop
        // never observes both zero while a job is in hand
        let in_flight = shared.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        drop(job.started); // ends the client's queue-wait span
        let waited = job.admitted_at.elapsed();
        let expired = job.deadline.is_some_and(|d| waited > d);

        if let Some(stream) = &job.stream {
            let served = if expired {
                let _ = stream
                    .events
                    .send(StreamEvent::Reply(deadline_error(waited, job.deadline)));
                false
            } else {
                serve_streamed(
                    shared,
                    index,
                    in_flight,
                    &job.request,
                    job.parent_span,
                    stream,
                )
            };
            // the done-ack is the drain guarantee: the query stays in
            // flight until its stream is fully written (or the
            // connection thread is gone, which closes the channel)
            let _ = stream.done.recv();
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            if served {
                shared.served.fetch_add(1, Ordering::SeqCst);
            } else {
                shared.errors.fetch_add(1, Ordering::SeqCst);
            }
            continue;
        }

        let reply = if expired {
            // refused before execution: the client's budget is already
            // spent, running the plan would serve nobody
            deadline_error(waited, job.deadline)
        } else {
            let mut span = shared
                .obs
                .span_under(Some(job.parent_span), kind::SERVER, "execute");
            span.record_u64(attr::WORKER, index as u64);
            span.record_u64(attr::IN_FLIGHT, in_flight);
            match catch_unwind(AssertUnwindSafe(|| {
                execute(shared, &job.request, waited, index)
            })) {
                Ok(reply) => reply,
                Err(payload) => {
                    // panic containment: the worker survives to take the
                    // next job, the client learns what happened
                    let msg = panic_message(payload);
                    span.record_str(attr::ERROR, msg.clone());
                    ServerReply::Error {
                        message: format!("query panicked on worker {index}: {msg}"),
                    }
                }
            }
        };
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        match &reply {
            ServerReply::Answer { .. } | ServerReply::Explained { .. } => {
                shared.served.fetch_add(1, Ordering::SeqCst);
            }
            _ => {
                shared.errors.fetch_add(1, Ordering::SeqCst);
            }
        }
        let _ = job.reply.send(reply);
    }
}

/// The refusal for a query whose deadline expired in the queue.
fn deadline_error(waited: Duration, allowed: Option<Duration>) -> ServerReply {
    ServerReply::Error {
        message: format!(
            "deadline expired in the admission queue (waited {}, allowed {})",
            yat_obs::profile::fmt_duration(waited),
            yat_obs::profile::fmt_duration(allowed.unwrap_or_default()),
        ),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".into())
}

/// Executes one streamed query on a worker: the mediator's delivery
/// loop pushes each batch through [`WireSink`] as an `answer-chunk`
/// frame, and the terminal event is decided here — `answer-end` on
/// success, a plain error reply when nothing was streamed yet (so
/// pre-stream failures look exactly like materialized ones), or
/// `stream-abort` after the first chunk (delivered frames cannot be
/// recalled, so the failure must be typed in-band). Returns whether the
/// query counts as served.
fn serve_streamed(
    shared: &Shared,
    index: usize,
    in_flight: u64,
    request: &ClientRequest,
    parent_span: usize,
    stream: &StreamJob,
) -> bool {
    let ClientRequest::Query { text, .. } = request else {
        let _ = stream.events.send(StreamEvent::Reply(ServerReply::Error {
            message: format!("verb `{}` is not streamable work", request.kind()),
        }));
        return false;
    };
    let mut span = shared
        .obs
        .span_under(Some(parent_span), kind::SERVER, "execute");
    span.record_u64(attr::WORKER, index as u64);
    span.record_u64(attr::IN_FLIGHT, in_flight);
    let chunks_sent = AtomicU64::new(0);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut sink = WireSink {
            events: &stream.events,
            chunks: &chunks_sent,
        };
        shared
            .mediator
            .query_stream_federated(text, OptimizerOptions::default(), &mut sink)
    }));
    let chunks = chunks_sent.load(Ordering::SeqCst);
    span.record_u64(attr::CHUNKS, chunks);
    let (event, served) = match outcome {
        Ok(Ok((stats, prov))) => {
            let (answered_by, missing) = wire_prov(&prov);
            (
                StreamEvent::End(
                    StreamFrame::End {
                        chunks: stats.chunks,
                        rows: stats.rows,
                        answered_by,
                        missing,
                    }
                    .to_xml()
                    .to_xml(),
                ),
                true,
            )
        }
        Ok(Err(e)) => {
            let message = e.to_string();
            span.record_str(attr::ERROR, message.clone());
            (stream_failure(chunks, message), false)
        }
        Err(payload) => {
            let msg = panic_message(payload);
            span.record_str(attr::ERROR, msg.clone());
            let message = format!("query panicked on worker {index}: {msg}");
            (stream_failure(chunks, message), false)
        }
    };
    drop(span);
    let _ = stream.events.send(event);
    served
}

/// How a streamed query fails depends on whether frames already went
/// out: before the first chunk the failure is an ordinary error reply;
/// after it, a typed `stream-abort` terminal frame.
fn stream_failure(chunks_sent: u64, message: String) -> StreamEvent {
    if chunks_sent == 0 {
        StreamEvent::Reply(ServerReply::Error { message })
    } else {
        StreamEvent::End(StreamFrame::Abort { message }.to_xml().to_xml())
    }
}

/// The wire-side [`BatchSink`]: each batch becomes one pre-serialized
/// `answer-chunk` frame pushed through the job's bounded event channel.
/// A full channel blocks the producer (backpressure); a closed one (the
/// client hung up, a write failed) surfaces as a sink refusal that stops
/// the mediator's delivery loop instead of evaluating unwatched batches.
struct WireSink<'a> {
    events: &'a SyncSender<StreamEvent>,
    chunks: &'a AtomicU64,
}

impl WireSink<'_> {
    fn push(&mut self, payload: EvalOut) -> Result<(), EvalError> {
        let seq = self.chunks.load(Ordering::SeqCst);
        let frame = StreamFrame::Chunk { seq, payload }.to_xml().to_xml();
        self.events
            .send(StreamEvent::Chunk(frame))
            .map_err(|_| EvalError::Sink("client connection closed mid-stream".into()))?;
        self.chunks.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

impl BatchSink for WireSink<'_> {
    fn on_columns(&mut self, _columns: &[String]) -> Result<(), EvalError> {
        // every chunk repeats the layout inside its <tab> body
        Ok(())
    }

    fn on_batch(&mut self, batch: Tab) -> Result<(), EvalError> {
        self.push(EvalOut::Tab(batch))
    }

    fn on_tree(&mut self, tree: &Tree) -> Result<(), EvalError> {
        self.push(EvalOut::Tree(tree.clone()))
    }
}

/// Runs one admitted request against the shared mediator.
fn execute(
    shared: &Shared,
    request: &ClientRequest,
    waited: Duration,
    worker: usize,
) -> ServerReply {
    match request {
        ClientRequest::Query { text, .. } => {
            match shared
                .mediator
                .query_federated(text, OptimizerOptions::default())
            {
                Ok((out, prov)) => {
                    let (answered_by, missing) = wire_prov(&prov);
                    ServerReply::Answer {
                        out,
                        answered_by,
                        missing,
                    }
                }
                Err(e) => ServerReply::Error {
                    message: e.to_string(),
                },
            }
        }
        ClientRequest::Explain { text } => {
            match shared
                .mediator
                .explain_query(text, OptimizerOptions::default())
            {
                Ok(explain) => {
                    let mut text = explain.render();
                    if !text.ends_with('\n') {
                        text.push('\n');
                    }
                    // the server-side view EXPLAIN ANALYZE cannot see
                    // from inside the executor: what happened between
                    // the socket and the worker
                    text.push_str(&format!(
                        "serving\n  worker {worker}; queue wait {}; gauges at dispatch: {} waiting, {} executing\n",
                        yat_obs::profile::fmt_duration(waited),
                        shared.queue_depth.load(Ordering::SeqCst),
                        shared.in_flight.load(Ordering::SeqCst),
                    ));
                    ServerReply::Explained { text }
                }
                Err(e) => ServerReply::Error {
                    message: e.to_string(),
                },
            }
        }
        // Stats/Shutdown are handled on the connection thread and never
        // reach the queue; answering defensively beats panicking.
        other => ServerReply::Error {
            message: format!("verb `{}` is not executable work", other.kind()),
        },
    }
}

/// Renders an answer's provenance as wire attributes: `None`/`None` for
/// a complete answer (the frame stays byte-identical to the pre-
/// federation wire), both attributes when sources were skipped under
/// `PartialFailure::Degrade`.
fn wire_prov(prov: &yat_mediator::Provenance) -> (Option<String>, Option<String>) {
    if prov.is_degraded() {
        (Some(prov.answered_by_attr()), Some(prov.missing_attr()))
    } else {
        (None, None)
    }
}

fn build_stats(shared: &Shared) -> ServerStats {
    let cache = shared.mediator.cache_stats();
    let registry = shared.mediator.registry();
    let sources = shared
        .mediator
        .interfaces()
        .keys()
        .filter_map(|name| {
            shared.mediator.connection(name).map(|conn| {
                let member = registry.member(name);
                let cost = member.map(|m| m.cost.snapshot());
                SourceGauge {
                    name: name.clone(),
                    round_trips: conn.meter().snapshot().round_trips,
                    in_flight: conn.in_flight(),
                    group: member.map(|m| m.group.clone()),
                    ewma_latency_us: cost.as_ref().map_or(0, |c| c.ewma_latency_us as u64),
                    errors: cost.as_ref().map_or(0, |c| c.errors),
                }
            })
        })
        .collect();
    ServerStats {
        workers: shared.config.workers as u64,
        queue_capacity: shared.config.queue_capacity as u64,
        queue_depth: shared.queue_depth.load(Ordering::SeqCst),
        in_flight: shared.in_flight.load(Ordering::SeqCst),
        connections: shared.connections.load(Ordering::SeqCst),
        admitted: shared.admitted.load(Ordering::SeqCst),
        served: shared.served.load(Ordering::SeqCst),
        shed: shared.shed.load(Ordering::SeqCst),
        errors: shared.errors.load(Ordering::SeqCst),
        protocol_errors: shared.protocol_errors.load(Ordering::SeqCst),
        draining: shared.draining.load(Ordering::SeqCst),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        sources,
    }
}

/// The graceful drain: see the module docs. Returns the number of
/// queries that were queued or executing when the drain began.
fn drain(shared: &Shared) -> u64 {
    let drained = drain_backlog(shared);
    stop_accepting(shared);
    drained
}

/// Stops admission and waits for queued and executing queries to
/// finish; returns how many there were when the drain began.
fn drain_backlog(shared: &Shared) -> u64 {
    shared.draining.store(true, Ordering::SeqCst);
    let drained =
        shared.queue_depth.load(Ordering::SeqCst) + shared.in_flight.load(Ordering::SeqCst);
    // dropping the sender lets workers finish the backlog and then exit
    drop(
        shared
            .sender
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take(),
    );
    while shared.queue_depth.load(Ordering::SeqCst) > 0
        || shared.in_flight.load(Ordering::SeqCst) > 0
    {
        std::thread::sleep(Duration::from_millis(1));
    }
    drained
}

/// Releases the accept loop so `join` can return.
fn stop_accepting(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    // the accept loop is blocked in `incoming()`; one throwaway
    // connection wakes it to observe `stop`
    let _ = TcpStream::connect(shared.addr);
}
