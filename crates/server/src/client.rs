//! A blocking wire-protocol client for `yat-server`.

use std::io::Read;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use yat_algebra::EvalOut;
use yat_capability::framing;
use yat_capability::protocol::{ClientRequest, ServerReply, ServerStats, StreamFrame};
use yat_capability::xml::WireError;
use yat_model::Node;

/// One client connection. Requests are answered in order on the same
/// stream; a connection can carry any number of them.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, WireError> {
        TcpStream::connect(addr)
            .map(|stream| Client { stream })
            .map_err(|e| WireError::Io(format!("connect failed: {e}")))
    }

    /// Connects, retrying for up to `patience` — for racing a server
    /// that is still binding its port (the CI smoke test, `yat-load`
    /// against a just-spawned `yat-server`).
    ///
    /// Retries back off exponentially with seeded jitter (see
    /// [`backoff_delay`]) so a fleet of clients racing the same
    /// just-spawned server doesn't hammer the listen queue in lockstep.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        patience: Duration,
    ) -> Result<Client, WireError> {
        let start = Instant::now();
        // Seed from the thread id so concurrent clients jitter
        // differently, yet a replay on the same thread layout is
        // deterministic.
        let seed = {
            use std::hash::{Hash, Hasher};
            let mut h = std::hash::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish()
        };
        let mut rng = yat_prng::Rng::seed_from_u64(seed);
        let mut attempt = 0u32;
        loop {
            match TcpStream::connect(addr.clone()) {
                Ok(stream) => return Ok(Client { stream }),
                Err(e) if start.elapsed() >= patience => {
                    return Err(WireError::Io(format!(
                        "connect failed after {patience:?}: {e}"
                    )))
                }
                Err(_) => {
                    let delay = backoff_delay(attempt, rng.gen_f64());
                    attempt = attempt.saturating_add(1);
                    // Never sleep past the patience window.
                    let left = patience.saturating_sub(start.elapsed());
                    std::thread::sleep(delay.min(left));
                }
            }
        }
    }

    /// Sends one request and reads its reply.
    pub fn roundtrip(&mut self, request: &ClientRequest) -> Result<ServerReply, WireError> {
        framing::write_element(&mut self.stream, &request.to_xml())?;
        match framing::read_element(&mut self.stream)? {
            Some(el) => ServerReply::from_xml(&el),
            None => Err(WireError::Io(
                "server closed the connection before replying".into(),
            )),
        }
    }

    /// Runs a YATL query, returning whatever the server replied
    /// (`Answer`, `Overloaded`, `Error`, …).
    pub fn query(&mut self, text: impl Into<String>) -> Result<ServerReply, WireError> {
        self.roundtrip(&ClientRequest::Query {
            text: text.into(),
            deadline_ms: None,
            stream: false,
        })
    }

    /// [`Client::query`] with a per-request deadline: the server refuses
    /// to start executing once `deadline_ms` has passed since admission.
    pub fn query_with_deadline(
        &mut self,
        text: impl Into<String>,
        deadline_ms: u64,
    ) -> Result<ServerReply, WireError> {
        self.roundtrip(&ClientRequest::Query {
            text: text.into(),
            deadline_ms: Some(deadline_ms),
            stream: false,
        })
    }

    /// Runs a YATL query with `stream="chunked"` negotiated: the answer
    /// arrives as `answer-chunk` frames and is reassembled here —
    /// byte-identical to what [`Client::query`] would have returned in
    /// one frame. A server that does not stream (or a pre-stream
    /// failure) answers with a single frame, which is returned as-is
    /// with `chunks == 0`.
    pub fn query_streamed(&mut self, text: impl Into<String>) -> Result<StreamedReply, WireError> {
        self.stream_roundtrip(text.into(), None)
    }

    /// [`Client::query_streamed`] with a per-request deadline.
    pub fn query_streamed_with_deadline(
        &mut self,
        text: impl Into<String>,
        deadline_ms: u64,
    ) -> Result<StreamedReply, WireError> {
        self.stream_roundtrip(text.into(), Some(deadline_ms))
    }

    fn stream_roundtrip(
        &mut self,
        text: String,
        deadline_ms: Option<u64>,
    ) -> Result<StreamedReply, WireError> {
        let request = ClientRequest::Query {
            text,
            deadline_ms,
            stream: true,
        };
        framing::write_element(&mut self.stream, &request.to_xml())?;
        read_streamed_reply(&mut self.stream)
    }

    /// Runs a query as `EXPLAIN ANALYZE`, returning the rendered report
    /// (server-side timings appended).
    pub fn explain(&mut self, text: impl Into<String>) -> Result<ServerReply, WireError> {
        self.roundtrip(&ClientRequest::Explain { text: text.into() })
    }

    /// Fetches the server's gauges and counters.
    pub fn stats(&mut self) -> Result<ServerStats, WireError> {
        match self.roundtrip(&ClientRequest::Stats)? {
            ServerReply::Stats(stats) => Ok(stats),
            other => Err(WireError::Remote(format!(
                "expected server-stats, got <{}>",
                other.kind()
            ))),
        }
    }

    /// Asks the server to drain and exit; returns how many queries were
    /// still in flight when the drain began.
    pub fn shutdown(&mut self) -> Result<u64, WireError> {
        match self.roundtrip(&ClientRequest::Shutdown)? {
            ServerReply::Bye { drained } => Ok(drained),
            other => Err(WireError::Remote(format!(
                "expected bye, got <{}>",
                other.kind()
            ))),
        }
    }
}

/// The delay before retry number `attempt` (0-based) of
/// [`Client::connect_retry`]: exponential from a 5 ms base, doubling per
/// attempt, capped at 200 ms, with ±50 % uniform jitter drawn from
/// `unit` (a value in `[0, 1)`).
///
/// Pure so the schedule is testable without sleeping: the curve is
/// `base * 2^attempt`, and jitter scales the capped value into
/// `[0.5x, 1.5x)`.
pub fn backoff_delay(attempt: u32, unit: f64) -> Duration {
    const BASE_MS: f64 = 5.0;
    const CAP_MS: f64 = 200.0;
    let exp = BASE_MS * f64::powi(2.0, attempt.min(16) as i32);
    let capped = exp.min(CAP_MS);
    let jittered = capped * (0.5 + unit.clamp(0.0, 1.0));
    Duration::from_micros((jittered * 1000.0) as u64)
}

/// A streamed reply, reassembled client-side.
#[derive(Debug)]
pub struct StreamedReply {
    /// The reassembled reply: `Answer` when the stream completed, or
    /// whatever single frame the server fell back to (`Error`,
    /// `Overloaded`, …).
    pub reply: ServerReply,
    /// `answer-chunk` frames received (`0` for a single-frame reply).
    pub chunks: u64,
    /// Time from calling into the read to the first reply frame — the
    /// time-to-first-row a streaming consumer experiences.
    pub ttfr: Duration,
}

/// Reads one streamed reply off `reader` and reassembles it, enforcing
/// the stream invariants: chunk sequence numbers must be gapless and in
/// order, all chunks of one stream must share a shape (one column
/// layout, or one tree root whose chunks concatenate their top-level
/// subtrees), and the `answer-end` frame's declared
/// chunk and row counts must equal what actually arrived. Every
/// violation — including the connection closing mid-stream — is a typed
/// [`WireError`]; a short stream can never silently read as a short
/// answer.
///
/// A first frame that is not a stream frame is parsed as an ordinary
/// [`ServerReply`] and returned with `chunks == 0` (the single-frame
/// fallback path: errors, overload shedding, servers that predate
/// streaming).
///
/// Generic over [`Read`] so the frame-corruption tests can drive it
/// from in-memory byte streams.
pub fn read_streamed_reply(reader: &mut impl Read) -> Result<StreamedReply, WireError> {
    let start = Instant::now();
    let first = framing::read_element(reader)?
        .ok_or_else(|| WireError::Io("server closed the connection before replying".into()))?;
    let ttfr = start.elapsed();
    let mut frame = match StreamFrame::from_xml(&first) {
        Ok(frame) => frame,
        Err(WireError::UnknownVerb(_)) => {
            return Ok(StreamedReply {
                reply: ServerReply::from_xml(&first)?,
                chunks: 0,
                ttfr,
            })
        }
        Err(e) => return Err(e),
    };
    let mut answer: Option<EvalOut> = None;
    let mut chunks = 0u64;
    loop {
        match frame {
            StreamFrame::Chunk { seq, payload } => {
                if seq != chunks {
                    return Err(WireError::Stream(format!(
                        "answer-chunk seq {seq} arrived where {chunks} was expected"
                    )));
                }
                match (&mut answer, payload) {
                    (None, payload) => answer = Some(payload),
                    (Some(EvalOut::Tab(acc)), EvalOut::Tab(batch)) => {
                        if batch.columns() != acc.columns() {
                            return Err(WireError::Stream(format!(
                                "chunk columns {:?} differ from the stream's layout {:?}",
                                batch.columns(),
                                acc.columns()
                            )));
                        }
                        for row in batch.into_rows() {
                            acc.push(row);
                        }
                    }
                    (Some(EvalOut::Tree(acc)), EvalOut::Tree(chunk)) => {
                        if acc.label != chunk.label {
                            return Err(WireError::Stream(format!(
                                "tree chunk root `{}` differs from the stream's root `{}`",
                                chunk.label, acc.label
                            )));
                        }
                        let mut children = acc.children.clone();
                        children.extend(chunk.children.iter().cloned());
                        *acc = Node::labeled(acc.label.clone(), children);
                    }
                    (Some(_), _) => {
                        return Err(WireError::Stream(
                            "stream mixes tree and table chunks".into(),
                        ))
                    }
                }
                chunks += 1;
            }
            StreamFrame::End {
                chunks: declared,
                rows,
                answered_by,
                missing,
            } => {
                if declared != chunks {
                    return Err(WireError::Stream(format!(
                        "answer-end declares {declared} chunks but {chunks} arrived"
                    )));
                }
                let out = answer.ok_or_else(|| {
                    WireError::Stream("answer-end arrived before any answer-chunk".into())
                })?;
                let got_rows = match &out {
                    EvalOut::Tab(t) => t.len() as u64,
                    EvalOut::Tree(t) => t.children.len() as u64,
                };
                if rows != got_rows {
                    return Err(WireError::Stream(format!(
                        "answer-end declares {rows} rows but {got_rows} arrived"
                    )));
                }
                return Ok(StreamedReply {
                    reply: ServerReply::Answer {
                        out,
                        answered_by,
                        missing,
                    },
                    chunks,
                    ttfr,
                });
            }
            StreamFrame::Abort { message } => {
                return Err(WireError::Stream(format!(
                    "server aborted the stream after {chunks} chunks: {message}"
                )))
            }
        }
        let el = framing::read_element(reader)?.ok_or_else(|| {
            WireError::Stream(format!(
                "connection closed mid-stream after {chunks} chunks, before answer-end"
            ))
        })?;
        frame = StreamFrame::from_xml(&el).map_err(|e| match e {
            WireError::UnknownVerb(v) => {
                WireError::Stream(format!("unexpected <{v}> frame mid-stream"))
            }
            other => other,
        })?;
    }
}
