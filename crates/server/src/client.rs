//! A blocking wire-protocol client for `yat-server`.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use yat_capability::framing;
use yat_capability::protocol::{ClientRequest, ServerReply, ServerStats};
use yat_capability::xml::WireError;

/// One client connection. Requests are answered in order on the same
/// stream; a connection can carry any number of them.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, WireError> {
        TcpStream::connect(addr)
            .map(|stream| Client { stream })
            .map_err(|e| WireError::Io(format!("connect failed: {e}")))
    }

    /// Connects, retrying for up to `patience` — for racing a server
    /// that is still binding its port (the CI smoke test, `yat-load`
    /// against a just-spawned `yat-server`).
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        patience: Duration,
    ) -> Result<Client, WireError> {
        let start = Instant::now();
        loop {
            match TcpStream::connect(addr.clone()) {
                Ok(stream) => return Ok(Client { stream }),
                Err(e) if start.elapsed() >= patience => {
                    return Err(WireError::Io(format!(
                        "connect failed after {patience:?}: {e}"
                    )))
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Sends one request and reads its reply.
    pub fn roundtrip(&mut self, request: &ClientRequest) -> Result<ServerReply, WireError> {
        framing::write_element(&mut self.stream, &request.to_xml())?;
        match framing::read_element(&mut self.stream)? {
            Some(el) => ServerReply::from_xml(&el),
            None => Err(WireError::Io(
                "server closed the connection before replying".into(),
            )),
        }
    }

    /// Runs a YATL query, returning whatever the server replied
    /// (`Answer`, `Overloaded`, `Error`, …).
    pub fn query(&mut self, text: impl Into<String>) -> Result<ServerReply, WireError> {
        self.roundtrip(&ClientRequest::Query {
            text: text.into(),
            deadline_ms: None,
        })
    }

    /// [`Client::query`] with a per-request deadline: the server refuses
    /// to start executing once `deadline_ms` has passed since admission.
    pub fn query_with_deadline(
        &mut self,
        text: impl Into<String>,
        deadline_ms: u64,
    ) -> Result<ServerReply, WireError> {
        self.roundtrip(&ClientRequest::Query {
            text: text.into(),
            deadline_ms: Some(deadline_ms),
        })
    }

    /// Runs a query as `EXPLAIN ANALYZE`, returning the rendered report
    /// (server-side timings appended).
    pub fn explain(&mut self, text: impl Into<String>) -> Result<ServerReply, WireError> {
        self.roundtrip(&ClientRequest::Explain { text: text.into() })
    }

    /// Fetches the server's gauges and counters.
    pub fn stats(&mut self) -> Result<ServerStats, WireError> {
        match self.roundtrip(&ClientRequest::Stats)? {
            ServerReply::Stats(stats) => Ok(stats),
            other => Err(WireError::Remote(format!(
                "expected server-stats, got <{}>",
                other.kind()
            ))),
        }
    }

    /// Asks the server to drain and exit; returns how many queries were
    /// still in flight when the drain began.
    pub fn shutdown(&mut self) -> Result<u64, WireError> {
        match self.roundtrip(&ClientRequest::Shutdown)? {
            ServerReply::Bye { drained } => Ok(drained),
            other => Err(WireError::Remote(format!(
                "expected bye, got <{}>",
                other.kind()
            ))),
        }
    }
}
