//! # yat-server — the mediator as a concurrent service
//!
//! The paper runs `yat-mediator -port 6666` as a long-lived process that
//! clients connect to (the Fig. 2 session transcript). This crate is
//! that process: a TCP front end speaking the length-framed wire XML of
//! [`yat_capability::framing`], a bounded admission queue, and a pool of
//! worker threads executing queries against one shared
//! [`yat_mediator::Mediator`] — so concurrent sessions share the answer
//! cache, the per-source wrapper connections, and the imported
//! capability interfaces.
//!
//! * [`Server`] / [`ServerConfig`] / [`ServerHandle`] — the service
//!   itself: accept loop, per-connection reader threads, the admission
//!   queue with load shedding (`Overloaded` + retry-after when the queue
//!   is full), per-request deadlines, panic containment, and graceful
//!   drain on shutdown.
//! * [`Client`] — a blocking client for the wire protocol
//!   ([`yat_capability::protocol::ClientRequest`] /
//!   [`yat_capability::protocol::ServerReply`]).
//! * [`load`] — a closed/open-loop load generator with latency
//!   percentiles, used by the `yat-load` binary and the `fig_serve`
//!   bench.
//!
//! The serving layer is federation-agnostic: it takes whatever
//! `Mediator` you hand it. Wiring up the paper's cultural-goods sources
//! lives in `yat-bench` (`workload::Scenario`), which also ships the
//! `yat-server` / `yat-load` binaries.

mod client;
pub mod load;
mod server;

pub use client::{backoff_delay, read_streamed_reply, Client, StreamedReply};
pub use load::{LoadMode, LoadReport, LoadSpec};
pub use server::{Server, ServerConfig, ServerHandle};

#[cfg(test)]
mod tests;
