//! End-to-end tests: a real `yat-server` on a loopback socket, real
//! clients, the paper's cultural-goods federation behind it.

use crate::client::read_streamed_reply;
use crate::load::{LoadMode, LoadSpec};
use crate::{load, Client, Server, ServerConfig};
use std::collections::HashMap;
use std::io::Cursor;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use yat_algebra::{CollectSink, EvalOut, Tab, Value};
use yat_capability::framing;
use yat_capability::protocol::{ClientRequest, ServerReply, StreamFrame};
use yat_capability::xml::WireError;
use yat_mediator::{ExecMode, Latency, Mediator, OptimizerOptions, StreamPolicy};
use yat_model::Node;
use yat_obs::{attr, kind};
use yat_oql::art::{art_store, ArtSpec};
use yat_oql::O2Wrapper;
use yat_prng::Rng;
use yat_wais::{generate_works, WaisSource, WaisWrapper, WorksSpec};
use yat_yatl::paper;

/// The Fig. 2 federation at a small scale: O2 artifacts + Wais works +
/// view1, the same construction `yat-bench`'s `workload::Scenario` uses.
fn federation(scale: usize) -> Mediator {
    let mut m = Mediator::new();
    m.connect(Box::new(O2Wrapper::new(
        "o2artifact",
        art_store(&ArtSpec {
            artifacts: scale,
            persons: (scale / 5).max(2),
            seed: 42,
        }),
    )))
    .expect("fresh mediator accepts the O2 wrapper");
    m.connect(Box::new(WaisWrapper::new(
        "xmlartwork",
        WaisSource::new(
            "works",
            &generate_works(&WorksSpec {
                works: scale,
                impressionist_pct: 30,
                optional_pct: 60,
                giverny_pct: 30,
                seed: 42,
            }),
        ),
    )))
    .expect("fresh mediator accepts the Wais wrapper");
    m.load_program(paper::VIEW1).expect("view1 is well-formed");
    m
}

/// Serialized reply bytes for an in-process answer — the byte-identity
/// yardstick the wire must match.
fn expected_answer(mediator: &Mediator, query: &str) -> String {
    let out = mediator
        .query(query, OptimizerOptions::default())
        .expect("paper query answers in-process");
    ServerReply::answer(out).to_xml().to_xml()
}

#[test]
fn socket_answers_are_byte_identical_to_in_process_answers() {
    let reference = federation(12);
    let handle = Server::spawn(federation(12), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    for query in [paper::Q1, paper::Q2] {
        let reply = client.query(query).expect("query round-trips");
        assert_eq!(
            reply.to_xml().to_xml(),
            expected_answer(&reference, query),
            "wire answer must be byte-identical to the in-process answer"
        );
    }
    let stats = handle.stats();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn eight_clients_two_hundred_seeded_queries_all_verified() {
    let reference = federation(8);
    let mut expected = HashMap::new();
    for query in [paper::Q1, paper::Q2] {
        expected.insert(query.to_string(), expected_answer(&reference, query));
    }
    let handle = Server::spawn(
        federation(8),
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let spec = LoadSpec {
        expected: Some(expected),
        ..LoadSpec::closed(vec![paper::Q1.to_string(), paper::Q2.to_string()])
    };
    assert_eq!((spec.clients, spec.queries), (8, 200));
    let report = load::run(handle.addr(), &spec);
    assert_eq!(report.answered, 200, "{report:?}");
    assert_eq!(report.mismatches, 0, "every answer byte-identical");
    assert!(report.clean(), "{report:?}");
    let stats = handle.stats();
    assert_eq!(stats.served, 200);
    assert!(stats.connections >= 8);
    assert_eq!(stats.queue_depth, 0, "queue empties when the run ends");
    assert_eq!(stats.in_flight, 0);
    assert!(
        stats.sources.iter().any(|s| s.name == "o2artifact")
            && stats.sources.iter().any(|s| s.name == "xmlartwork"),
        "per-source gauges name both wrappers: {:?}",
        stats.sources
    );
    assert!(stats.sources.iter().all(|s| s.in_flight == 0));
    assert!(stats.sources.iter().any(|s| s.round_trips > 0));
}

#[test]
fn overload_sheds_only_when_the_queue_is_saturated() {
    let mediator = federation(6);
    // slow both sources down so one query occupies the single worker
    // long enough for the flood to pile up behind it
    for source in ["o2artifact", "xmlartwork"] {
        mediator
            .connection(source)
            .expect("source connected")
            .set_latency(Some(Latency::fixed(Duration::from_millis(30))));
    }
    let handle = Server::spawn(
        mediator,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            retry_after_ms: 5,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr();

    // unsaturated: a lone client never sees Overloaded
    let mut solo = Client::connect(addr).expect("client connects");
    for _ in 0..3 {
        let reply = solo.query(paper::Q1).expect("query round-trips");
        assert!(matches!(reply, ServerReply::Answer { .. }), "{reply:?}");
    }
    assert_eq!(handle.stats().shed, 0, "no shedding without saturation");

    // saturated: 6 concurrent clients against 1 worker + queue of 1
    let outcomes: Vec<ServerReply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    client.query(paper::Q1).expect("query round-trips")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let answered = outcomes
        .iter()
        .filter(|r| matches!(r, ServerReply::Answer { .. }))
        .count();
    let overloaded = outcomes
        .iter()
        .filter(|r| matches!(r, ServerReply::Overloaded { retry_after_ms: 5 }))
        .count();
    assert_eq!(answered + overloaded, 6, "{outcomes:?}");
    assert!(answered >= 1, "the worker kept serving under the flood");
    assert!(overloaded >= 1, "a saturated queue sheds at the door");
    assert_eq!(handle.stats().shed as usize, overloaded);
}

#[test]
fn deadlines_expire_in_the_queue_without_executing() {
    let mediator = federation(6);
    for source in ["o2artifact", "xmlartwork"] {
        mediator
            .connection(source)
            .expect("source connected")
            .set_latency(Some(Latency::fixed(Duration::from_millis(40))));
    }
    let handle = Server::spawn(
        mediator,
        ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr();
    std::thread::scope(|scope| {
        // occupy the lone worker
        let blocker = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("client connects");
            client.query(paper::Q1).expect("query round-trips")
        });
        std::thread::sleep(Duration::from_millis(10));
        // this one's budget is gone before the worker frees up
        let reply = Client::connect(addr)
            .expect("client connects")
            .query_with_deadline(paper::Q1, 1)
            .expect("deadline refusal still round-trips");
        match &reply {
            ServerReply::Error { message } => {
                assert!(message.contains("deadline expired"), "{message}")
            }
            other => panic!("expected a deadline error, got {other:?}"),
        }
        assert!(matches!(
            blocker.join().unwrap(),
            ServerReply::Answer { .. }
        ));
    });
    let stats = handle.stats();
    assert!(stats.errors >= 1);
}

#[test]
fn hostile_frames_leave_the_server_alive_and_the_connection_usable() {
    let handle = Server::spawn(federation(6), ServerConfig::default()).expect("server binds");
    let addr = handle.addr();

    // a well-framed payload that is not XML: typed error, stream stays up
    let mut stream = TcpStream::connect(addr).expect("raw connect");
    framing::write_frame(&mut stream, "<unclosed").expect("frame writes");
    match framing::read_element(&mut stream).expect("reply arrives") {
        Some(el) => {
            let reply = ServerReply::from_xml(&el).expect("reply parses");
            assert!(matches!(reply, ServerReply::Error { .. }), "{reply:?}");
        }
        None => panic!("server hung up instead of answering the error"),
    }
    // a wrapper verb on the client port: rejected, stream still up
    framing::write_frame(&mut stream, "<get-interface/>").expect("frame writes");
    let el = framing::read_element(&mut stream)
        .expect("reply arrives")
        .expect("reply present");
    match ServerReply::from_xml(&el).expect("reply parses") {
        ServerReply::Error { message } => assert!(message.contains("unknown"), "{message}"),
        other => panic!("{other:?}"),
    }
    // and the same connection still executes real queries afterwards
    framing::write_element(
        &mut stream,
        &ClientRequest::Query {
            text: paper::Q1.into(),
            deadline_ms: None,
            stream: false,
        }
        .to_xml(),
    )
    .expect("frame writes");
    let el = framing::read_element(&mut stream)
        .expect("reply arrives")
        .expect("reply present");
    assert!(matches!(
        ServerReply::from_xml(&el).expect("reply parses"),
        ServerReply::Answer { .. }
    ));

    // an oversized header poisons only its own connection
    let mut bomber = TcpStream::connect(addr).expect("raw connect");
    {
        use std::io::Write as _;
        bomber
            .write_all(&[0xff, 0xff, 0xff, 0xff])
            .expect("header writes");
    }
    let el = framing::read_element(&mut bomber)
        .expect("reply arrives")
        .expect("reply present");
    match ServerReply::from_xml(&el).expect("reply parses") {
        ServerReply::Error { message } => assert!(message.contains("frame"), "{message}"),
        other => panic!("{other:?}"),
    }

    // the server itself is untouched: fresh clients still get answers
    let mut client = Client::connect(addr).expect("client connects");
    assert!(matches!(
        client.query(paper::Q1).expect("query round-trips"),
        ServerReply::Answer { .. }
    ));
    let stats = handle.stats();
    assert!(stats.protocol_errors >= 3, "{stats:?}");
}

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let mediator = federation(6);
    for source in ["o2artifact", "xmlartwork"] {
        mediator
            .connection(source)
            .expect("source connected")
            .set_latency(Some(Latency::fixed(Duration::from_millis(25))));
    }
    let handle = Server::spawn(
        mediator,
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr();
    let (drained, outcomes) = std::thread::scope(|scope| {
        let queriers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    client.query(paper::Q2).expect("query round-trips")
                })
            })
            .collect();
        // let the queries reach the queue/workers, then pull the plug
        std::thread::sleep(Duration::from_millis(15));
        let drained = Client::connect(addr)
            .expect("client connects")
            .shutdown()
            .expect("shutdown round-trips");
        let outcomes: Vec<_> = queriers.into_iter().map(|h| h.join().unwrap()).collect();
        (drained, outcomes)
    });
    assert!(drained >= 1, "shutdown found work to drain");
    for reply in &outcomes {
        assert!(
            matches!(reply, ServerReply::Answer { .. }),
            "in-flight queries complete through the drain: {reply:?}"
        );
    }
    let stats = handle.stats();
    assert!(stats.draining);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.served, 4);
    // the drain stops the accept loop and the pool; join returns
    handle.join();
}

#[test]
fn draining_server_refuses_new_queries() {
    let handle = Server::spawn(federation(6), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    // one round trip first: `connect` only proves the kernel queued the
    // connection, and a shutdown racing the accept loop may drop it
    // unserved. An *established* session must get the polite refusal.
    client.stats().expect("session is established");
    assert_eq!(handle.shutdown(), 0, "idle server has nothing to drain");
    match client.query(paper::Q1).expect("refusal round-trips") {
        ServerReply::Error { message } => assert!(message.contains("draining"), "{message}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn explain_over_the_wire_carries_the_serving_section() {
    let handle = Server::spawn(federation(8), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    match client.explain(paper::Q1).expect("explain round-trips") {
        ServerReply::Explained { text } => {
            assert!(text.contains("serving"), "{text}");
            assert!(text.contains("worker "), "{text}");
            assert!(text.contains("queue wait"), "{text}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn serving_spans_stitch_queue_wait_and_execute_under_one_request() {
    let handle = Server::spawn(federation(6), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    client.query(paper::Q1).expect("query round-trips");
    let spans = handle.spans();
    let serve = spans
        .iter()
        .find(|s| s.kind == kind::SERVER && s.label == "serve query")
        .expect("serve span recorded");
    assert!(serve.attr(attr::QUEUE_DEPTH).is_some());
    assert!(serve.attr(attr::IN_FLIGHT).is_some());
    let children: Vec<_> = spans
        .iter()
        .filter(|s| s.parent == Some(serve.id))
        .collect();
    assert!(
        children.iter().any(|s| s.label == "queue-wait"),
        "{children:?}"
    );
    let execute = children
        .iter()
        .find(|s| s.label == "execute")
        .expect("execute span stitched under the request across threads");
    assert!(execute.attr(attr::WORKER).is_some());
    assert!(spans
        .iter()
        .any(|s| s.kind == kind::SERVER && s.label == "accept"));
    assert!(spans
        .iter()
        .any(|s| s.kind == kind::SERVER && s.label == "respond"));
}

#[test]
fn open_loop_load_measures_from_the_schedule() {
    let handle = Server::spawn(federation(6), ServerConfig::default()).expect("server binds");
    let report = load::run(
        handle.addr(),
        &LoadSpec {
            clients: 2,
            queries: 10,
            seed: 7,
            mode: LoadMode::Open { offered_qps: 200.0 },
            deadline_ms: None,
            stream: false,
            mix: vec![paper::Q1.to_string()],
            expected: None,
        },
    );
    assert_eq!(report.answered, 10, "{report:?}");
    assert!(report.clean());
    assert!(report.p50_ms() > 0.0);
    assert!(report.p99_ms() >= report.p50_ms());
}

/// A federation like [`federation`], but with independently sized
/// sources — the streaming tests want a `works` collection much larger
/// than the artifacts extent.
fn works_federation(works: usize, artifacts: usize) -> Mediator {
    let mut m = Mediator::new();
    m.connect(Box::new(O2Wrapper::new(
        "o2artifact",
        art_store(&ArtSpec {
            artifacts,
            persons: (artifacts / 5).max(2),
            seed: 42,
        }),
    )))
    .expect("fresh mediator accepts the O2 wrapper");
    m.connect(Box::new(WaisWrapper::new(
        "xmlartwork",
        WaisSource::new(
            "works",
            &generate_works(&WorksSpec {
                works,
                impressionist_pct: 30,
                optional_pct: 60,
                giverny_pct: 30,
                seed: 42,
            }),
        ),
    )))
    .expect("fresh mediator accepts the Wais wrapper");
    m.load_program(paper::VIEW1).expect("view1 is well-formed");
    m
}

/// A full scan of the Wais works collection — one answer subtree per
/// work, so chunk counts are exact.
const WORKS_SCAN: &str = "MAKE out *($t2) := r [ $t2 ] MATCH works WITH works *work [ title: $t2 ]";

#[test]
fn streamed_wire_answers_are_byte_identical_and_chunked() {
    let reference = federation(12);
    let mut mediator = federation(12);
    mediator.set_stream_policy(StreamPolicy::Chunked {
        batch_rows: 4,
        max_pending: 4,
    });
    let handle = Server::spawn(mediator, ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    // a client that does not negotiate streaming still gets single-frame
    // answers, byte-identical to a non-streaming server's
    for query in [paper::Q1, paper::Q2, WORKS_SCAN] {
        let reply = client.query(query).expect("query round-trips");
        assert_eq!(
            reply.to_xml().to_xml(),
            expected_answer(&reference, query),
            "single-frame answer unchanged by the server's stream policy"
        );
    }
    // the same queries streamed: the reassembled answer is byte-identical
    for query in [paper::Q1, paper::Q2, WORKS_SCAN] {
        let streamed = client.query_streamed(query).expect("stream round-trips");
        assert_eq!(
            streamed.reply.to_xml().to_xml(),
            expected_answer(&reference, query),
            "reassembled stream must be byte-identical to the single frame"
        );
        assert!(
            streamed.chunks >= 1,
            "an answer stream has at least one chunk"
        );
    }
    // 12 works in 4-subtree chunks: exactly 3
    let streamed = client
        .query_streamed(WORKS_SCAN)
        .expect("stream round-trips");
    assert_eq!(streamed.chunks, 3, "12 subtrees / 4 per batch");
    // the respond path records its chunk counters
    let spans = handle.spans();
    let respond = spans
        .iter()
        .find(|s| s.kind == kind::SERVER && s.label == "respond stream")
        .expect("streamed responses get their own respond span");
    assert!(respond.attr(attr::CHUNKS).is_some());
    assert!(respond.attr(attr::BYTES_SENT).is_some());
}

#[test]
fn corrupted_chunk_streams_yield_typed_errors_never_short_answers() {
    fn batch(rows: &[i64]) -> EvalOut {
        let mut tab = Tab::new(vec!["n".to_string()]);
        for &n in rows {
            tab.push(vec![Value::Atom(n.into())]);
        }
        EvalOut::Tab(tab)
    }
    fn frame_bytes(frame: &StreamFrame) -> Vec<u8> {
        let mut buf = Vec::new();
        framing::write_element(&mut buf, &frame.to_xml()).expect("frame writes");
        buf
    }
    let frames = [
        frame_bytes(&StreamFrame::Chunk {
            seq: 0,
            payload: batch(&[1, 2]),
        }),
        frame_bytes(&StreamFrame::Chunk {
            seq: 1,
            payload: batch(&[3, 4]),
        }),
        frame_bytes(&StreamFrame::Chunk {
            seq: 2,
            payload: batch(&[5]),
        }),
        frame_bytes(&StreamFrame::End {
            chunks: 3,
            rows: 5,
            answered_by: None,
            missing: None,
        }),
    ];
    let full: Vec<u8> = frames.concat();

    // control: the intact stream reassembles completely
    let ok = read_streamed_reply(&mut Cursor::new(full.clone())).expect("intact stream parses");
    assert_eq!(ok.chunks, 3);
    match &ok.reply {
        ServerReply::Answer {
            out: EvalOut::Tab(t),
            ..
        } => assert_eq!(t.len(), 5),
        other => panic!("expected a 5-row answer, got {other:?}"),
    }

    // seeded truncation sweep: cutting the byte stream anywhere —
    // mid-header, mid-frame, between frames — must surface as an error,
    // never as a silently shorter answer
    let mut rng = Rng::seed_from_u64(0x0057_EA77);
    for _ in 0..64 {
        let cut = rng.gen_range(0..full.len());
        let result = read_streamed_reply(&mut Cursor::new(full[..cut].to_vec()));
        let reply = result.map(|r| r.reply);
        assert!(
            reply.is_err(),
            "truncation at byte {cut} parsed as {reply:?}"
        );
    }

    // every structural corruption is a typed stream error
    let stream_err = |frames: &[&Vec<u8>]| -> WireError {
        let bytes: Vec<u8> = frames.iter().flat_map(|f| f.iter().copied()).collect();
        read_streamed_reply(&mut Cursor::new(bytes)).expect_err("corrupt stream must not parse")
    };
    // reordered chunks: the seq gap is refused at the first wrong frame
    let err = stream_err(&[&frames[1], &frames[0], &frames[2], &frames[3]]);
    assert!(
        matches!(&err, WireError::Stream(m) if m.contains("seq")),
        "{err}"
    );
    // a dropped chunk is a seq gap too
    let err = stream_err(&[&frames[0], &frames[2], &frames[3]]);
    assert!(
        matches!(&err, WireError::Stream(m) if m.contains("seq")),
        "{err}"
    );
    // answer-end declaring the wrong chunk count
    let end = frame_bytes(&StreamFrame::End {
        chunks: 2,
        rows: 5,
        answered_by: None,
        missing: None,
    });
    let err = stream_err(&[&frames[0], &frames[1], &frames[2], &end]);
    assert!(
        matches!(&err, WireError::Stream(m) if m.contains("chunks")),
        "{err}"
    );
    // answer-end declaring the wrong row count
    let end = frame_bytes(&StreamFrame::End {
        chunks: 3,
        rows: 4,
        answered_by: None,
        missing: None,
    });
    let err = stream_err(&[&frames[0], &frames[1], &frames[2], &end]);
    assert!(
        matches!(&err, WireError::Stream(m) if m.contains("rows")),
        "{err}"
    );
    // answer-end with no chunks at all
    let end = frame_bytes(&StreamFrame::End {
        chunks: 0,
        rows: 0,
        answered_by: None,
        missing: None,
    });
    let err = stream_err(&[&end]);
    assert!(
        matches!(&err, WireError::Stream(m) if m.contains("before any")),
        "{err}"
    );
    // a mid-stream abort is surfaced as the typed abort error
    let abort = frame_bytes(&StreamFrame::Abort {
        message: "lane died".into(),
    });
    let err = stream_err(&[&frames[0], &abort]);
    assert!(
        matches!(&err, WireError::Stream(m) if m.contains("aborted")),
        "{err}"
    );
    // a non-stream frame mid-stream is refused
    let mut foreign = Vec::new();
    framing::write_element(
        &mut foreign,
        &ServerReply::Error {
            message: "surprise".into(),
        }
        .to_xml(),
    )
    .expect("frame writes");
    let err = stream_err(&[&frames[0], &foreign]);
    assert!(
        matches!(&err, WireError::Stream(m) if m.contains("mid-stream")),
        "{err}"
    );
    // chunks that change shape mid-stream are refused
    let tree_chunk = frame_bytes(&StreamFrame::Chunk {
        seq: 1,
        payload: EvalOut::Tree(Node::sym("out", vec![Node::elem("r", "x")])),
    });
    let err = stream_err(&[&frames[0], &tree_chunk]);
    assert!(
        matches!(&err, WireError::Stream(m) if m.contains("mixes")),
        "{err}"
    );
    // chunks that change column layout mid-stream are refused
    let mut other_tab = Tab::new(vec!["m".to_string()]);
    other_tab.push(vec![Value::Atom(9i64.into())]);
    let odd = frame_bytes(&StreamFrame::Chunk {
        seq: 1,
        payload: EvalOut::Tab(other_tab),
    });
    let err = stream_err(&[&frames[0], &odd]);
    assert!(
        matches!(&err, WireError::Stream(m) if m.contains("columns")),
        "{err}"
    );
    // an oversized declared frame length is the framing layer's problem
    let bomb = vec![0xff, 0xff, 0xff, 0xff];
    let err = stream_err(&[&frames[0], &bomb]);
    assert!(matches!(err, WireError::FrameTooLarge { .. }), "{err}");
}

#[test]
fn first_chunk_lands_before_the_materialized_answer_completes() {
    // a large answer over slow sources: the streamed client must see its
    // first chunk strictly before a materializing client would see any
    // bytes at all (the single frame is serialized, shipped, and parsed
    // whole). 25 ms of simulated source latency is paid identically by
    // both paths, so the margin is the answer-size-proportional tail.
    let mut mediator = works_federation(4000, 8);
    mediator.set_cache_policy(yat_mediator::CachePolicy::Off);
    mediator.set_stream_policy(StreamPolicy::Chunked {
        batch_rows: 64,
        max_pending: 8,
    });
    for source in ["o2artifact", "xmlartwork"] {
        mediator
            .connection(source)
            .expect("source connected")
            .set_latency(Some(Latency::fixed(Duration::from_millis(25))));
    }
    let handle = Server::spawn(mediator, ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    // one unmeasured warmup so first-use costs bias neither run; the
    // streamed run goes second-to-last so any residual warming favors
    // the materialized side
    client.query(WORKS_SCAN).expect("warmup round-trips");
    let streamed = client
        .query_streamed(WORKS_SCAN)
        .expect("stream round-trips");
    assert!(matches!(streamed.reply, ServerReply::Answer { .. }));
    assert!(streamed.chunks >= 2, "4000 subtrees / 64 per batch");
    let start = Instant::now();
    let reply = client.query(WORKS_SCAN).expect("query round-trips");
    let materialized_total = start.elapsed();
    assert!(matches!(reply, ServerReply::Answer { .. }));
    assert!(
        streamed.ttfr < materialized_total,
        "time-to-first-row {:?} must beat the materialized time-to-last-row {:?}",
        streamed.ttfr,
        materialized_total
    );
}

#[test]
fn graceful_shutdown_finishes_in_flight_streams_before_bye() {
    let reference = federation(12);
    let mut mediator = federation(12);
    mediator.set_stream_policy(StreamPolicy::Chunked {
        batch_rows: 2,
        max_pending: 2,
    });
    for source in ["o2artifact", "xmlartwork"] {
        mediator
            .connection(source)
            .expect("source connected")
            .set_latency(Some(Latency::fixed(Duration::from_millis(25))));
    }
    let handle = Server::spawn(
        mediator,
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr();
    let (drained, streamed) = std::thread::scope(|scope| {
        let streamer = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("client connects");
            client
                .query_streamed(paper::Q2)
                .expect("the in-flight stream survives the drain")
        });
        // let the streamed query reach a worker, then pull the plug
        std::thread::sleep(Duration::from_millis(15));
        let drained = Client::connect(addr)
            .expect("client connects")
            .shutdown()
            .expect("shutdown round-trips");
        (drained, streamer.join().unwrap())
    });
    assert!(
        drained >= 1,
        "the stream was in flight when the drain began"
    );
    assert!(
        matches!(streamed.reply, ServerReply::Answer { .. }),
        "a partially streamed answer finishes through the drain: {:?}",
        streamed.reply
    );
    assert_eq!(
        streamed.reply.to_xml().to_xml(),
        expected_answer(&reference, paper::Q2),
        "the drained stream is complete, not a silent prefix"
    );
    assert!(streamed.chunks >= 1);
    let stats = handle.stats();
    assert!(stats.draining);
    assert_eq!(stats.in_flight, 0);
    handle.join();
}

#[test]
fn hundred_thousand_row_answers_stream_with_bounded_gather() {
    // the acceptance-criterion run: a >=100k-subtree answer, streamed
    // under the parallel executor. The scatter gather may never buffer
    // more than its lane budget (the bounded rendezvous channel,
    // observed through the `peak_pending` gauge) and the answer boundary
    // works in `DEFAULT_BATCH_ROWS`-subtree chunks.
    let lanes = 4;
    let mut mediator = works_federation(100_000, 8);
    mediator.set_cache_policy(yat_mediator::CachePolicy::Off);
    mediator.set_exec_mode(ExecMode::Parallel {
        max_in_flight: lanes,
    });
    let plan = mediator.plan_query(WORKS_SCAN).expect("query plans");
    let (optimized, _) = mediator.optimize(&plan, OptimizerOptions::default());

    mediator.set_stream_policy(StreamPolicy::Off);
    let expected = mediator.execute(&optimized).expect("materialized answer");

    mediator.set_stream_policy(StreamPolicy::chunked());
    let collector = yat_obs::Collector::new();
    let mut sink = CollectSink::new();
    let stats = mediator
        .execute_stream_traced(&optimized, &mut sink, Some(&collector))
        .expect("streamed answer");
    assert!(stats.rows >= 100_000, "answer has {} rows", stats.rows);
    assert_eq!(
        stats.chunks,
        stats.rows.div_ceil(StreamPolicy::DEFAULT_BATCH_ROWS as u64),
        "chunks cut at the default batch budget"
    );
    let streamed = sink.into_answer().expect("stream delivered an answer");
    assert_eq!(
        ServerReply::answer(streamed).to_xml().to_xml(),
        ServerReply::answer(expected).to_xml().to_xml(),
        "100k-row streamed answer byte-identical to the materialized one"
    );

    let spans = collector.spans();
    let stream_span = spans
        .iter()
        .find(|s| s.kind == kind::STREAM)
        .expect("streamed delivery records its span");
    assert_eq!(
        stream_span.attr(attr::BATCH_ROWS).and_then(|v| v.as_u64()),
        Some(StreamPolicy::DEFAULT_BATCH_ROWS as u64)
    );
    assert_eq!(
        stream_span.attr(attr::CHUNKS).and_then(|v| v.as_u64()),
        Some(stats.chunks)
    );
    let scatter = spans
        .iter()
        .find(|s| s.kind == kind::PHASE && s.label == "scatter")
        .expect("parallel execution records the scatter phase");
    let peak = scatter
        .attr(attr::PEAK_PENDING)
        .and_then(|v| v.as_u64())
        .expect("the gather gauge is recorded");
    assert!(
        peak <= lanes as u64,
        "gather buffered {peak} results against a budget of {lanes}"
    );
}

#[test]
fn gather_gauge_stays_within_the_lane_budget_on_multi_source_plans() {
    // Q2 pushes work to both sources: two scatter jobs racing two lanes.
    // The gauge must show the bounded channel held, and the streamed
    // answer must still be byte-identical to the materialized one.
    let lanes = 2;
    let mut mediator = federation(12);
    mediator.set_cache_policy(yat_mediator::CachePolicy::Off);
    mediator.set_exec_mode(ExecMode::Parallel {
        max_in_flight: lanes,
    });
    let plan = mediator.plan_query(paper::Q2).expect("query plans");
    let (optimized, _) = mediator.optimize(&plan, OptimizerOptions::default());
    let expected = mediator.execute(&optimized).expect("materialized answer");
    mediator.set_stream_policy(StreamPolicy::Chunked {
        batch_rows: 2,
        max_pending: 2,
    });
    let collector = yat_obs::Collector::new();
    let mut sink = CollectSink::new();
    mediator
        .execute_stream_traced(&optimized, &mut sink, Some(&collector))
        .expect("streamed answer");
    let streamed = sink.into_answer().expect("stream delivered an answer");
    assert_eq!(
        ServerReply::answer(streamed).to_xml().to_xml(),
        ServerReply::answer(expected).to_xml().to_xml()
    );
    let spans = collector.spans();
    let scatter = spans
        .iter()
        .find(|s| s.kind == kind::PHASE && s.label == "scatter")
        .expect("parallel execution records the scatter phase");
    let peak = scatter
        .attr(attr::PEAK_PENDING)
        .and_then(|v| v.as_u64())
        .expect("the gather gauge is recorded");
    assert!(peak >= 1, "two source jobs must flow through the gather");
    assert!(
        peak <= lanes as u64,
        "gather buffered {peak} results against a budget of {lanes}"
    );
}

#[test]
fn workers_share_one_compiled_program_per_plan() {
    // the VM engine on a shared mediator: concurrent workers answering
    // the same queries must reuse one compiled program per distinct
    // optimized plan (compile once, execute many), and the wire answers
    // must stay byte-identical to the interpreter's
    let reference = federation(12);
    let mut vm_mediator = federation(12);
    vm_mediator.set_exec_engine(yat_mediator::ExecEngine::Vm);
    let handle = Server::spawn(
        vm_mediator,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr();
    let reference = &reference;
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                for _ in 0..3 {
                    for query in [paper::Q1, paper::Q2] {
                        let reply = client.query(query).expect("query round-trips");
                        assert_eq!(
                            reply.to_xml().to_xml(),
                            expected_answer(reference, query),
                            "vm wire answer must match the interpreter's"
                        );
                    }
                }
            });
        }
    });
    assert_eq!(
        handle.mediator().programs_compiled(),
        2,
        "24 queries over 4 workers compile exactly one program per distinct plan"
    );
    handle.shutdown();
    handle.join();
}

// ---------------------------------------------------------- federation

/// [`federation`] with the works collection split into a two-shard
/// partition group; the shard named in `dead` connects but fails every
/// data request.
fn sharded_federation(scale: usize, dead: &[&str]) -> Mediator {
    use yat_mediator::{Dead, MemberRole};
    let works = generate_works(&WorksSpec {
        works: scale,
        impressionist_pct: 30,
        optional_pct: 60,
        giverny_pct: 30,
        seed: 42,
    });
    let style_of = |w: &yat_model::Tree| -> String {
        w.children
            .iter()
            .find(|c| matches!(&c.label, yat_model::Label::Sym(s) if s.as_str() == "style"))
            .and_then(|c| c.children.first())
            .map(|v| format!("{}", v.label))
            .unwrap_or_default()
    };
    let split = |keep: &dyn Fn(&str) -> bool| {
        Node::labeled(
            works.label.clone(),
            works
                .children
                .iter()
                .filter(|w| keep(&style_of(w)))
                .cloned()
                .collect(),
        )
    };
    let imp = split(&|s| s.contains("Impressionist") && !s.contains("Post"));
    let rest = split(&|s| !s.contains("Impressionist") || s.contains("Post"));
    let shard = |values: &[&str]| MemberRole::Shard {
        field: "style".into(),
        values: values.iter().map(|s| s.to_string()).collect(),
    };
    let mut m = Mediator::new();
    m.connect(Box::new(O2Wrapper::new(
        "o2artifact",
        art_store(&ArtSpec {
            artifacts: scale,
            persons: (scale / 5).max(2),
            seed: 42,
        }),
    )))
    .unwrap();
    let imp_wrapper = WaisWrapper::new("wais-imp", WaisSource::new("works", &imp));
    if dead.contains(&"wais-imp") {
        m.connect_member(
            Box::new(Dead(imp_wrapper)),
            "wais",
            shard(&["Impressionist"]),
        )
        .unwrap();
    } else {
        m.connect_member(Box::new(imp_wrapper), "wais", shard(&["Impressionist"]))
            .unwrap();
    }
    let rest_wrapper = WaisWrapper::new("wais-rest", WaisSource::new("works", &rest));
    let rest_values = ["Post-Impressionist", "Realist", "Cubist", "Romantic"];
    if dead.contains(&"wais-rest") {
        m.connect_member(Box::new(Dead(rest_wrapper)), "wais", shard(&rest_values))
            .unwrap();
    } else {
        m.connect_member(Box::new(rest_wrapper), "wais", shard(&rest_values))
            .unwrap();
    }
    m.load_program(paper::VIEW1).unwrap();
    m
}

#[test]
fn degraded_answers_carry_provenance_on_the_wire() {
    let mut m = sharded_federation(12, &["wais-rest"]);
    m.set_partial_failure(yat_mediator::PartialFailure::Degrade);
    let handle = Server::spawn(m, ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");

    // materialized: the <answer> element carries the attributes
    let reply = client.query(paper::Q1).expect("query round-trips");
    let ServerReply::Answer {
        answered_by: Some(answered),
        missing: Some(missing),
        ..
    } = &reply
    else {
        panic!("expected a degraded answer, got {reply:?}");
    };
    assert!(answered.contains("wais-imp"), "{answered}");
    assert_eq!(missing, "wais-rest");
    let text = reply.to_xml().to_xml();
    assert!(text.contains("answered-by="), "{text}");
    assert!(text.contains("missing-sources=\"wais-rest\""), "{text}");

    // streamed: the answer-end frame carries them, and the client
    // propagates them into the reassembled Answer
    let streamed = client
        .query_streamed(paper::Q1)
        .expect("stream round-trips");
    let ServerReply::Answer {
        answered_by: Some(answered),
        missing: Some(missing),
        ..
    } = &streamed.reply
    else {
        panic!(
            "expected a degraded streamed answer, got {:?}",
            streamed.reply
        );
    };
    assert!(answered.contains("wais-imp"), "{answered}");
    assert_eq!(missing, "wais-rest");

    // stats: member gauges carry their group and cost counters
    let stats = client.stats().expect("stats round-trips");
    let gauge = |name: &str| {
        stats
            .sources
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no gauge for {name}: {:?}", stats.sources))
            .clone()
    };
    assert_eq!(gauge("wais-imp").group.as_deref(), Some("wais"));
    assert!(
        gauge("wais-imp").ewma_latency_us > 0,
        "{:?}",
        gauge("wais-imp")
    );
    assert!(gauge("wais-rest").errors > 0, "{:?}", gauge("wais-rest"));
    assert_eq!(gauge("o2artifact").group, None, "plain sources stay plain");

    handle.shutdown();
    handle.join();
}

#[test]
fn complete_federated_answers_stay_byte_identical_to_plain_wire() {
    // a healthy federation must not leak provenance attributes: the
    // reply bytes match a plain two-source mediator's exactly
    let reference = federation(12);
    let handle =
        Server::spawn(sharded_federation(12, &[]), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    for query in [paper::Q1, paper::Q2] {
        let reply = client.query(query).expect("query round-trips");
        assert_eq!(
            reply.to_xml().to_xml(),
            expected_answer(&reference, query),
            "federated wire answer must match the plain mediator's bytes"
        );
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn backoff_schedule_is_exponential_jittered_and_capped() {
    use crate::client::backoff_delay;
    // midpoint jitter reproduces the bare exponential curve
    assert_eq!(backoff_delay(0, 0.5), Duration::from_millis(5));
    assert_eq!(backoff_delay(1, 0.5), Duration::from_millis(10));
    assert_eq!(backoff_delay(2, 0.5), Duration::from_millis(20));
    // the curve caps at 200ms before jitter
    assert_eq!(backoff_delay(12, 0.5), Duration::from_millis(200));
    assert_eq!(backoff_delay(63, 0.5), Duration::from_millis(200));
    // jitter spans [0.5x, 1.5x)
    assert_eq!(backoff_delay(0, 0.0), Duration::from_micros(2500));
    assert_eq!(backoff_delay(3, 1.0), Duration::from_millis(60));
    // distinct jitter draws de-synchronize a client fleet
    let mut rng = Rng::seed_from_u64(7);
    let delays: Vec<Duration> = (0..8).map(|_| backoff_delay(4, rng.gen_f64())).collect();
    let distinct: std::collections::HashSet<_> = delays.iter().collect();
    assert!(distinct.len() > 1, "{delays:?}");
    for d in &delays {
        assert!(
            *d >= Duration::from_millis(40) && *d < Duration::from_millis(120),
            "{d:?}"
        );
    }
}

#[test]
fn connect_retry_still_reaches_a_late_binding_server() {
    // the jittered schedule must not break the original contract: a
    // client that starts before the server still connects within patience
    let handle = Server::spawn(federation(6), ServerConfig::default()).expect("server binds");
    let addr = handle.addr();
    let mut client = Client::connect_retry(addr, Duration::from_secs(2)).expect("retry connects");
    assert!(matches!(
        client.query(paper::Q1).expect("query round-trips"),
        ServerReply::Answer { .. }
    ));
    // and a dead address still errors out after patience
    drop(client);
    handle.shutdown();
    handle.join();
    let err = match Client::connect_retry(addr, Duration::from_millis(120)) {
        Err(e) => e,
        Ok(_) => panic!("connect to a dead address must fail"),
    };
    assert!(err.to_string().contains("connect failed"), "{err}");
}
