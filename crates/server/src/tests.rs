//! End-to-end tests: a real `yat-server` on a loopback socket, real
//! clients, the paper's cultural-goods federation behind it.

use crate::load::{LoadMode, LoadSpec};
use crate::{load, Client, Server, ServerConfig};
use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;
use yat_capability::framing;
use yat_capability::protocol::{ClientRequest, ServerReply};
use yat_mediator::{Latency, Mediator, OptimizerOptions};
use yat_obs::{attr, kind};
use yat_oql::art::{art_store, ArtSpec};
use yat_oql::O2Wrapper;
use yat_wais::{generate_works, WaisSource, WaisWrapper, WorksSpec};
use yat_yatl::paper;

/// The Fig. 2 federation at a small scale: O2 artifacts + Wais works +
/// view1, the same construction `yat-bench`'s `workload::Scenario` uses.
fn federation(scale: usize) -> Mediator {
    let mut m = Mediator::new();
    m.connect(Box::new(O2Wrapper::new(
        "o2artifact",
        art_store(&ArtSpec {
            artifacts: scale,
            persons: (scale / 5).max(2),
            seed: 42,
        }),
    )))
    .expect("fresh mediator accepts the O2 wrapper");
    m.connect(Box::new(WaisWrapper::new(
        "xmlartwork",
        WaisSource::new(
            "works",
            &generate_works(&WorksSpec {
                works: scale,
                impressionist_pct: 30,
                optional_pct: 60,
                giverny_pct: 30,
                seed: 42,
            }),
        ),
    )))
    .expect("fresh mediator accepts the Wais wrapper");
    m.load_program(paper::VIEW1).expect("view1 is well-formed");
    m
}

/// Serialized reply bytes for an in-process answer — the byte-identity
/// yardstick the wire must match.
fn expected_answer(mediator: &Mediator, query: &str) -> String {
    let out = mediator
        .query(query, OptimizerOptions::default())
        .expect("paper query answers in-process");
    ServerReply::Answer(out).to_xml().to_xml()
}

#[test]
fn socket_answers_are_byte_identical_to_in_process_answers() {
    let reference = federation(12);
    let handle = Server::spawn(federation(12), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    for query in [paper::Q1, paper::Q2] {
        let reply = client.query(query).expect("query round-trips");
        assert_eq!(
            reply.to_xml().to_xml(),
            expected_answer(&reference, query),
            "wire answer must be byte-identical to the in-process answer"
        );
    }
    let stats = handle.stats();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn eight_clients_two_hundred_seeded_queries_all_verified() {
    let reference = federation(8);
    let mut expected = HashMap::new();
    for query in [paper::Q1, paper::Q2] {
        expected.insert(query.to_string(), expected_answer(&reference, query));
    }
    let handle = Server::spawn(
        federation(8),
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let spec = LoadSpec {
        expected: Some(expected),
        ..LoadSpec::closed(vec![paper::Q1.to_string(), paper::Q2.to_string()])
    };
    assert_eq!((spec.clients, spec.queries), (8, 200));
    let report = load::run(handle.addr(), &spec);
    assert_eq!(report.answered, 200, "{report:?}");
    assert_eq!(report.mismatches, 0, "every answer byte-identical");
    assert!(report.clean(), "{report:?}");
    let stats = handle.stats();
    assert_eq!(stats.served, 200);
    assert!(stats.connections >= 8);
    assert_eq!(stats.queue_depth, 0, "queue empties when the run ends");
    assert_eq!(stats.in_flight, 0);
    assert!(
        stats.sources.iter().any(|s| s.name == "o2artifact")
            && stats.sources.iter().any(|s| s.name == "xmlartwork"),
        "per-source gauges name both wrappers: {:?}",
        stats.sources
    );
    assert!(stats.sources.iter().all(|s| s.in_flight == 0));
    assert!(stats.sources.iter().any(|s| s.round_trips > 0));
}

#[test]
fn overload_sheds_only_when_the_queue_is_saturated() {
    let mediator = federation(6);
    // slow both sources down so one query occupies the single worker
    // long enough for the flood to pile up behind it
    for source in ["o2artifact", "xmlartwork"] {
        mediator
            .connection(source)
            .expect("source connected")
            .set_latency(Some(Latency::fixed(Duration::from_millis(30))));
    }
    let handle = Server::spawn(
        mediator,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            retry_after_ms: 5,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr();

    // unsaturated: a lone client never sees Overloaded
    let mut solo = Client::connect(addr).expect("client connects");
    for _ in 0..3 {
        let reply = solo.query(paper::Q1).expect("query round-trips");
        assert!(matches!(reply, ServerReply::Answer(_)), "{reply:?}");
    }
    assert_eq!(handle.stats().shed, 0, "no shedding without saturation");

    // saturated: 6 concurrent clients against 1 worker + queue of 1
    let outcomes: Vec<ServerReply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    client.query(paper::Q1).expect("query round-trips")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let answered = outcomes
        .iter()
        .filter(|r| matches!(r, ServerReply::Answer(_)))
        .count();
    let overloaded = outcomes
        .iter()
        .filter(|r| matches!(r, ServerReply::Overloaded { retry_after_ms: 5 }))
        .count();
    assert_eq!(answered + overloaded, 6, "{outcomes:?}");
    assert!(answered >= 1, "the worker kept serving under the flood");
    assert!(overloaded >= 1, "a saturated queue sheds at the door");
    assert_eq!(handle.stats().shed as usize, overloaded);
}

#[test]
fn deadlines_expire_in_the_queue_without_executing() {
    let mediator = federation(6);
    for source in ["o2artifact", "xmlartwork"] {
        mediator
            .connection(source)
            .expect("source connected")
            .set_latency(Some(Latency::fixed(Duration::from_millis(40))));
    }
    let handle = Server::spawn(
        mediator,
        ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr();
    std::thread::scope(|scope| {
        // occupy the lone worker
        let blocker = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("client connects");
            client.query(paper::Q1).expect("query round-trips")
        });
        std::thread::sleep(Duration::from_millis(10));
        // this one's budget is gone before the worker frees up
        let reply = Client::connect(addr)
            .expect("client connects")
            .query_with_deadline(paper::Q1, 1)
            .expect("deadline refusal still round-trips");
        match &reply {
            ServerReply::Error { message } => {
                assert!(message.contains("deadline expired"), "{message}")
            }
            other => panic!("expected a deadline error, got {other:?}"),
        }
        assert!(matches!(blocker.join().unwrap(), ServerReply::Answer(_)));
    });
    let stats = handle.stats();
    assert!(stats.errors >= 1);
}

#[test]
fn hostile_frames_leave_the_server_alive_and_the_connection_usable() {
    let handle = Server::spawn(federation(6), ServerConfig::default()).expect("server binds");
    let addr = handle.addr();

    // a well-framed payload that is not XML: typed error, stream stays up
    let mut stream = TcpStream::connect(addr).expect("raw connect");
    framing::write_frame(&mut stream, "<unclosed").expect("frame writes");
    match framing::read_element(&mut stream).expect("reply arrives") {
        Some(el) => {
            let reply = ServerReply::from_xml(&el).expect("reply parses");
            assert!(matches!(reply, ServerReply::Error { .. }), "{reply:?}");
        }
        None => panic!("server hung up instead of answering the error"),
    }
    // a wrapper verb on the client port: rejected, stream still up
    framing::write_frame(&mut stream, "<get-interface/>").expect("frame writes");
    let el = framing::read_element(&mut stream)
        .expect("reply arrives")
        .expect("reply present");
    match ServerReply::from_xml(&el).expect("reply parses") {
        ServerReply::Error { message } => assert!(message.contains("unknown"), "{message}"),
        other => panic!("{other:?}"),
    }
    // and the same connection still executes real queries afterwards
    framing::write_element(
        &mut stream,
        &ClientRequest::Query {
            text: paper::Q1.into(),
            deadline_ms: None,
        }
        .to_xml(),
    )
    .expect("frame writes");
    let el = framing::read_element(&mut stream)
        .expect("reply arrives")
        .expect("reply present");
    assert!(matches!(
        ServerReply::from_xml(&el).expect("reply parses"),
        ServerReply::Answer(_)
    ));

    // an oversized header poisons only its own connection
    let mut bomber = TcpStream::connect(addr).expect("raw connect");
    {
        use std::io::Write as _;
        bomber
            .write_all(&[0xff, 0xff, 0xff, 0xff])
            .expect("header writes");
    }
    let el = framing::read_element(&mut bomber)
        .expect("reply arrives")
        .expect("reply present");
    match ServerReply::from_xml(&el).expect("reply parses") {
        ServerReply::Error { message } => assert!(message.contains("frame"), "{message}"),
        other => panic!("{other:?}"),
    }

    // the server itself is untouched: fresh clients still get answers
    let mut client = Client::connect(addr).expect("client connects");
    assert!(matches!(
        client.query(paper::Q1).expect("query round-trips"),
        ServerReply::Answer(_)
    ));
    let stats = handle.stats();
    assert!(stats.protocol_errors >= 3, "{stats:?}");
}

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let mediator = federation(6);
    for source in ["o2artifact", "xmlartwork"] {
        mediator
            .connection(source)
            .expect("source connected")
            .set_latency(Some(Latency::fixed(Duration::from_millis(25))));
    }
    let handle = Server::spawn(
        mediator,
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr();
    let (drained, outcomes) = std::thread::scope(|scope| {
        let queriers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    client.query(paper::Q2).expect("query round-trips")
                })
            })
            .collect();
        // let the queries reach the queue/workers, then pull the plug
        std::thread::sleep(Duration::from_millis(15));
        let drained = Client::connect(addr)
            .expect("client connects")
            .shutdown()
            .expect("shutdown round-trips");
        let outcomes: Vec<_> = queriers.into_iter().map(|h| h.join().unwrap()).collect();
        (drained, outcomes)
    });
    assert!(drained >= 1, "shutdown found work to drain");
    for reply in &outcomes {
        assert!(
            matches!(reply, ServerReply::Answer(_)),
            "in-flight queries complete through the drain: {reply:?}"
        );
    }
    let stats = handle.stats();
    assert!(stats.draining);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.served, 4);
    // the drain stops the accept loop and the pool; join returns
    handle.join();
}

#[test]
fn draining_server_refuses_new_queries() {
    let handle = Server::spawn(federation(6), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    // one round trip first: `connect` only proves the kernel queued the
    // connection, and a shutdown racing the accept loop may drop it
    // unserved. An *established* session must get the polite refusal.
    client.stats().expect("session is established");
    assert_eq!(handle.shutdown(), 0, "idle server has nothing to drain");
    match client.query(paper::Q1).expect("refusal round-trips") {
        ServerReply::Error { message } => assert!(message.contains("draining"), "{message}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn explain_over_the_wire_carries_the_serving_section() {
    let handle = Server::spawn(federation(8), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    match client.explain(paper::Q1).expect("explain round-trips") {
        ServerReply::Explained { text } => {
            assert!(text.contains("serving"), "{text}");
            assert!(text.contains("worker "), "{text}");
            assert!(text.contains("queue wait"), "{text}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn serving_spans_stitch_queue_wait_and_execute_under_one_request() {
    let handle = Server::spawn(federation(6), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    client.query(paper::Q1).expect("query round-trips");
    let spans = handle.spans();
    let serve = spans
        .iter()
        .find(|s| s.kind == kind::SERVER && s.label == "serve query")
        .expect("serve span recorded");
    assert!(serve.attr(attr::QUEUE_DEPTH).is_some());
    assert!(serve.attr(attr::IN_FLIGHT).is_some());
    let children: Vec<_> = spans
        .iter()
        .filter(|s| s.parent == Some(serve.id))
        .collect();
    assert!(
        children.iter().any(|s| s.label == "queue-wait"),
        "{children:?}"
    );
    let execute = children
        .iter()
        .find(|s| s.label == "execute")
        .expect("execute span stitched under the request across threads");
    assert!(execute.attr(attr::WORKER).is_some());
    assert!(spans
        .iter()
        .any(|s| s.kind == kind::SERVER && s.label == "accept"));
    assert!(spans
        .iter()
        .any(|s| s.kind == kind::SERVER && s.label == "respond"));
}

#[test]
fn open_loop_load_measures_from_the_schedule() {
    let handle = Server::spawn(federation(6), ServerConfig::default()).expect("server binds");
    let report = load::run(
        handle.addr(),
        &LoadSpec {
            clients: 2,
            queries: 10,
            seed: 7,
            mode: LoadMode::Open { offered_qps: 200.0 },
            deadline_ms: None,
            mix: vec![paper::Q1.to_string()],
            expected: None,
        },
    );
    assert_eq!(report.answered, 10, "{report:?}");
    assert!(report.clean());
    assert!(report.p50_ms() > 0.0);
    assert!(report.p99_ms() >= report.p50_ms());
}

#[test]
fn workers_share_one_compiled_program_per_plan() {
    // the VM engine on a shared mediator: concurrent workers answering
    // the same queries must reuse one compiled program per distinct
    // optimized plan (compile once, execute many), and the wire answers
    // must stay byte-identical to the interpreter's
    let reference = federation(12);
    let mut vm_mediator = federation(12);
    vm_mediator.set_exec_engine(yat_mediator::ExecEngine::Vm);
    let handle = Server::spawn(
        vm_mediator,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr();
    let reference = &reference;
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                for _ in 0..3 {
                    for query in [paper::Q1, paper::Q2] {
                        let reply = client.query(query).expect("query round-trips");
                        assert_eq!(
                            reply.to_xml().to_xml(),
                            expected_answer(reference, query),
                            "vm wire answer must match the interpreter's"
                        );
                    }
                }
            });
        }
    });
    assert_eq!(
        handle.mediator().programs_compiled(),
        2,
        "24 queries over 4 workers compile exactly one program per distinct plan"
    );
    handle.shutdown();
    handle.join();
}
