//! Closed/open-loop load generation against a live `yat-server`.
//!
//! A *closed* loop models a fixed population of clients that each wait
//! for an answer before asking again — throughput adapts to the server,
//! latency stays honest. An *open* loop fires requests on a fixed
//! schedule regardless of completions, the way independent users arrive;
//! latency is measured from the *scheduled* send time, so queueing
//! behind a slow server is charged to the server (no coordinated
//! omission).
//!
//! Everything is seeded: the per-client query mix is a pure function of
//! `seed` and the client index, so two runs against equivalent servers
//! issue byte-identical request streams.

use crate::client::Client;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use yat_capability::protocol::ServerReply;
use yat_capability::xml::WireError;
use yat_prng::Rng;

/// How the generator paces its requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Each client sends its next query as soon as the previous one is
    /// answered.
    Closed,
    /// The client population sends `offered_qps` queries per second in
    /// aggregate, on a fixed schedule, whether or not earlier queries
    /// have completed.
    Open {
        /// Aggregate offered load, queries per second.
        offered_qps: f64,
    },
}

/// One load-generation run.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total queries across all clients.
    pub queries: usize,
    /// Seed for the per-client query mix.
    pub seed: u64,
    /// Pacing.
    pub mode: LoadMode,
    /// Per-request deadline forwarded to the server, if any.
    pub deadline_ms: Option<u64>,
    /// Negotiate `stream="chunked"` on every query: answers arrive as
    /// chunk frames and are reassembled client-side (byte-verification
    /// against `expected` still applies to the reassembled answer), and
    /// time-to-first-row is recorded per answered query.
    pub stream: bool,
    /// The query texts to draw from, uniformly.
    pub mix: Vec<String>,
    /// Expected serialized `<answer>` reply per query text; when set,
    /// every answer is compared byte-for-byte and mismatches counted.
    pub expected: Option<HashMap<String, String>>,
}

impl LoadSpec {
    /// A closed-loop spec over `mix` with the acceptance-run shape
    /// (8 clients, 200 queries, fixed seed).
    pub fn closed(mix: Vec<String>) -> LoadSpec {
        LoadSpec {
            clients: 8,
            queries: 200,
            seed: 20260807,
            mode: LoadMode::Closed,
            deadline_ms: None,
            stream: false,
            mix,
            expected: None,
        }
    }
}

/// What a run observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Queries sent (first attempts; overload retries not included).
    pub sent: u64,
    /// Queries answered with `Answer`.
    pub answered: u64,
    /// `Overloaded` replies received (each is retried after the hint).
    pub overloaded: u64,
    /// `Error` replies received.
    pub errors: u64,
    /// Wire-level failures (framing, I/O, unexpected verbs).
    pub protocol_errors: u64,
    /// Answers that differed from the expected bytes.
    pub mismatches: u64,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Answered-query latencies in milliseconds, sorted ascending.
    pub latencies_ms: Vec<f64>,
    /// Time-to-first-row in milliseconds per answered streamed query,
    /// sorted ascending; empty unless the spec streams.
    pub ttfr_ms: Vec<f64>,
}

impl LoadReport {
    /// Achieved throughput in queries per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.answered as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// The `q`-quantile latency in milliseconds (`q` in `[0, 1]`),
    /// nearest-rank over answered queries; zero when nothing answered.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        nearest_rank(&self.latencies_ms, q)
    }

    /// The `q`-quantile time-to-first-row in milliseconds, nearest-rank
    /// over answered streamed queries; zero when nothing streamed.
    pub fn ttfr_percentile_ms(&self, q: f64) -> f64 {
        nearest_rank(&self.ttfr_ms, q)
    }

    /// p50 latency in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.percentile_ms(0.50)
    }

    /// p95 latency in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.percentile_ms(0.95)
    }

    /// p99 latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.percentile_ms(0.99)
    }

    /// True when every query was answered correctly: nothing failed at
    /// the wire level, no server errors, no byte mismatches.
    pub fn clean(&self) -> bool {
        self.protocol_errors == 0 && self.errors == 0 && self.mismatches == 0
    }

    fn absorb(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.answered += other.answered;
        self.overloaded += other.overloaded;
        self.errors += other.errors;
        self.protocol_errors += other.protocol_errors;
        self.mismatches += other.mismatches;
        self.latencies_ms.extend(other.latencies_ms);
        self.ttfr_ms.extend(other.ttfr_ms);
    }
}

/// Nearest-rank quantile over an ascending-sorted slice; zero when
/// empty.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Runs the load against `addr`, one thread per client, and aggregates
/// the per-client observations.
pub fn run(addr: SocketAddr, spec: &LoadSpec) -> LoadReport {
    let clients = spec.clients.max(1);
    let start = Instant::now();
    let mut report = LoadReport::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|index| {
                let spec = spec.clone();
                scope.spawn(move || run_client(addr, &spec, index))
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(client_report) => report.absorb(client_report),
                Err(_) => report.protocol_errors += 1,
            }
        }
    });
    report.elapsed = start.elapsed();
    report
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    report
        .ttfr_ms
        .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    report
}

/// One client's share of the run.
fn run_client(addr: SocketAddr, spec: &LoadSpec, index: usize) -> LoadReport {
    let mut report = LoadReport::default();
    let clients = spec.clients.max(1);
    // spread the total across clients, the first `queries % clients`
    // taking one extra
    let share = spec.queries / clients + usize::from(index < spec.queries % clients);
    if share == 0 || spec.mix.is_empty() {
        return report;
    }
    let mut client = match Client::connect_retry(addr, Duration::from_secs(5)) {
        Ok(client) => client,
        Err(_) => {
            report.protocol_errors += 1;
            return report;
        }
    };
    let mut rng =
        Rng::seed_from_u64(spec.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    // open-loop schedule: this client's slice of the aggregate rate
    let interval = match spec.mode {
        LoadMode::Closed => None,
        LoadMode::Open { offered_qps } => Some(Duration::from_secs_f64(
            clients as f64 / offered_qps.max(0.001),
        )),
    };
    let started = Instant::now();
    for i in 0..share {
        let text = spec.mix[rng.gen_range(0..spec.mix.len())].clone();
        // the moment this query was *supposed* to leave, which for an
        // open loop may already be in the past
        let scheduled = match interval {
            None => Instant::now(),
            Some(step) => {
                let at = started + step.mul_f64(i as f64);
                if let Some(wait) = at.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                at
            }
        };
        report.sent += 1;
        loop {
            // streamed queries reassemble chunk frames and record
            // time-to-first-row; otherwise identical bookkeeping
            let (reply, ttfr) = if spec.stream {
                let streamed = match spec.deadline_ms {
                    Some(ms) => client.query_streamed_with_deadline(text.clone(), ms),
                    None => client.query_streamed(text.clone()),
                };
                match streamed {
                    Ok(s) => (Ok(s.reply), Some(s.ttfr)),
                    Err(WireError::Stream(_)) => {
                        // a typed stream failure (abort, short stream):
                        // the query failed server-side, the framing is
                        // intact only for aborts — count it and stop
                        // this connection to stay conservative
                        report.errors += 1;
                        return report;
                    }
                    Err(e) => (Err(e), None),
                }
            } else {
                let reply = match spec.deadline_ms {
                    Some(ms) => client.query_with_deadline(text.clone(), ms),
                    None => client.query(text.clone()),
                };
                (reply, None)
            };
            match reply {
                Ok(ServerReply::Answer { out, .. }) => {
                    report.answered += 1;
                    report
                        .latencies_ms
                        .push(scheduled.elapsed().as_secs_f64() * 1e3);
                    if let Some(t) = ttfr {
                        report.ttfr_ms.push(t.as_secs_f64() * 1e3);
                    }
                    if let Some(expected) = &spec.expected {
                        let got = ServerReply::answer(out).to_xml().to_xml();
                        if expected.get(&text).map(String::as_str) != Some(got.as_str()) {
                            report.mismatches += 1;
                        }
                    }
                    break;
                }
                Ok(ServerReply::Overloaded { retry_after_ms }) => {
                    // honor the shed hint and try again; the retry is
                    // charged to this query's latency
                    report.overloaded += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                Ok(ServerReply::Error { .. }) => {
                    report.errors += 1;
                    break;
                }
                Ok(_) => {
                    report.protocol_errors += 1;
                    break;
                }
                Err(_) => {
                    report.protocol_errors += 1;
                    return report; // the stream is gone; stop this client
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let report = LoadReport {
            latencies_ms: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
            answered: 10,
            ..LoadReport::default()
        };
        assert_eq!(report.p50_ms(), 5.0);
        assert_eq!(report.p95_ms(), 10.0);
        assert_eq!(report.p99_ms(), 10.0);
        assert_eq!(report.percentile_ms(0.0), 1.0);
        assert_eq!(LoadReport::default().p99_ms(), 0.0);
    }

    #[test]
    fn clean_means_no_failures_of_any_kind() {
        let mut report = LoadReport {
            answered: 5,
            ..LoadReport::default()
        };
        assert!(report.clean());
        report.mismatches = 1;
        assert!(!report.clean());
    }
}
