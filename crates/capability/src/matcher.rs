//! The capability matcher: decides whether a filter conforms to a
//! source's Fpatterns and whether a plan fragment can be pushed to a
//! source.
//!
//! This is the machinery behind "the optimizer tries to match the Bind
//! operation with the Wais capabilities that have been declared"
//! (Section 5.3). Because the description is *typed* (unlike Disco) and
//! describes a *language* (unlike TSIMMIS templates), matching is a
//! static walk — no round-trip to the wrapper is needed.

use crate::flags::InstFlag;
use crate::fpattern::{FEdge, FLabel, FOcc, FPattern, Fmodel};
use crate::interface::{Interface, OpKind};
use std::fmt;
use yat_algebra::{Alg, Operand, Pred};
use yat_model::{Occ, PLabel, Pattern};

/// Why a filter or plan cannot be handled by a source.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// Human-readable reason, mentioning the offending construct.
    pub reason: String,
}

impl Rejection {
    fn new(reason: impl Into<String>) -> Self {
        Rejection {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for Rejection {}

/// Checks that `filter` is a valid filter for a source exporting
/// `fpattern` (resolving references in `fmodel`).
pub fn accepts_filter(
    fmodel: &Fmodel,
    fpattern: &FPattern,
    filter: &Pattern,
) -> Result<(), Rejection> {
    let mut m = FMatcher {
        fmodel,
        fuel: 100_000,
    };
    m.check(fpattern, filter)
}

struct FMatcher<'a> {
    fmodel: &'a Fmodel,
    fuel: u32,
}

impl<'a> FMatcher<'a> {
    fn check(&mut self, fp: &FPattern, filter: &Pattern) -> Result<(), Rejection> {
        if self.fuel == 0 {
            return Err(Rejection::new("capability check exceeded its work budget"));
        }
        self.fuel -= 1;
        match (fp, filter) {
            // wildcards impose nothing on the source
            (_, Pattern::Wildcard) => Ok(()),
            (_, Pattern::Union(branches)) => {
                // every branch the query may take must be supported
                for b in branches {
                    self.check(fp, b)?;
                }
                Ok(())
            }
            (FPattern::Ref(name), _) => {
                let resolved = self.fmodel.get(name).ok_or_else(|| {
                    Rejection::new(format!(
                        "unknown Fpattern `{name}` in fmodel `{}`",
                        self.fmodel.name
                    ))
                })?;
                // clone breaks the borrow on self.fmodel for recursion
                let resolved = resolved.clone();
                self.check(&resolved, filter)
            }
            (FPattern::Union(branches), f) => {
                let mut reasons = Vec::new();
                for b in branches {
                    match self.check(b, f) {
                        Ok(()) => return Ok(()),
                        Err(r) => reasons.push(r.reason),
                    }
                }
                Err(Rejection::new(format!(
                    "filter `{f}` fits no alternative: {}",
                    reasons.join(" / ")
                )))
            }
            (FPattern::Leaf(t), f) => match f {
                Pattern::TreeVar(_) => Ok(()),
                Pattern::Node {
                    label: PLabel::Atom(ft),
                    edges,
                } if edges.is_empty() => {
                    if ft == t {
                        Ok(())
                    } else {
                        Err(Rejection::new(format!("type mismatch: {ft} vs {t}")))
                    }
                }
                Pattern::Node {
                    label: PLabel::Const(a),
                    edges,
                } if edges.is_empty() && a.atom_type() == *t => Ok(()),
                other => Err(Rejection::new(format!(
                    "`{other}` cannot stand for an atomic {t} value"
                ))),
            },
            (FPattern::Node { bind, .. }, Pattern::TreeVar(v)) => {
                if bind.allows_tree() {
                    Ok(())
                } else {
                    Err(Rejection::new(format!(
                        "variable ${v} not allowed here (bind={bind})"
                    )))
                }
            }
            (FPattern::Node { .. }, Pattern::Ref(r)) => Err(Rejection::new(format!(
                "filter references mediator pattern `&{r}`, opaque to the source"
            ))),
            (
                FPattern::Node {
                    label: flabel,
                    bind,
                    inst,
                    edges: fedges,
                },
                Pattern::Node { label, edges },
            ) => {
                // label conformance
                match (label, flabel) {
                    (PLabel::Sym(s), FLabel::Sym(t)) if s == t => {}
                    (PLabel::Sym(s), FLabel::Sym(t)) => {
                        return Err(Rejection::new(format!(
                            "label `{s}` where source expects `{t}`"
                        )))
                    }
                    (PLabel::Sym(_), FLabel::AnySym) => {}
                    (PLabel::Const(_) | PLabel::Atom(_), fl) => {
                        return Err(Rejection::new(format!(
                            "atomic label `{label}` where source expects a `{fl}` node"
                        )))
                    }
                    (PLabel::Var(v), FLabel::AnySym) => {
                        if !bind.allows_label() {
                            return Err(Rejection::new(format!(
                                "label variable ~${v} not allowed (bind={bind})"
                            )));
                        }
                        if *inst == InstFlag::Ground {
                            return Err(Rejection::new(format!(
                                "label must be ground here, cannot use ~${v}"
                            )));
                        }
                    }
                    (PLabel::AnySym | PLabel::Any, FLabel::AnySym) => {
                        if *inst == InstFlag::Ground {
                            return Err(Rejection::new(
                                "label must be ground here, cannot match any symbol",
                            ));
                        }
                    }
                    (PLabel::Var(v), FLabel::Sym(t)) => {
                        return Err(Rejection::new(format!(
                            "label variable ~${v} where source fixes label `{t}`"
                        )))
                    }
                    (PLabel::AnySym | PLabel::Any, FLabel::Sym(t)) => {
                        return Err(Rejection::new(format!(
                            "wildcard label where source fixes label `{t}`"
                        )))
                    }
                }
                // edge conformance: each filter edge must find a host fedge
                for e in edges {
                    self.check_edge(e, fedges)?;
                }
                Ok(())
            }
        }
    }

    fn check_edge(&mut self, e: &yat_model::Edge, fedges: &[FEdge]) -> Result<(), Rejection> {
        let mut reasons = Vec::new();
        for fe in fedges {
            match self.try_edge(e, fe) {
                Ok(()) => return Ok(()),
                Err(r) => reasons.push(r.reason),
            }
        }
        Err(Rejection::new(format!(
            "filter edge `{}` not supported: {}",
            e.pattern,
            if reasons.is_empty() {
                "no edges declared here".to_string()
            } else {
                reasons.join(" / ")
            }
        )))
    }

    fn try_edge(&mut self, e: &yat_model::Edge, fe: &FEdge) -> Result<(), Rejection> {
        match (e.occ, fe.occ) {
            // a star filter edge needs a star fedge
            (Occ::Star, FOcc::One) => {
                return Err(Rejection::new("star navigation over a single-valued edge"))
            }
            (Occ::One | Occ::Opt, FOcc::Star) if fe.inst == InstFlag::Ground => {
                // ground star edges (tuples) require named access: fine,
                // One edges are exactly named access
            }
            (Occ::One | Occ::Opt, FOcc::Star) if fe.inst == InstFlag::None => {
                return Err(Rejection::new(
                    "positional/named access into a collection the source only iterates",
                ));
            }
            _ => {}
        }
        if fe.occ == FOcc::Star && fe.inst == InstFlag::Ground && e.occ == Occ::Star {
            return Err(Rejection::new(
                "star navigation where the source requires fully instantiated edges",
            ));
        }
        self.check(&fe.child, &e.pattern)
    }
}

/// Checks whether a whole plan fragment can be evaluated by the source
/// described by `iface`. On success the mediator may wrap the fragment in
/// [`Alg::Push`].
pub fn pushable(iface: &Interface, plan: &Alg) -> Result<(), Rejection> {
    match plan {
        Alg::Source { name, .. } => {
            if iface.export(name).is_some() {
                Ok(())
            } else {
                Err(Rejection::new(format!(
                    "`{name}` is not exported by `{}`",
                    iface.name
                )))
            }
        }
        Alg::Bind { input, filter, .. } => {
            require_op(iface, "bind", OpKind::Algebra)?;
            if let Some((fm, fp)) = iface.bind_fpattern() {
                accepts_filter(fm, fp, filter).map_err(|r| {
                    Rejection::new(format!("bind filter rejected by `{}`: {}", iface.name, r))
                })?;
            }
            pushable(iface, input)
        }
        Alg::Select { input, pred } => {
            require_op(iface, "select", OpKind::Algebra)?;
            pred_pushable(iface, pred)?;
            pushable(iface, input)
        }
        Alg::Project { input, .. } => {
            require_op(iface, "project", OpKind::Algebra)?;
            pushable(iface, input)
        }
        Alg::Map { input, expr, .. } => {
            require_op(iface, "map", OpKind::Algebra)?;
            operand_pushable(iface, expr)?;
            pushable(iface, input)
        }
        Alg::Join { left, right, pred } => {
            require_op(iface, "join", OpKind::Algebra)?;
            pred_pushable(iface, pred)?;
            pushable(iface, left)?;
            pushable(iface, right)
        }
        Alg::DJoin { left, right } => {
            require_op(iface, "djoin", OpKind::Algebra)?;
            pushable(iface, left)?;
            pushable(iface, right)
        }
        Alg::Union { left, right } | Alg::Intersect { left, right } | Alg::Diff { left, right } => {
            let name = match plan {
                Alg::Union { .. } => "union",
                Alg::Intersect { .. } => "intersect",
                _ => "diff",
            };
            require_op(iface, name, OpKind::Algebra)?;
            pushable(iface, left)?;
            pushable(iface, right)
        }
        Alg::Sort { input, .. } => {
            require_op(iface, "sort", OpKind::Algebra)?;
            pushable(iface, input)
        }
        Alg::Group { input, .. } => {
            require_op(iface, "group", OpKind::Algebra)?;
            pushable(iface, input)
        }
        Alg::TreeOp { .. } => Err(Rejection::new(
            "Tree construction always runs at the mediator",
        )),
        Alg::Push { source, .. } => Err(Rejection::new(format!("already delegated to `{source}`"))),
    }
}

fn require_op(iface: &Interface, name: &str, kind: OpKind) -> Result<(), Rejection> {
    match iface.operation(name) {
        Some(op) if op.kind == kind => Ok(()),
        Some(op) => Err(Rejection::new(format!(
            "`{name}` declared with kind `{}`, expected `{}`",
            op.kind.attr(),
            kind.attr()
        ))),
        None => Err(Rejection::new(format!(
            "source `{}` does not declare operation `{name}`",
            iface.name
        ))),
    }
}

fn pred_pushable(iface: &Interface, pred: &Pred) -> Result<(), Rejection> {
    match pred {
        Pred::True => Ok(()),
        Pred::And(a, b) | Pred::Or(a, b) => {
            pred_pushable(iface, a)?;
            pred_pushable(iface, b)
        }
        Pred::Not(p) => pred_pushable(iface, p),
        Pred::Cmp { left, right, .. } => {
            if !iface.supports_comparisons() {
                return Err(Rejection::new(format!(
                    "source `{}` declares no comparison predicates",
                    iface.name
                )));
            }
            operand_pushable(iface, left)?;
            operand_pushable(iface, right)
        }
        Pred::Call { name, args } => {
            let op = iface.operation(name).ok_or_else(|| {
                Rejection::new(format!(
                    "predicate `{name}` is not an operation of `{}`",
                    iface.name
                ))
            })?;
            if !matches!(op.kind, OpKind::External | OpKind::Boolean) {
                return Err(Rejection::new(format!(
                    "`{name}` is not a predicate (kind `{}`)",
                    op.kind.attr()
                )));
            }
            for a in args {
                operand_pushable(iface, a)?;
            }
            Ok(())
        }
    }
}

fn operand_pushable(iface: &Interface, op: &Operand) -> Result<(), Rejection> {
    match op {
        Operand::Var(_) | Operand::Const(_) => Ok(()),
        Operand::Call { name, args } => {
            let decl = iface.operation(name).ok_or_else(|| {
                Rejection::new(format!(
                    "function `{name}` is not an operation of `{}`",
                    iface.name
                ))
            })?;
            if decl.kind != OpKind::External {
                return Err(Rejection::new(format!(
                    "`{name}` is not an external function (kind `{}`)",
                    decl.kind.attr()
                )));
            }
            for a in args {
                operand_pushable(iface, a)?;
            }
            Ok(())
        }
    }
}
