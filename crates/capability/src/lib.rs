//! # yat-capability — wrapping query capabilities (Section 4)
//!
//! The paper's central wrapping claim is that a source's **query
//! language** — not just a set of canned queries, as in TSIMMIS — can be
//! described generically by combining the operational model with type
//! information. This crate implements that description language:
//!
//! * [`FPattern`]s — XML-serializable *filter patterns* annotated with
//!   `bind` and `inst` flags (Fig. 6): which positions of a filter a
//!   source lets you bind variables at, and which labels must be ground.
//!   An [`Fmodel`] is a named set of them.
//! * [`Interface`] — everything a wrapper exports: its structural models,
//!   exported documents, Fmodels, operation declarations
//!   (`bind`/`select`/... with `kind` ∈ {algebra, boolean, external}) and
//!   declared [`Equivalence`]s (the Wais `eq ⇒ contains` connection of
//!   Section 4.2).
//! * [`matcher`] — decides whether a candidate plan fragment can be
//!   evaluated by a source, giving a reason when it cannot (used by the
//!   optimizer's capability-based rewriting, Section 5.3).
//! * [`xml`] — the interface wire format, round-tripping the document of
//!   Fig. 6.
//! * [`plan_xml`] — XML serialization of algebra plans, filters,
//!   templates and predicates: how the mediator ships pushed plans to
//!   wrappers ("wrappers and mediators communicate data, structures and
//!   operations in XML", Section 2).
//! * [`protocol`] — the mediator↔wrapper verbs (`get-interface`,
//!   `get-document`, `execute`) and the client↔server verbs (`query`,
//!   `explain`, `stats`, `shutdown`) the serving layer speaks.
//! * [`framing`] — length-prefixed frames carrying those messages over a
//!   byte stream, with typed [`xml::WireError`]s for every way hostile
//!   bytes can fail to decode.

pub mod flags;
pub mod fpattern;
pub mod framing;
pub mod index;
pub mod interface;
pub mod matcher;
pub mod plan_xml;
pub mod protocol;
pub mod store;
pub mod tab_xml;
pub mod xml;

pub use flags::{BindFlag, InstFlag};
pub use fpattern::{FEdge, FLabel, FOcc, FPattern, Fmodel};
pub use index::{IndexPolicy, IndexReport};
pub use interface::{Equivalence, ExportDecl, Interface, OpKind, OperationDecl, SigItem};
pub use matcher::{accepts_filter, pushable, Rejection};
pub use store::{StorageReport, StorePolicy};

#[cfg(test)]
mod tests;
