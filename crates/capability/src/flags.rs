//! The `bind` and `inst` restriction flags of filter patterns (Fig. 6).

use std::fmt;

/// What kind of variable, if any, a filter may place at a position.
///
/// "A bind flag can be used to indicate that the corresponding node cannot
/// contain a variable or only a tree or label variable" (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BindFlag {
    /// No restriction (attribute absent).
    #[default]
    Any,
    /// Only a tree variable may bind here (`bind="tree"`): the source can
    /// return the whole subtree but not decompose it further at this
    /// position.
    Tree,
    /// Only a label variable may bind here (`bind="label"`).
    Label,
    /// No variable may bind here (`bind="none"`): e.g. O2 prevents
    /// extraction of class *schema* information (Fig. 6 line 5).
    None,
}

impl BindFlag {
    /// The XML attribute value (`None` when the attribute is omitted).
    pub fn attr(self) -> Option<&'static str> {
        match self {
            BindFlag::Any => None,
            BindFlag::Tree => Some("tree"),
            BindFlag::Label => Some("label"),
            BindFlag::None => Some("none"),
        }
    }

    /// Parses the XML attribute value.
    pub fn from_attr(s: &str) -> Option<Self> {
        match s {
            "tree" => Some(BindFlag::Tree),
            "label" => Some(BindFlag::Label),
            "none" => Some(BindFlag::None),
            _ => Option::None,
        }
    }

    /// May a tree variable appear here?
    pub fn allows_tree(self) -> bool {
        matches!(self, BindFlag::Any | BindFlag::Tree)
    }

    /// May a label variable appear here?
    pub fn allows_label(self) -> bool {
        matches!(self, BindFlag::Any | BindFlag::Label)
    }
}

impl fmt::Display for BindFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.attr().unwrap_or("any"))
    }
}

/// How instantiated a label or edge must be.
///
/// "An inst flag can be used to indicate that the corresponding label or
/// edge must be completely instantiated (ground value) or left unchanged
/// (none value)" (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InstFlag {
    /// No restriction (attribute absent).
    #[default]
    Free,
    /// Must be ground: on a label position, the filter must name a
    /// concrete symbol (O2 requires class names instantiated, Fig. 6
    /// line 5); on an edge, children must be addressed by concrete named
    /// edges, not star navigation (tuple attributes, Fig. 6 line 15).
    Ground,
    /// Must be left unchanged: on an edge, elements can only be reached
    /// through star navigation, never positionally (set/bag/list members,
    /// Fig. 6 lines 19-29).
    None,
}

impl InstFlag {
    /// The XML attribute value (`None` when the attribute is omitted).
    pub fn attr(self) -> Option<&'static str> {
        match self {
            InstFlag::Free => Option::None,
            InstFlag::Ground => Some("ground"),
            InstFlag::None => Some("none"),
        }
    }

    /// Parses the XML attribute value.
    pub fn from_attr(s: &str) -> Option<Self> {
        match s {
            "ground" => Some(InstFlag::Ground),
            "none" => Some(InstFlag::None),
            _ => Option::None,
        }
    }
}

impl fmt::Display for InstFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.attr().unwrap_or("free"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_attr_roundtrip() {
        for b in [BindFlag::Tree, BindFlag::Label, BindFlag::None] {
            assert_eq!(BindFlag::from_attr(b.attr().unwrap()), Some(b));
        }
        assert_eq!(BindFlag::Any.attr(), Option::None);
        assert_eq!(BindFlag::from_attr("bogus"), Option::None);
    }

    #[test]
    fn inst_attr_roundtrip() {
        for i in [InstFlag::Ground, InstFlag::None] {
            assert_eq!(InstFlag::from_attr(i.attr().unwrap()), Some(i));
        }
        assert_eq!(InstFlag::Free.attr(), Option::None);
    }

    #[test]
    fn bind_permissions() {
        assert!(BindFlag::Any.allows_tree() && BindFlag::Any.allows_label());
        assert!(BindFlag::Tree.allows_tree() && !BindFlag::Tree.allows_label());
        assert!(!BindFlag::Label.allows_tree() && BindFlag::Label.allows_label());
        assert!(!BindFlag::None.allows_tree() && !BindFlag::None.allows_label());
    }
}
