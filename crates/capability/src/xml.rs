//! XML (de)serialization of interfaces, Fpatterns and structural
//! patterns — the wire format of Fig. 6.

use crate::flags::{BindFlag, InstFlag};
use crate::fpattern::{FEdge, FLabel, FOcc, FPattern, Fmodel};
use crate::interface::{Equivalence, ExportDecl, Interface, OpKind, OperationDecl, SigItem};
use std::fmt;
use yat_model::{Atom, AtomType, Edge, Model, Occ, PLabel, Pattern, StarBind};
use yat_xml::Element;

/// A failure anywhere on the wire: a payload that does not decode, a
/// frame that ends early, a verb no protocol knows, or the socket-level
/// faults a networked deployment adds on top.
///
/// Typed so callers can distinguish "the bytes are garbage" from "the
/// peer is slow" from "the peer crashed" — the serving layer maps these
/// onto different client-visible responses — while every variant still
/// renders a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Structurally invalid XML or an ill-formed payload inside it.
    Malformed(String),
    /// An element name that is not a verb of the protocol being parsed.
    UnknownVerb(String),
    /// A required attribute or child element is absent.
    Missing {
        /// The element that is incomplete (its wire tag).
        element: String,
        /// What was expected of it.
        what: String,
    },
    /// A length-prefixed frame ended before its declared length.
    Truncated {
        /// Bytes the frame header promised.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A frame header declared a length beyond the permitted maximum.
    FrameTooLarge {
        /// The declared payload length.
        declared: u64,
        /// The receiver's limit.
        max: u64,
    },
    /// A socket- or stream-level I/O failure.
    Io(String),
    /// The round trip exceeded its deadline.
    Timeout(String),
    /// The remote side failed while handling the request (its panic was
    /// contained and converted into this error).
    Remote(String),
    /// A chunked answer stream violated its protocol: an out-of-order
    /// chunk sequence number, a terminal frame whose counts disagree
    /// with what arrived, a connection closed mid-stream, or a typed
    /// `stream-abort` from the producer. Distinct from [`Self::Remote`]
    /// so a consumer can tell "the answer failed" from "part of the
    /// answer is missing" — a short stream must never read as a short
    /// answer.
    Stream(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed(m) => write!(f, "wire format error: {m}"),
            WireError::UnknownVerb(m) => write!(f, "wire format error: {m}"),
            WireError::Missing { element, what } => {
                write!(f, "wire format error: <{element}> missing {what}")
            }
            WireError::Truncated { expected, got } => write!(
                f,
                "wire frame truncated: expected {expected} bytes, got {got}"
            ),
            WireError::FrameTooLarge { declared, max } => write!(
                f,
                "wire frame too large: declared {declared} bytes, limit {max}"
            ),
            WireError::Io(m) => write!(f, "wire i/o error: {m}"),
            WireError::Timeout(m) => write!(f, "{m}"),
            WireError::Remote(m) => write!(f, "{m}"),
            WireError::Stream(m) => write!(f, "answer stream error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

fn err(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

// ---------------------------------------------------------------- interface

/// Serializes a full interface (Fig. 6 shape).
pub fn interface_to_xml(i: &Interface) -> Element {
    let mut el = Element::new("interface").with_attr("name", i.name.clone());
    for m in &i.models {
        el.push_element(model_to_xml(m));
    }
    for fm in &i.fmodels {
        el.push_element(fmodel_to_xml(fm));
    }
    for e in &i.exports {
        el.push_element(
            Element::new("export")
                .with_attr("name", e.name.clone())
                .with_attr("model", e.model.clone())
                .with_attr("pattern", e.pattern.clone()),
        );
    }
    for o in &i.operations {
        el.push_element(operation_to_xml(o));
    }
    for eq in &i.equivalences {
        match eq {
            Equivalence::EqImpliesContains { predicate } => el.push_element(
                Element::new("equivalence")
                    .with_attr("kind", "eq-implies-contains")
                    .with_attr("predicate", predicate.clone()),
            ),
        }
    }
    el
}

/// Parses an interface document.
pub fn interface_from_xml(el: &Element) -> Result<Interface, WireError> {
    if el.name != "interface" {
        return Err(err(format!("expected <interface>, found <{}>", el.name)));
    }
    let mut i = Interface::new(
        el.attr("name")
            .ok_or_else(|| err("<interface> missing name"))?,
    );
    for child in el.elements() {
        match child.name.as_str() {
            "model" => i.models.push(model_from_xml(child)?),
            "fmodel" => i.fmodels.push(fmodel_from_xml(child)?),
            "export" => i.exports.push(ExportDecl {
                name: child
                    .attr("name")
                    .ok_or_else(|| err("<export> missing name"))?
                    .into(),
                model: child.attr("model").unwrap_or_default().into(),
                pattern: child.attr("pattern").unwrap_or_default().into(),
            }),
            "operation" => i.operations.push(operation_from_xml(child)?),
            "equivalence" => match child.attr("kind") {
                Some("eq-implies-contains") => {
                    i.equivalences.push(Equivalence::EqImpliesContains {
                        predicate: child
                            .attr("predicate")
                            .ok_or_else(|| err("<equivalence> missing predicate"))?
                            .into(),
                    })
                }
                other => return Err(err(format!("unknown equivalence kind {other:?}"))),
            },
            other => return Err(err(format!("unexpected <{other}> in <interface>"))),
        }
    }
    Ok(i)
}

fn operation_to_xml(o: &OperationDecl) -> Element {
    let mut el = Element::new("operation")
        .with_attr("name", o.name.clone())
        .with_attr("kind", o.kind.attr());
    if !o.input.is_empty() {
        let mut input = Element::new("input");
        for s in &o.input {
            input.push_element(sig_to_xml(s));
        }
        el.push_element(input);
    }
    if !o.output.is_empty() {
        let mut output = Element::new("output");
        for s in &o.output {
            output.push_element(sig_to_xml(s));
        }
        el.push_element(output);
    }
    el
}

fn operation_from_xml(el: &Element) -> Result<OperationDecl, WireError> {
    let name = el
        .attr("name")
        .ok_or_else(|| err("<operation> missing name"))?
        .to_string();
    let kind = el
        .attr("kind")
        .and_then(OpKind::from_attr)
        .ok_or_else(|| err(format!("operation `{name}` has a bad kind")))?;
    let sig = |tag: &str| -> Result<Vec<SigItem>, WireError> {
        match el.child(tag) {
            None => Ok(vec![]),
            Some(s) => s.elements().map(sig_from_xml).collect(),
        }
    };
    Ok(OperationDecl {
        name,
        kind,
        input: sig("input")?,
        output: sig("output")?,
    })
}

fn sig_to_xml(s: &SigItem) -> Element {
    match s {
        SigItem::Value { model, pattern } => Element::new("value")
            .with_attr("model", model.clone())
            .with_attr("pattern", pattern.clone()),
        SigItem::Filter { model, pattern } => Element::new("filter")
            .with_attr("model", model.clone())
            .with_attr("pattern", pattern.clone()),
        SigItem::Leaf(t) => Element::new("leaf").with_attr("label", t.name()),
    }
}

fn sig_from_xml(el: &Element) -> Result<SigItem, WireError> {
    match el.name.as_str() {
        "value" => Ok(SigItem::Value {
            model: el.attr("model").unwrap_or_default().into(),
            pattern: el
                .attr("pattern")
                .or(el.attr("label"))
                .unwrap_or_default()
                .into(),
        }),
        "filter" => Ok(SigItem::Filter {
            model: el.attr("model").unwrap_or_default().into(),
            pattern: el.attr("pattern").unwrap_or_default().into(),
        }),
        "leaf" => {
            let t = el
                .attr("label")
                .and_then(AtomType::from_name)
                .ok_or_else(|| err("<leaf> with unknown label"))?;
            Ok(SigItem::Leaf(t))
        }
        other => Err(err(format!("unexpected <{other}> in signature"))),
    }
}

// ---------------------------------------------------------------- fpatterns

/// Serializes an Fmodel (Fig. 6 lines 2–33).
pub fn fmodel_to_xml(m: &Fmodel) -> Element {
    let mut el = Element::new("fmodel").with_attr("name", m.name.clone());
    for (name, p) in &m.patterns {
        el.push_element(
            Element::new("fpattern")
                .with_attr("name", name.clone())
                .with_child(fpattern_to_xml(p)),
        );
    }
    el
}

/// Parses an Fmodel element.
pub fn fmodel_from_xml(el: &Element) -> Result<Fmodel, WireError> {
    let mut m = Fmodel::new(
        el.attr("name")
            .ok_or_else(|| err("<fmodel> missing name"))?,
    );
    for fp in el.children_named("fpattern") {
        let name = fp
            .attr("name")
            .ok_or_else(|| err("<fpattern> missing name"))?;
        let body = fp
            .elements()
            .next()
            .ok_or_else(|| err(format!("<fpattern name=\"{name}\"> is empty")))?;
        m.patterns
            .push((name.to_string(), fpattern_from_xml(body)?));
    }
    Ok(m)
}

/// Serializes one Fpattern node.
pub fn fpattern_to_xml(p: &FPattern) -> Element {
    match p {
        FPattern::Node {
            label,
            bind,
            inst,
            edges,
        } => {
            let mut el = Element::new("node").with_attr(
                "label",
                match label {
                    FLabel::Sym(s) => s.clone(),
                    FLabel::AnySym => "Symbol".to_string(),
                },
            );
            if let Some(b) = bind.attr() {
                el.set_attr("bind", b);
            }
            if let Some(i) = inst.attr() {
                el.set_attr("inst", i);
            }
            for e in edges {
                match e.occ {
                    FOcc::One => el.push_element(fpattern_to_xml(&e.child)),
                    FOcc::Star => {
                        let mut star = Element::new("star");
                        if let Some(i) = e.inst.attr() {
                            star.set_attr("inst", i);
                        }
                        star.push_element(fpattern_to_xml(&e.child));
                        el.push_element(star);
                    }
                }
            }
            el
        }
        FPattern::Union(branches) => {
            let mut el = Element::new("union");
            for b in branches {
                el.push_element(fpattern_to_xml(b));
            }
            el
        }
        FPattern::Ref(name) => Element::new("ref").with_attr("pattern", name.clone()),
        FPattern::Leaf(t) => Element::new("leaf").with_attr("label", t.name()),
    }
}

/// Parses one Fpattern node. Accepts the Fig. 6 synonyms: `<value
/// pattern="X"/>` and `<value label="X"/>` as references.
pub fn fpattern_from_xml(el: &Element) -> Result<FPattern, WireError> {
    match el.name.as_str() {
        "node" => {
            let label = match el.attr("label") {
                Some("Symbol") => FLabel::AnySym,
                Some(s) => FLabel::Sym(s.to_string()),
                None => return Err(err("<node> missing label")),
            };
            let bind = match el.attr("bind") {
                None => BindFlag::Any,
                Some(b) => {
                    BindFlag::from_attr(b).ok_or_else(|| err(format!("bad bind flag `{b}`")))?
                }
            };
            let inst = match el.attr("inst") {
                None => InstFlag::Free,
                Some(i) => {
                    InstFlag::from_attr(i).ok_or_else(|| err(format!("bad inst flag `{i}`")))?
                }
            };
            let mut edges = Vec::new();
            for c in el.elements() {
                if c.name == "star" {
                    let inst = match c.attr("inst") {
                        None => InstFlag::Free,
                        Some(i) => InstFlag::from_attr(i)
                            .ok_or_else(|| err(format!("bad inst flag `{i}`")))?,
                    };
                    let body = c
                        .elements()
                        .next()
                        .ok_or_else(|| err("<star> must wrap a pattern"))?;
                    edges.push(FEdge {
                        occ: FOcc::Star,
                        inst,
                        child: fpattern_from_xml(body)?,
                    });
                } else {
                    edges.push(FEdge::one(fpattern_from_xml(c)?));
                }
            }
            Ok(FPattern::Node {
                label,
                bind,
                inst,
                edges,
            })
        }
        "union" => Ok(FPattern::Union(
            el.elements()
                .map(fpattern_from_xml)
                .collect::<Result<_, _>>()?,
        )),
        "ref" | "value" => {
            let name = el
                .attr("pattern")
                .or(el.attr("label"))
                .ok_or_else(|| err(format!("<{}> missing pattern reference", el.name)))?;
            Ok(FPattern::Ref(name.to_string()))
        }
        "leaf" => {
            let t = el
                .attr("label")
                .and_then(AtomType::from_name)
                .ok_or_else(|| err("<leaf> with unknown label"))?;
            Ok(FPattern::Leaf(t))
        }
        other => Err(err(format!("unexpected <{other}> in fpattern"))),
    }
}

// ----------------------------------------------------- structural patterns

/// Serializes a structural model (Fig. 3 metadata).
pub fn model_to_xml(m: &Model) -> Element {
    let mut el = Element::new("model").with_attr("name", m.name.clone());
    for (name, p) in m.defs() {
        el.push_element(
            Element::new("pattern")
                .with_attr("name", name)
                .with_child(pattern_to_xml(p)),
        );
    }
    el
}

/// Parses a structural model element.
pub fn model_from_xml(el: &Element) -> Result<Model, WireError> {
    let mut m = Model::new(el.attr("name").ok_or_else(|| err("<model> missing name"))?);
    for p in el.children_named("pattern") {
        let name = p
            .attr("name")
            .ok_or_else(|| err("<pattern> missing name"))?;
        let body = p
            .elements()
            .next()
            .ok_or_else(|| err(format!("<pattern name=\"{name}\"> is empty")))?;
        m.define(name, pattern_from_xml(body)?);
    }
    Ok(m)
}

/// Serializes a structural pattern / filter.
pub fn pattern_to_xml(p: &Pattern) -> Element {
    match p {
        Pattern::Node { label, edges } => {
            let mut el = match label {
                PLabel::Sym(s) => Element::new("node").with_attr("label", s.clone()),
                PLabel::Const(a) => Element::new("const")
                    .with_attr("type", a.atom_type().name())
                    .with_attr("value", a.to_string()),
                PLabel::Atom(t) => Element::new("leaf").with_attr("label", t.name()),
                PLabel::AnySym => Element::new("anysym"),
                PLabel::Any => Element::new("anylabel"),
                PLabel::Var(v) => Element::new("labelvar").with_attr("name", v.clone()),
            };
            for e in edges {
                let child = pattern_to_xml(&e.pattern);
                match (e.occ, &e.star_var) {
                    (Occ::One, _) => el.push_element(child),
                    (Occ::Opt, _) => el.push_element(Element::new("opt").with_child(child)),
                    (Occ::Star, None) => el.push_element(Element::new("star").with_child(child)),
                    (Occ::Star, Some((v, mode))) => el.push_element(
                        Element::new("star")
                            .with_attr("var", v.clone())
                            .with_attr(
                                "mode",
                                match mode {
                                    StarBind::Iterate => "iterate",
                                    StarBind::Collect => "collect",
                                },
                            )
                            .with_child(child),
                    ),
                }
            }
            el
        }
        Pattern::Union(branches) => {
            let mut el = Element::new("union");
            for b in branches {
                el.push_element(pattern_to_xml(b));
            }
            el
        }
        Pattern::Ref(name) => Element::new("ref").with_attr("name", name.clone()),
        Pattern::TreeVar(v) => Element::new("var").with_attr("name", v.clone()),
        Pattern::Wildcard => Element::new("any"),
    }
}

/// Parses a structural pattern / filter element.
pub fn pattern_from_xml(el: &Element) -> Result<Pattern, WireError> {
    let edges = |el: &Element| -> Result<Vec<Edge>, WireError> {
        let mut out = Vec::new();
        for c in el.elements() {
            match c.name.as_str() {
                "star" => {
                    let body = c
                        .elements()
                        .next()
                        .map(pattern_from_xml)
                        .transpose()?
                        .unwrap_or(Pattern::Wildcard);
                    let star_var = match (c.attr("var"), c.attr("mode")) {
                        (Some(v), Some("collect")) => Some((v.to_string(), StarBind::Collect)),
                        (Some(v), _) => Some((v.to_string(), StarBind::Iterate)),
                        (None, _) => None,
                    };
                    out.push(Edge {
                        occ: Occ::Star,
                        star_var,
                        pattern: body,
                    });
                }
                "opt" => {
                    let body = c
                        .elements()
                        .next()
                        .ok_or_else(|| err("<opt> must wrap a pattern"))?;
                    out.push(Edge::opt(pattern_from_xml(body)?));
                }
                _ => out.push(Edge::one(pattern_from_xml(c)?)),
            }
        }
        Ok(out)
    };
    match el.name.as_str() {
        "node" => {
            let label = el
                .attr("label")
                .ok_or_else(|| err("<node> missing label"))?;
            Ok(Pattern::Node {
                label: PLabel::Sym(label.into()),
                edges: edges(el)?,
            })
        }
        "anysym" => Ok(Pattern::Node {
            label: PLabel::AnySym,
            edges: edges(el)?,
        }),
        "anylabel" => Ok(Pattern::Node {
            label: PLabel::Any,
            edges: edges(el)?,
        }),
        "labelvar" => {
            let v = el
                .attr("name")
                .ok_or_else(|| err("<labelvar> missing name"))?;
            Ok(Pattern::Node {
                label: PLabel::Var(v.to_string()),
                edges: edges(el)?,
            })
        }
        "leaf" => {
            let t = el
                .attr("label")
                .and_then(AtomType::from_name)
                .ok_or_else(|| err("<leaf> with unknown label"))?;
            Ok(Pattern::atom(t))
        }
        "const" => {
            let t = el
                .attr("type")
                .and_then(AtomType::from_name)
                .ok_or_else(|| err("<const> with unknown type"))?;
            let raw = el
                .attr("value")
                .ok_or_else(|| err("<const> missing value"))?;
            let a = Atom::parse_typed(raw, t)
                .ok_or_else(|| err(format!("`{raw}` is not a valid {t}")))?;
            Ok(Pattern::constant(a))
        }
        "union" => Ok(Pattern::Union(
            el.elements()
                .map(pattern_from_xml)
                .collect::<Result<_, _>>()?,
        )),
        "ref" => {
            let name = el.attr("name").ok_or_else(|| err("<ref> missing name"))?;
            Ok(Pattern::Ref(name.to_string()))
        }
        "var" => {
            let v = el.attr("name").ok_or_else(|| err("<var> missing name"))?;
            Ok(Pattern::TreeVar(v.to_string()))
        }
        "any" => Ok(Pattern::Wildcard),
        other => Err(err(format!("unexpected <{other}> in pattern"))),
    }
}
