//! Operational interfaces: what a wrapper exports to the mediator
//! (Fig. 6, lines 35–43, plus exported documents and equivalences).

use crate::fpattern::Fmodel;
use std::fmt;
use yat_model::{AtomType, Model};

/// The kind of an exported operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A core algebra operator the source evaluates (`bind`, `select`,
    /// `project`, `map`, `join`...).
    Algebra,
    /// A boolean predicate (`eq`, `le`...).
    Boolean,
    /// A source-specific operation beyond the core model (`contains`,
    /// wrapped methods like `current_price`).
    External,
}

impl OpKind {
    /// The XML attribute value.
    pub fn attr(self) -> &'static str {
        match self {
            OpKind::Algebra => "algebra",
            OpKind::Boolean => "boolean",
            OpKind::External => "external",
        }
    }

    /// Parses the XML attribute value.
    pub fn from_attr(s: &str) -> Option<Self> {
        match s {
            "algebra" => Some(OpKind::Algebra),
            "boolean" => Some(OpKind::Boolean),
            "external" => Some(OpKind::External),
            _ => None,
        }
    }
}

/// One item of an operation signature.
#[derive(Debug, Clone, PartialEq)]
pub enum SigItem {
    /// A typed value: `<value model="o2model" pattern="Type"/>`.
    Value {
        /// Structural model name.
        model: String,
        /// Pattern within it.
        pattern: String,
    },
    /// A filter argument restricted to an Fpattern:
    /// `<filter model="o2fmodel" pattern="Ftype"/>`.
    Filter {
        /// Fmodel name.
        model: String,
        /// Fpattern within it.
        pattern: String,
    },
    /// An atomic leaf: `<leaf label="String"/>`.
    Leaf(AtomType),
}

/// A declared operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationDecl {
    /// Operation name (`bind`, `select`, `eq`, `contains`,
    /// `current_price`).
    pub name: String,
    /// Kind.
    pub kind: OpKind,
    /// Input signature (may be empty for unspecialized algebra ops).
    pub input: Vec<SigItem>,
    /// Output signature.
    pub output: Vec<SigItem>,
}

impl OperationDecl {
    /// An unspecialized algebra operation (`<operation name="select"
    /// kind="algebra"/>`).
    pub fn algebra(name: impl Into<String>) -> Self {
        OperationDecl {
            name: name.into(),
            kind: OpKind::Algebra,
            input: vec![],
            output: vec![],
        }
    }

    /// An unspecialized boolean predicate.
    pub fn boolean(name: impl Into<String>) -> Self {
        OperationDecl {
            name: name.into(),
            kind: OpKind::Boolean,
            input: vec![],
            output: vec![],
        }
    }
}

/// A named document the source exports, with its structural typing.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportDecl {
    /// Document/extent name (`artifacts`, `works`).
    pub name: String,
    /// Structural model containing its pattern.
    pub model: String,
    /// The pattern describing it.
    pub pattern: String,
}

/// A source-declared semantic connection between operations, used during
/// capability-based rewriting (the "semantic" wrapping step of
/// Section 4.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Equivalence {
    /// The Wais connection: a mediator equality `σ_{$x = c}` over
    /// variables bound *inside* a document `$w` implies the source
    /// predicate `predicate($w, c)` may be inserted over the whole
    /// document — sound because full-text search over-approximates
    /// element equality (a post-selection still runs at the mediator).
    EqImpliesContains {
        /// The source predicate name (`contains`).
        predicate: String,
    },
}

/// A wrapper's complete exported interface.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Interface {
    /// Interface name (`o2artifact`, `xmlartwork`).
    pub name: String,
    /// Structural models (schema-level metadata, Fig. 3).
    pub models: Vec<Model>,
    /// Filter grammars.
    pub fmodels: Vec<Fmodel>,
    /// Exported documents.
    pub exports: Vec<ExportDecl>,
    /// Declared operations.
    pub operations: Vec<OperationDecl>,
    /// Declared equivalences.
    pub equivalences: Vec<Equivalence>,
}

impl Interface {
    /// An empty interface.
    pub fn new(name: impl Into<String>) -> Self {
        Interface {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Looks up an operation by name.
    pub fn operation(&self, name: &str) -> Option<&OperationDecl> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// Looks up an exported document.
    pub fn export(&self, name: &str) -> Option<&ExportDecl> {
        self.exports.iter().find(|e| e.name == name)
    }

    /// Looks up an Fmodel.
    pub fn fmodel(&self, name: &str) -> Option<&Fmodel> {
        self.fmodels.iter().find(|m| m.name == name)
    }

    /// Looks up a structural model.
    pub fn model(&self, name: &str) -> Option<&Model> {
        self.models.iter().find(|m| m.name == name)
    }

    /// The Fpattern governing `bind` filters, if the `bind` operation was
    /// declared with a filter signature.
    pub fn bind_fpattern(&self) -> Option<(&Fmodel, &crate::fpattern::FPattern)> {
        let bind = self.operation("bind")?;
        for item in &bind.input {
            if let SigItem::Filter { model, pattern } = item {
                let fm = self.fmodel(model)?;
                let fp = fm.get(pattern)?;
                return Some((fm, fp));
            }
        }
        None
    }

    /// Whether the comparison operators are declared (a single `eq`
    /// declaration implies the usual total-order family for structured
    /// sources; Wais declares none).
    pub fn supports_comparisons(&self) -> bool {
        self.operations
            .iter()
            .any(|o| o.kind == OpKind::Boolean && o.name == "eq")
    }
}

impl fmt::Display for Interface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "interface {} {{", self.name)?;
        for e in &self.exports {
            writeln!(f, "  export {} : {}::{}", e.name, e.model, e.pattern)?;
        }
        for m in &self.fmodels {
            writeln!(f, "  fmodel {} ({} patterns)", m.name, m.patterns.len())?;
        }
        for o in &self.operations {
            writeln!(f, "  operation {} [{}]", o.name, o.kind.attr())?;
        }
        for eq in &self.equivalences {
            match eq {
                Equivalence::EqImpliesContains { predicate } => {
                    writeln!(f, "  equivalence eq ⇒ {predicate}")?
                }
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpattern::{o2_fmodel, wais_fmodel};

    fn o2_like_interface() -> Interface {
        let mut i = Interface::new("o2artifact");
        i.fmodels.push(o2_fmodel());
        i.operations.push(OperationDecl {
            name: "bind".into(),
            kind: OpKind::Algebra,
            input: vec![
                SigItem::Value {
                    model: "o2model".into(),
                    pattern: "Type".into(),
                },
                SigItem::Filter {
                    model: "o2fmodel".into(),
                    pattern: "Ftype".into(),
                },
            ],
            output: vec![SigItem::Value {
                model: "yat".into(),
                pattern: "Tab".into(),
            }],
        });
        i.operations.push(OperationDecl::algebra("select"));
        i.operations.push(OperationDecl::boolean("eq"));
        i
    }

    #[test]
    fn lookup_helpers() {
        let i = o2_like_interface();
        assert!(i.operation("bind").is_some());
        assert!(i.operation("tree").is_none());
        assert!(i.fmodel("o2fmodel").is_some());
        assert!(i.supports_comparisons());
        let (fm, fp) = i.bind_fpattern().expect("bind has a filter signature");
        assert_eq!(fm.name, "o2fmodel");
        assert!(matches!(fp, crate::fpattern::FPattern::Union(_)));
    }

    #[test]
    fn wais_like_interface_has_no_comparisons() {
        let mut i = Interface::new("xmlartwork");
        i.fmodels.push(wais_fmodel());
        i.operations.push(OperationDecl::algebra("select"));
        i.operations.push(OperationDecl {
            name: "contains".into(),
            kind: OpKind::External,
            input: vec![
                SigItem::Value {
                    model: "Artworks_Structure".into(),
                    pattern: "Work".into(),
                },
                SigItem::Leaf(AtomType::Str),
            ],
            output: vec![SigItem::Leaf(AtomType::Bool)],
        });
        i.equivalences.push(Equivalence::EqImpliesContains {
            predicate: "contains".into(),
        });
        assert!(!i.supports_comparisons());
        assert!(i.bind_fpattern().is_none(), "no bind declared yet");
        let shown = i.to_string();
        assert!(shown.contains("equivalence eq ⇒ contains"), "{shown}");
    }

    #[test]
    fn opkind_roundtrip() {
        for k in [OpKind::Algebra, OpKind::Boolean, OpKind::External] {
            assert_eq!(OpKind::from_attr(k.attr()), Some(k));
        }
        assert_eq!(OpKind::from_attr("weird"), None);
    }
}
