//! The index plane's control surface: the `YAT_INDEX` switch and the
//! per-execution accounting wrappers report back for `EXPLAIN ANALYZE`.
//!
//! The policy gates *evaluation strategy only*. A wrapper accepts and
//! rejects exactly the same plans, produces byte-identical answers and
//! moves identical wire traffic under either setting — the scan paths
//! stay in the tree as the oracle the differential harness holds the
//! indexed paths to.

use std::fmt;

/// Whether sources consult their indexes (structural, inverted,
/// per-extent field) or evaluate by scanning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexPolicy {
    /// Consult indexes; fall back to scans per-query for anything an
    /// index cannot cover.
    #[default]
    On,
    /// Scan everything — the reference behavior and differential oracle.
    Off,
}

impl IndexPolicy {
    /// The policy selected by the `YAT_INDEX` environment variable
    /// (`on` or `off`); indexed when unset. An invalid value falls back
    /// to indexed, loudly via [`yat_obs::warn`].
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("YAT_INDEX").ok().as_deref())
    }

    /// [`IndexPolicy::from_env`] on an explicit value (`None` = unset).
    pub fn from_env_value(value: Option<&str>) -> Self {
        let Some(value) = value else {
            return IndexPolicy::default();
        };
        match Self::parse(value) {
            Some(policy) => policy,
            None => {
                yat_obs::warn(format!(
                    "YAT_INDEX=`{value}` is not a valid index policy; accepted \
                     values are `on` or `off` — falling back to on"
                ));
                IndexPolicy::default()
            }
        }
    }

    /// Parses the `YAT_INDEX` syntax.
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "on" | "indexed" => Some(IndexPolicy::On),
            "off" | "scan" => Some(IndexPolicy::Off),
            _ => None,
        }
    }

    /// Whether indexes are consulted.
    pub fn is_on(self) -> bool {
        self == IndexPolicy::On
    }
}

impl fmt::Display for IndexPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexPolicy::On => write!(f, "on"),
            IndexPolicy::Off => write!(f, "off"),
        }
    }
}

/// What one pushed-plan execution did inside a wrapper: how many index
/// probes ran, how many candidates they seeded, and how much of the
/// collection was actually examined. Purely observational — reported
/// out-of-band next to the wire protocol (never *on* it), aggregated
/// into the `EXPLAIN ANALYZE` index section.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexReport {
    /// The collection/extent the plan ran over.
    pub collection: String,
    /// Whether an index drove the evaluation (`false` = scan path).
    pub indexed: bool,
    /// Index lookups performed (posting-list probes, path-hash probes,
    /// field-index probes).
    pub probes: u64,
    /// Candidates the probes seeded (documents, objects, or nodes).
    pub candidates: u64,
    /// Documents/objects actually examined to produce the answer.
    pub scanned: u64,
    /// Total size of the collection the plan addressed.
    pub collection_size: u64,
    /// Result rows produced.
    pub rows: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_default() {
        assert_eq!(IndexPolicy::parse("on"), Some(IndexPolicy::On));
        assert_eq!(IndexPolicy::parse("OFF"), Some(IndexPolicy::Off));
        assert_eq!(IndexPolicy::parse(" scan "), Some(IndexPolicy::Off));
        assert_eq!(IndexPolicy::parse("indexed"), Some(IndexPolicy::On));
        assert_eq!(IndexPolicy::parse("maybe"), None);
        assert_eq!(IndexPolicy::from_env_value(None), IndexPolicy::On);
        assert_eq!(IndexPolicy::from_env_value(Some("off")), IndexPolicy::Off);
        // invalid value: warn + fall back to on
        let warnings = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = warnings.clone();
        yat_obs::set_warn_sink(Some(Box::new(move |msg| {
            sink.lock().unwrap().push(msg.to_string());
        })));
        assert_eq!(IndexPolicy::from_env_value(Some("banana")), IndexPolicy::On);
        yat_obs::set_warn_sink(None);
        let got = warnings.lock().unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].contains("YAT_INDEX"), "{}", got[0]);
    }

    #[test]
    fn display_round_trips() {
        for p in [IndexPolicy::On, IndexPolicy::Off] {
            assert_eq!(IndexPolicy::parse(&p.to_string()), Some(p));
        }
    }
}
