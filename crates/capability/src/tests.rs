//! Cross-module tests: Fig. 6 round-trips, capability matching on the
//! paper's filters, plan wire format.

use crate::fpattern::{o2_fmodel, wais_fmodel};
use crate::interface::{Equivalence, Interface, OpKind, OperationDecl, SigItem};
use crate::matcher::{accepts_filter, pushable};
use crate::plan_xml::{plan_from_xml, plan_to_xml, pred_from_xml, pred_to_xml};
use crate::xml::{
    fmodel_from_xml, fmodel_to_xml, interface_from_xml, interface_to_xml, model_from_xml,
    model_to_xml, pattern_from_xml, pattern_to_xml,
};
use yat_algebra::{Alg, CmpOp, Operand, Pred, Template};
use yat_model::{AtomType, Model, Pattern};
use yat_yatl::parse_filter;

/// The operational part of the O2 interface (Fig. 6 lines 35–43), plus
/// the `project`/`join` operators OQL evidently supports and the exported
/// extents.
fn o2_interface() -> Interface {
    let mut i = Interface::new("o2artifact");
    i.fmodels.push(o2_fmodel());
    i.exports.push(crate::interface::ExportDecl {
        name: "artifacts".into(),
        model: "art".into(),
        pattern: "Artifacts".into(),
    });
    i.exports.push(crate::interface::ExportDecl {
        name: "persons".into(),
        model: "art".into(),
        pattern: "Persons".into(),
    });
    i.operations.push(OperationDecl {
        name: "bind".into(),
        kind: OpKind::Algebra,
        input: vec![
            SigItem::Value {
                model: "o2model".into(),
                pattern: "Type".into(),
            },
            SigItem::Filter {
                model: "o2fmodel".into(),
                pattern: "Ftype".into(),
            },
        ],
        output: vec![SigItem::Value {
            model: "yat".into(),
            pattern: "Tab".into(),
        }],
    });
    for op in ["select", "map", "project", "join", "djoin"] {
        i.operations.push(OperationDecl::algebra(op));
    }
    i.operations.push(OperationDecl::boolean("eq"));
    i.operations.push(OperationDecl {
        name: "current_price".into(),
        kind: OpKind::External,
        input: vec![SigItem::Value {
            model: "art".into(),
            pattern: "Artifact".into(),
        }],
        output: vec![SigItem::Leaf(AtomType::Float)],
    });
    i
}

fn wais_interface() -> Interface {
    let mut i = Interface::new("xmlartwork");
    i.fmodels.push(wais_fmodel());
    i.exports.push(crate::interface::ExportDecl {
        name: "works".into(),
        model: "Artworks_Structure".into(),
        pattern: "Works".into(),
    });
    i.operations.push(OperationDecl {
        name: "bind".into(),
        kind: OpKind::Algebra,
        input: vec![
            SigItem::Value {
                model: "Artworks_Structure".into(),
                pattern: "works".into(),
            },
            SigItem::Filter {
                model: "waisfmodel".into(),
                pattern: "Fworks".into(),
            },
        ],
        output: vec![SigItem::Value {
            model: "yat".into(),
            pattern: "Tab".into(),
        }],
    });
    i.operations.push(OperationDecl::algebra("select"));
    i.operations.push(OperationDecl {
        name: "contains".into(),
        kind: OpKind::External,
        input: vec![
            SigItem::Value {
                model: "Artworks_Structure".into(),
                pattern: "Work".into(),
            },
            SigItem::Leaf(AtomType::Str),
        ],
        output: vec![SigItem::Leaf(AtomType::Bool)],
    });
    i.equivalences.push(Equivalence::EqImpliesContains {
        predicate: "contains".into(),
    });
    i
}

// ---------------------------------------------------------- fig6 roundtrip

#[test]
fn fig6_fmodel_roundtrips_through_xml() {
    let m = o2_fmodel();
    let xml = fmodel_to_xml(&m);
    // spot-check the paper's exact serialization details
    let s = xml.to_xml();
    assert!(s.contains(r#"<fmodel name="o2fmodel">"#), "{s}");
    assert!(s.contains(r#"<node label="class" bind="tree">"#), "{s}");
    assert!(
        s.contains(r#"<node label="Symbol" bind="none" inst="ground">"#),
        "{s}"
    );
    assert!(s.contains(r#"<leaf label="Int"/>"#), "{s}");
    assert!(s.contains(r#"<star inst="none">"#), "{s}");
    assert!(s.contains(r#"<ref pattern="Fclass"/>"#), "{s}");
    let back = fmodel_from_xml(&xml).unwrap();
    assert_eq!(m, back);
}

#[test]
fn fig6_interface_roundtrips_through_xml() {
    let i = o2_interface();
    let xml = interface_to_xml(&i);
    let s = xml.to_xml();
    assert!(s.starts_with(r#"<interface name="o2artifact">"#), "{s}");
    assert!(
        s.contains(r#"<operation name="bind" kind="algebra">"#),
        "{s}"
    );
    assert!(
        s.contains(r#"<filter model="o2fmodel" pattern="Ftype"/>"#),
        "{s}"
    );
    let reparsed = yat_xml::parse_element(&s).unwrap();
    let back = interface_from_xml(&reparsed).unwrap();
    assert_eq!(i, back);
}

#[test]
fn fig6_value_label_synonym_accepted() {
    // Fig. 6 line 17 writes <value label="Ftype"/> where line 6 writes
    // <value pattern="Ftype"/> — both must parse as a reference
    let el = yat_xml::parse_element(r#"<value label="Ftype"/>"#).unwrap();
    let p = crate::xml::fpattern_from_xml(&el).unwrap();
    assert_eq!(p, crate::fpattern::FPattern::Ref("Ftype".into()));
}

#[test]
fn wais_interface_roundtrips() {
    let i = wais_interface();
    let back = interface_from_xml(&interface_to_xml(&i)).unwrap();
    assert_eq!(i, back);
}

#[test]
fn structural_model_roundtrips() {
    let m = Model::new("art").with(
        "Artifact",
        parse_filter("class: artifact: tuple[ title: String, year: Int, owners: list *(&Person) ]")
            .unwrap_or(Pattern::Wildcard),
    );
    // build via the pattern API instead (parse_filter has no ref-in-star sugar)
    let m2 = Model::new("art").with(
        "Artifact",
        Pattern::sym(
            "class",
            vec![yat_model::Edge::one(Pattern::sym(
                "artifact",
                vec![yat_model::Edge::one(Pattern::sym(
                    "tuple",
                    vec![
                        yat_model::Edge::one(Pattern::elem_typed("title", AtomType::Str)),
                        yat_model::Edge::one(Pattern::elem_typed("year", AtomType::Int)),
                        yat_model::Edge::one(Pattern::sym(
                            "owners",
                            vec![yat_model::Edge::star(Pattern::Ref("Person".into()))],
                        )),
                    ],
                ))],
            ))],
        ),
    );
    let _ = m;
    let xml = model_to_xml(&m2);
    let back = model_from_xml(&xml).unwrap();
    assert_eq!(m2, back);
}

#[test]
fn filters_with_variables_roundtrip() {
    for src in [
        "work [ title: $t, artist: $a, *($fields) ]",
        "doc *$w: work",
        "set *class: artifact: tuple [ title: $t, ?price: $p ]",
        "~$n [ $v ]",
        "Int | String | &Class",
    ] {
        let f = parse_filter(src).unwrap();
        let back = pattern_from_xml(&pattern_to_xml(&f)).unwrap();
        assert_eq!(f, back, "round-trip failed for `{src}`");
    }
}

// ------------------------------------------------------------ the matcher

fn o2_bind_filter_ok(src: &str) {
    let i = o2_interface();
    let (fm, fp) = i.bind_fpattern().unwrap();
    let f = parse_filter(src).unwrap();
    accepts_filter(fm, fp, &f).unwrap_or_else(|r| panic!("O2 should accept `{src}`: {r}"));
}

fn o2_bind_filter_rejected(src: &str) -> String {
    let i = o2_interface();
    let (fm, fp) = i.bind_fpattern().unwrap();
    let f = parse_filter(src).unwrap();
    match accepts_filter(fm, fp, &f) {
        Ok(()) => panic!("O2 should reject `{src}`"),
        Err(r) => r.reason,
    }
}

#[test]
fn o2_accepts_the_view_filter() {
    // the artifacts side of view1 (Fig. 5 left)
    o2_bind_filter_ok(
        "set *class: artifact: tuple [ title: $t, year: $y, creator: $c, price: $p, \
         owners: list *class: person: tuple [ name: $o, auction: $au ] ]",
    );
}

#[test]
fn o2_accepts_tree_bindings_and_ground_labels() {
    o2_bind_filter_ok("set *$x");
    o2_bind_filter_ok("set *class: artifact: $val");
    o2_bind_filter_ok("tuple [ title: $t ]");
}

#[test]
fn o2_rejects_schema_extraction() {
    // class-name position is bind="none" inst="ground": no label variables
    let reason = o2_bind_filter_rejected("set *class: ~$name: $v");
    assert!(
        reason.contains("ground") || reason.contains("label"),
        "{reason}"
    );
    // tuple attributes are inst="ground": cannot star-navigate them
    let reason = o2_bind_filter_rejected("tuple [ *($all) ]");
    assert!(
        reason.contains("instantiated") || reason.contains("fits no"),
        "{reason}"
    );
    // tuple attribute names are bind="none"
    let reason = o2_bind_filter_rejected("tuple [ ~$attr: $v ]");
    assert!(!reason.is_empty());
}

#[test]
fn o2_rejects_unknown_structures() {
    let reason = o2_bind_filter_rejected("works *work [ title: $t ]");
    assert!(
        reason.contains("works") || reason.contains("alternative"),
        "{reason}"
    );
}

#[test]
fn wais_accepts_only_whole_documents() {
    let i = wais_interface();
    let (fm, fp) = i.bind_fpattern().unwrap();
    // whole documents: fine
    let f = parse_filter("works *$w").unwrap();
    accepts_filter(fm, fp, &f).unwrap();
    // decomposing documents: rejected (work has no declared children)
    let f = parse_filter("works *work [ title: $t ]").unwrap();
    let r = accepts_filter(fm, fp, &f).unwrap_err();
    assert!(r.reason.contains("not supported"), "{r}");
    // binding the root: rejected (bind="none")
    let f = parse_filter("$all").unwrap();
    let r = accepts_filter(fm, fp, &f).unwrap_err();
    assert!(r.reason.contains("not allowed"), "{r}");
}

// --------------------------------------------------------------- pushable

#[test]
fn o2_pushable_plan_fig5_left() {
    // Bind + Select over artifacts (the fragment the wrapper translates
    // to OQL in Section 4.1)
    let i = o2_interface();
    let filter =
        parse_filter("set *class: artifact: tuple [ title: $t, year: $y, creator: $c, price: $p ]")
            .unwrap();
    let plan = Alg::select(
        Alg::bind(Alg::source("artifacts"), filter),
        Pred::cmp(CmpOp::Gt, Operand::var("y"), Operand::cst(1800)),
    );
    pushable(&i, &plan).unwrap();
}

#[test]
fn o2_rejects_tree_and_unknown_sources() {
    let i = o2_interface();
    let t = Alg::tree(
        Alg::bind(Alg::source("artifacts"), parse_filter("set *$x").unwrap()),
        Template::sym("out", vec![]),
    );
    assert!(pushable(&i, &t).unwrap_err().reason.contains("Tree"));
    let s = Alg::source("works");
    assert!(pushable(&i, &s)
        .unwrap_err()
        .reason
        .contains("not exported"));
}

#[test]
fn o2_accepts_method_calls_in_predicates() {
    let i = o2_interface();
    let plan = Alg::select(
        Alg::bind(Alg::source("artifacts"), parse_filter("set *$x").unwrap()),
        Pred::cmp(
            CmpOp::Le,
            Operand::Call {
                name: "current_price".into(),
                args: vec![Operand::var("x")],
            },
            Operand::cst(200000.0),
        ),
    );
    pushable(&i, &plan).unwrap();
    // but unknown functions are rejected
    let plan = Alg::select(
        Alg::bind(Alg::source("artifacts"), parse_filter("set *$x").unwrap()),
        Pred::Call {
            name: "levenshtein".into(),
            args: vec![Operand::var("x")],
        },
    );
    assert!(pushable(&i, &plan).is_err());
}

#[test]
fn wais_pushable_contains_but_not_comparisons() {
    let i = wais_interface();
    let bind = Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap());
    let with_contains = Alg::select(
        bind.clone(),
        Pred::Call {
            name: "contains".into(),
            args: vec![Operand::var("w"), Operand::cst("Impressionist")],
        },
    );
    pushable(&i, &with_contains).unwrap();
    let with_eq = Alg::select(bind, Pred::eq_const("w", "x"));
    let r = pushable(&i, &with_eq).unwrap_err();
    assert!(r.reason.contains("no comparison"), "{r}");
}

#[test]
fn already_pushed_fragments_are_not_repushed() {
    let i = wais_interface();
    let plan = Alg::push("xmlartwork", Alg::source("works"));
    assert!(pushable(&i, &plan)
        .unwrap_err()
        .reason
        .contains("already delegated"));
}

// ------------------------------------------------------------ plan wire

#[test]
fn plans_roundtrip_through_xml() {
    let filter = parse_filter("works *work [ title: $t, artist: $a ]").unwrap();
    let plan = Alg::tree(
        Alg::join(
            Alg::select(
                Alg::bind(
                    Alg::source_at("o2", "artifacts"),
                    parse_filter("set *$x").unwrap(),
                ),
                Pred::cmp(CmpOp::Gt, Operand::var("y"), Operand::cst(1800)),
            ),
            Alg::push("wais", Alg::bind(Alg::source("works"), filter)),
            Pred::var_eq("t", "t'"),
        ),
        Template::sym(
            "doc",
            vec![Template::skolem_group(
                "artwork",
                &["t", "c"],
                Template::sym("work", vec![Template::elem_var("title", "t")]),
            )],
        ),
    );
    let xml = plan_to_xml(&plan);
    let back = plan_from_xml(&xml).unwrap();
    assert_eq!(plan, back, "\nxml was:\n{}", xml.to_pretty_xml());
    // and the serialized form survives a parse of its printed text
    let reparsed = yat_xml::parse_element(&xml.to_xml()).unwrap();
    assert_eq!(plan, plan_from_xml(&reparsed).unwrap());
}

#[test]
fn all_operator_shapes_roundtrip() {
    use std::sync::Arc;
    let b = Alg::bind(Alg::source("d"), parse_filter("d *$x").unwrap());
    let plans: Vec<Arc<Alg>> = vec![
        Alg::bind_over(b.clone(), "x", parse_filter("e [ v: $v ]").unwrap()),
        Alg::project(b.clone(), vec![("x".into(), "y".into())]),
        Arc::new(Alg::Union {
            left: b.clone(),
            right: b.clone(),
        }),
        Arc::new(Alg::Intersect {
            left: b.clone(),
            right: b.clone(),
        }),
        Arc::new(Alg::Diff {
            left: b.clone(),
            right: b.clone(),
        }),
        Arc::new(Alg::Group {
            input: b.clone(),
            keys: vec!["x".into()],
        }),
        Arc::new(Alg::Sort {
            input: b.clone(),
            keys: vec![("x".into(), yat_algebra::SortDir::Desc)],
        }),
        Arc::new(Alg::Map {
            input: b.clone(),
            col: "c".into(),
            expr: Operand::Call {
                name: "textof".into(),
                args: vec![Operand::var("x")],
            },
        }),
        Alg::djoin(b.clone(), b.clone()),
    ];
    for p in plans {
        let back = plan_from_xml(&plan_to_xml(&p)).unwrap();
        assert_eq!(p, back);
    }
}

#[test]
fn predicates_roundtrip_through_xml() {
    let preds = vec![
        Pred::True,
        Pred::var_eq("a", "b'"),
        Pred::eq_const("t", "Giverny"),
        Pred::cmp(CmpOp::Le, Operand::var("p"), Operand::cst(200000.0)),
        Pred::Not(Box::new(Pred::Or(
            Box::new(Pred::eq_const("x", 1)),
            Box::new(Pred::Call {
                name: "contains".into(),
                args: vec![Operand::var("w"), Operand::cst("Impressionist")],
            }),
        ))),
    ];
    for p in preds {
        let back = pred_from_xml(&pred_to_xml(&p)).unwrap();
        assert_eq!(p, back);
    }
}

#[test]
fn malformed_wire_documents_are_rejected() {
    for bad in [
        "<source/>",                         // missing name
        "<bind><source name=\"d\"/></bind>", // missing filter
        "<cmp op=\"zz\"><var name=\"a\"/><var name=\"b\"/></cmp>",
        "<wat/>",
        "<const type=\"Int\" value=\"xyz\"/>",
    ] {
        let el = yat_xml::parse_element(bad).unwrap();
        assert!(
            plan_from_xml(&el).is_err() && pred_from_xml(&el).is_err(),
            "should reject {bad}"
        );
    }
    let el = yat_xml::parse_element("<interface><export name=\"e\"/></interface>").unwrap();
    assert!(interface_from_xml(&el).is_err(), "interface missing name");
}

// ----------------------------------------------- client ↔ server protocol

#[test]
fn client_requests_roundtrip() {
    use crate::protocol::ClientRequest;
    let reqs = vec![
        ClientRequest::Query {
            text: "q() <- works *$w;".into(),
            deadline_ms: Some(250),
            stream: false,
        },
        ClientRequest::Query {
            text: "multi\nline \"quoted\" & <angled>".into(),
            deadline_ms: None,
            stream: false,
        },
        ClientRequest::Explain {
            text: "q() <- works *$w;".into(),
        },
        ClientRequest::Stats,
        ClientRequest::Shutdown,
    ];
    for r in reqs {
        let text = r.to_xml().to_xml();
        let el = yat_xml::parse_element(&text).unwrap();
        assert_eq!(ClientRequest::from_xml(&el).unwrap(), r, "{text}");
        assert_eq!(r.to_xml().name, r.kind());
    }
    let bad = yat_xml::parse_element("<get-interface/>").unwrap();
    assert!(
        matches!(
            ClientRequest::from_xml(&bad),
            Err(crate::xml::WireError::UnknownVerb(_))
        ),
        "wrapper verbs are not client verbs"
    );
    let bad = yat_xml::parse_element("<query deadline-ms=\"soon\">q</query>").unwrap();
    assert!(ClientRequest::from_xml(&bad).is_err(), "bad deadline");
}

#[test]
fn streamed_queries_and_chunk_frames_roundtrip() {
    use crate::protocol::{ClientRequest, StreamFrame};
    use yat_algebra::EvalOut;
    use yat_model::Node;

    // the negotiation attribute survives a round trip
    let req = ClientRequest::Query {
        text: "q() <- works *$w;".into(),
        deadline_ms: Some(100),
        stream: true,
    };
    let text = req.to_xml().to_xml();
    assert!(text.contains("stream=\"chunked\""), "{text}");
    let el = yat_xml::parse_element(&text).unwrap();
    assert_eq!(ClientRequest::from_xml(&el).unwrap(), req);
    // an unknown streaming mode is refused, not silently materialized:
    // silently dropping the attribute would make the client wait for
    // chunk frames that never come
    let bad = yat_xml::parse_element("<query stream=\"firehose\">q</query>").unwrap();
    assert!(matches!(
        ClientRequest::from_xml(&bad),
        Err(crate::xml::WireError::Malformed(_))
    ));

    let mut tab = yat_algebra::Tab::new(vec!["t".into()]);
    tab.push(vec![yat_algebra::Value::Tree(Node::elem(
        "title", "Nympheas",
    ))]);
    let frames = vec![
        StreamFrame::Chunk {
            seq: 0,
            payload: EvalOut::Tab(tab),
        },
        StreamFrame::Chunk {
            seq: 1,
            payload: EvalOut::Tree(Node::sym("works", vec![])),
        },
        StreamFrame::End {
            chunks: 2,
            rows: 2,
            answered_by: None,
            missing: None,
        },
        StreamFrame::End {
            chunks: 1,
            rows: 0,
            answered_by: Some("art1 art2".into()),
            missing: Some("works-shard-b: timed out".into()),
        },
        StreamFrame::Abort {
            message: "source hung up".into(),
        },
    ];
    for f in frames {
        let text = f.to_xml().to_xml();
        let el = yat_xml::parse_element(&text).unwrap();
        assert_eq!(StreamFrame::from_xml(&el).unwrap(), f, "{text}");
        assert_eq!(f.to_xml().name, f.kind(), "kind() is the wire label");
    }
    // non-stream frames fall through so the reader can try ServerReply
    let answer = yat_xml::parse_element("<answer><result/></answer>").unwrap();
    assert!(matches!(
        StreamFrame::from_xml(&answer),
        Err(crate::xml::WireError::UnknownVerb(_))
    ));
    let bad = yat_xml::parse_element("<answer-chunk seq=\"x\"><result/></answer-chunk>").unwrap();
    assert!(StreamFrame::from_xml(&bad).is_err(), "bad seq");
    let bad = yat_xml::parse_element("<answer-end chunks=\"1\"/>").unwrap();
    assert!(StreamFrame::from_xml(&bad).is_err(), "missing rows");
}

#[test]
fn server_replies_roundtrip() {
    use crate::protocol::{ServerReply, ServerStats, SourceGauge};
    use yat_algebra::EvalOut;
    use yat_model::Node;

    let mut tab = yat_algebra::Tab::new(vec!["t".into()]);
    tab.push(vec![yat_algebra::Value::Tree(Node::elem(
        "title", "Nympheas",
    ))]);
    let replies = vec![
        ServerReply::answer(EvalOut::Tab(tab)),
        ServerReply::answer(EvalOut::Tree(Node::sym(
            "answers",
            vec![Node::elem("title", "Nympheas")],
        ))),
        ServerReply::Answer {
            out: EvalOut::Tree(Node::sym("answers", vec![])),
            answered_by: Some("art1 works-shard-a".into()),
            missing: Some("works-shard-b: connection reset".into()),
        },
        ServerReply::Explained {
            text: "Q1\n  Bind works  1.2ms".into(),
        },
        ServerReply::Stats(ServerStats {
            workers: 4,
            queue_capacity: 32,
            queue_depth: 3,
            in_flight: 4,
            connections: 9,
            admitted: 120,
            served: 110,
            shed: 7,
            errors: 3,
            protocol_errors: 1,
            draining: true,
            cache_hits: 40,
            cache_misses: 80,
            sources: vec![
                SourceGauge {
                    name: "o2artifact".into(),
                    round_trips: 200,
                    in_flight: 2,
                    group: None,
                    ewma_latency_us: 0,
                    errors: 0,
                },
                SourceGauge {
                    name: "xmlartwork".into(),
                    round_trips: 150,
                    in_flight: 0,
                    group: Some("art".into()),
                    ewma_latency_us: 1843,
                    errors: 2,
                },
            ],
        }),
        ServerReply::Overloaded { retry_after_ms: 40 },
        ServerReply::Error {
            message: "deadline exceeded".into(),
        },
        ServerReply::Bye { drained: 5 },
    ];
    for r in replies {
        let text = r.to_xml().to_xml();
        let el = yat_xml::parse_element(&text).unwrap();
        assert_eq!(ServerReply::from_xml(&el).unwrap(), r, "{text}");
        assert_eq!(r.to_xml().name, r.kind());
    }
    let bad = yat_xml::parse_element("<answer/>").unwrap();
    assert!(ServerReply::from_xml(&bad).is_err(), "empty answer");
    let bad = yat_xml::parse_element("<interface name=\"x\"/>").unwrap();
    assert!(
        matches!(
            ServerReply::from_xml(&bad),
            Err(crate::xml::WireError::UnknownVerb(_))
        ),
        "wrapper responses are not server replies"
    );
}

/// Satellite hardening check: feed seeded, randomly corrupted wire bytes
/// through the whole decode pipeline — framing, XML parse, verb parse for
/// all four message vocabularies — and require a typed result every
/// time. A panic anywhere in the pipeline fails the test.
#[test]
fn corrupted_wire_bytes_never_panic_the_decoders() {
    use crate::protocol::{ClientRequest, Request, Response, ServerReply};
    use yat_prng::Rng;

    let seed = std::env::var("YAT_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20260807u64);
    let mut rng = Rng::seed_from_u64(seed);

    // seed corpus: one valid serialized frame per verb
    let plan = Alg::select(
        Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap()),
        Pred::cmp(CmpOp::Eq, Operand::var("w"), Operand::cst("Nympheas")),
    );
    let mut tab = yat_algebra::Tab::new(vec!["w".into()]);
    tab.push(vec![yat_algebra::Value::Tree(yat_model::Node::elem(
        "title", "Nympheas",
    ))]);
    let corpus: Vec<String> = vec![
        Request::GetInterface.to_xml().to_xml(),
        Request::GetDocument {
            name: "works".into(),
        }
        .to_xml()
        .to_xml(),
        Request::Execute { plan: plan.clone() }.to_xml().to_xml(),
        Response::Result(tab).to_xml().to_xml(),
        Response::Error("nope".into()).to_xml().to_xml(),
        ClientRequest::Query {
            text: "q() <- works *$w;".into(),
            deadline_ms: Some(100),
            stream: false,
        }
        .to_xml()
        .to_xml(),
        ClientRequest::Stats.to_xml().to_xml(),
        ServerReply::Overloaded { retry_after_ms: 9 }
            .to_xml()
            .to_xml(),
        ServerReply::Bye { drained: 1 }.to_xml().to_xml(),
    ];

    let mut decoded = 0u32;
    let mut rejected = 0u32;
    for round in 0..400 {
        let base = &corpus[rng.gen_range(0..corpus.len())];
        let mut framed = Vec::new();
        crate::framing::write_frame(&mut framed, base).unwrap();

        // corrupt 1–8 positions: bit flips, byte swaps, truncation,
        // duplication — header bytes included
        for _ in 0..rng.gen_range(1..9usize) {
            if framed.is_empty() {
                break;
            }
            let pos = rng.gen_range(0..framed.len());
            match rng.gen_range(0..4u64) {
                0 => framed[pos] ^= 1 << rng.gen_range(0..8u64),
                1 => framed[pos] = rng.gen_range(0..256u64) as u8,
                2 => framed.truncate(pos),
                _ => {
                    let dup = framed[pos];
                    framed.insert(pos, dup);
                }
            }
        }

        let outcome = std::panic::catch_unwind(move || {
            let mut r = framed.as_slice();
            let el = match crate::framing::read_element(&mut r) {
                Ok(Some(el)) => el,
                Ok(None) => return (0u32, 1u32),
                Err(_) => return (0, 1),
            };
            // all four decoders must survive whatever parsed
            let mut ok = 0;
            ok += Request::from_xml(&el).is_ok() as u32;
            ok += Response::from_xml(&el).is_ok() as u32;
            ok += ClientRequest::from_xml(&el).is_ok() as u32;
            ok += ServerReply::from_xml(&el).is_ok() as u32;
            (ok.min(1), (ok == 0) as u32)
        });
        match outcome {
            Ok((d, r)) => {
                decoded += d;
                rejected += r;
            }
            Err(_) => panic!("decode pipeline panicked on round {round} (seed {seed})"),
        }
    }
    // sanity: the corruption is mild enough that both outcomes occur,
    // so the test exercises success and failure paths
    assert!(rejected > 0, "seed {seed} never produced a rejection");
    assert!(decoded > 0, "seed {seed} never survived a corruption");
}
