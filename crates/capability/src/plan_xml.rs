//! XML serialization of algebra plans: the operations half of the wrapper
//! protocol ("wrappers and mediators communicate data, structures and
//! operations in XML", Section 2).
//!
//! The mediator ships every pushed subplan as a `<plan>` document; the
//! wrapper deserializes it and evaluates natively (O2 translates it to
//! OQL text, Section 4.1).

use crate::xml::{pattern_from_xml, pattern_to_xml, WireError};
use std::sync::Arc;
use yat_algebra::{Alg, CmpOp, Operand, Pred, SortDir, Template};
use yat_model::{Atom, AtomType};
use yat_xml::Element;

fn err(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

/// Serializes a plan.
pub fn plan_to_xml(plan: &Alg) -> Element {
    match plan {
        Alg::Source { source, name } => {
            let mut el = Element::new("source").with_attr("name", name.clone());
            if let Some(s) = source {
                el.set_attr("at", s.clone());
            }
            el
        }
        Alg::Bind {
            input,
            filter,
            over,
        } => {
            let mut el = Element::new("bind");
            if let Some(v) = over {
                el.set_attr("over", v.clone());
            }
            el.push_element(Element::new("filter").with_child(pattern_to_xml(filter)));
            el.push_element(plan_to_xml(input));
            el
        }
        Alg::TreeOp { input, template } => Element::new("tree")
            .with_child(Element::new("template").with_child(template_to_xml(template)))
            .with_child(plan_to_xml(input)),
        Alg::Select { input, pred } => Element::new("select")
            .with_child(Element::new("where").with_child(pred_to_xml(pred)))
            .with_child(plan_to_xml(input)),
        Alg::Project { input, cols } => {
            let mut el = Element::new("project");
            for (s, d) in cols {
                el.push_element(
                    Element::new("col")
                        .with_attr("src", s.clone())
                        .with_attr("as", d.clone()),
                );
            }
            el.push_element(plan_to_xml(input));
            el
        }
        Alg::Join { left, right, pred } => Element::new("join")
            .with_child(Element::new("on").with_child(pred_to_xml(pred)))
            .with_child(plan_to_xml(left))
            .with_child(plan_to_xml(right)),
        Alg::DJoin { left, right } => Element::new("djoin")
            .with_child(plan_to_xml(left))
            .with_child(plan_to_xml(right)),
        Alg::Union { left, right } => Element::new("union")
            .with_child(plan_to_xml(left))
            .with_child(plan_to_xml(right)),
        Alg::Intersect { left, right } => Element::new("intersect")
            .with_child(plan_to_xml(left))
            .with_child(plan_to_xml(right)),
        Alg::Diff { left, right } => Element::new("diff")
            .with_child(plan_to_xml(left))
            .with_child(plan_to_xml(right)),
        Alg::Group { input, keys } => Element::new("group")
            .with_attr("keys", keys.join(" "))
            .with_child(plan_to_xml(input)),
        Alg::Sort { input, keys } => {
            let mut el = Element::new("sort");
            for (k, d) in keys {
                el.push_element(Element::new("key").with_attr("col", k.clone()).with_attr(
                    "dir",
                    match d {
                        SortDir::Asc => "asc",
                        SortDir::Desc => "desc",
                    },
                ));
            }
            el.push_element(plan_to_xml(input));
            el
        }
        Alg::Map { input, col, expr } => Element::new("map")
            .with_attr("col", col.clone())
            .with_child(Element::new("expr").with_child(operand_to_xml(expr)))
            .with_child(plan_to_xml(input)),
        Alg::Push { source, plan } => Element::new("push")
            .with_attr("source", source.clone())
            .with_child(plan_to_xml(plan)),
    }
}

/// Parses a plan.
pub fn plan_from_xml(el: &Element) -> Result<Arc<Alg>, WireError> {
    let nth_plan = |el: &Element, skip: usize| -> Result<Arc<Alg>, WireError> {
        el.elements()
            .filter(|c| is_plan_tag(&c.name))
            .nth(skip)
            .ok_or_else(|| err(format!("<{}> missing input plan", el.name)))
            .and_then(plan_from_xml)
    };
    match el.name.as_str() {
        "source" => {
            let name = el
                .attr("name")
                .ok_or_else(|| err("<source> missing name"))?;
            Ok(Arc::new(Alg::Source {
                source: el.attr("at").map(str::to_string),
                name: name.to_string(),
            }))
        }
        "bind" => {
            let filter_el = el
                .child("filter")
                .and_then(|f| f.elements().next())
                .ok_or_else(|| err("<bind> missing <filter>"))?;
            Ok(Arc::new(Alg::Bind {
                input: nth_plan(el, 0)?,
                filter: pattern_from_xml(filter_el)?,
                over: el.attr("over").map(str::to_string),
            }))
        }
        "tree" => {
            let template_el = el
                .child("template")
                .and_then(|t| t.elements().next())
                .ok_or_else(|| err("<tree> missing <template>"))?;
            Ok(Arc::new(Alg::TreeOp {
                input: nth_plan(el, 0)?,
                template: template_from_xml(template_el)?,
            }))
        }
        "select" => {
            let pred_el = el
                .child("where")
                .and_then(|w| w.elements().next())
                .ok_or_else(|| err("<select> missing <where>"))?;
            Ok(Arc::new(Alg::Select {
                input: nth_plan(el, 0)?,
                pred: pred_from_xml(pred_el)?,
            }))
        }
        "project" => {
            let cols = el
                .children_named("col")
                .map(|c| {
                    let s = c.attr("src").ok_or_else(|| err("<col> missing src"))?;
                    let d = c.attr("as").unwrap_or(s);
                    Ok((s.to_string(), d.to_string()))
                })
                .collect::<Result<_, WireError>>()?;
            Ok(Arc::new(Alg::Project {
                input: nth_plan(el, 0)?,
                cols,
            }))
        }
        "join" => {
            let pred_el = el
                .child("on")
                .and_then(|w| w.elements().next())
                .ok_or_else(|| err("<join> missing <on>"))?;
            Ok(Arc::new(Alg::Join {
                left: nth_plan(el, 0)?,
                right: nth_plan(el, 1)?,
                pred: pred_from_xml(pred_el)?,
            }))
        }
        "djoin" => Ok(Arc::new(Alg::DJoin {
            left: nth_plan(el, 0)?,
            right: nth_plan(el, 1)?,
        })),
        "union" => Ok(Arc::new(Alg::Union {
            left: nth_plan(el, 0)?,
            right: nth_plan(el, 1)?,
        })),
        "intersect" => Ok(Arc::new(Alg::Intersect {
            left: nth_plan(el, 0)?,
            right: nth_plan(el, 1)?,
        })),
        "diff" => Ok(Arc::new(Alg::Diff {
            left: nth_plan(el, 0)?,
            right: nth_plan(el, 1)?,
        })),
        "group" => {
            let keys = el
                .attr("keys")
                .unwrap_or("")
                .split_whitespace()
                .map(str::to_string)
                .collect();
            Ok(Arc::new(Alg::Group {
                input: nth_plan(el, 0)?,
                keys,
            }))
        }
        "sort" => {
            let keys = el
                .children_named("key")
                .map(|k| {
                    let col = k.attr("col").ok_or_else(|| err("<key> missing col"))?;
                    let dir = match k.attr("dir") {
                        Some("desc") => SortDir::Desc,
                        _ => SortDir::Asc,
                    };
                    Ok((col.to_string(), dir))
                })
                .collect::<Result<_, WireError>>()?;
            Ok(Arc::new(Alg::Sort {
                input: nth_plan(el, 0)?,
                keys,
            }))
        }
        "map" => {
            let col = el.attr("col").ok_or_else(|| err("<map> missing col"))?;
            let expr_el = el
                .child("expr")
                .and_then(|x| x.elements().next())
                .ok_or_else(|| err("<map> missing <expr>"))?;
            Ok(Arc::new(Alg::Map {
                input: nth_plan(el, 0)?,
                col: col.to_string(),
                expr: operand_from_xml(expr_el)?,
            }))
        }
        "push" => {
            let source = el
                .attr("source")
                .ok_or_else(|| err("<push> missing source"))?;
            Ok(Arc::new(Alg::Push {
                source: source.to_string(),
                plan: nth_plan(el, 0)?,
            }))
        }
        other => Err(err(format!("unknown plan element <{other}>"))),
    }
}

fn is_plan_tag(name: &str) -> bool {
    matches!(
        name,
        "source"
            | "bind"
            | "tree"
            | "select"
            | "project"
            | "join"
            | "djoin"
            | "union"
            | "intersect"
            | "diff"
            | "group"
            | "sort"
            | "map"
            | "push"
    )
}

// ------------------------------------------------------------- predicates

/// Serializes a predicate.
pub fn pred_to_xml(p: &Pred) -> Element {
    match p {
        Pred::True => Element::new("true"),
        Pred::And(a, b) => Element::new("and")
            .with_child(pred_to_xml(a))
            .with_child(pred_to_xml(b)),
        Pred::Or(a, b) => Element::new("or")
            .with_child(pred_to_xml(a))
            .with_child(pred_to_xml(b)),
        Pred::Not(x) => Element::new("not").with_child(pred_to_xml(x)),
        Pred::Cmp { op, left, right } => Element::new("cmp")
            .with_attr(
                "op",
                match op {
                    CmpOp::Eq => "eq",
                    CmpOp::Ne => "ne",
                    CmpOp::Lt => "lt",
                    CmpOp::Le => "le",
                    CmpOp::Gt => "gt",
                    CmpOp::Ge => "ge",
                },
            )
            .with_child(operand_to_xml(left))
            .with_child(operand_to_xml(right)),
        Pred::Call { name, args } => {
            let mut el = Element::new("predicate").with_attr("name", name.clone());
            for a in args {
                el.push_element(operand_to_xml(a));
            }
            el
        }
    }
}

/// Parses a predicate.
pub fn pred_from_xml(el: &Element) -> Result<Pred, WireError> {
    let two = |el: &Element| -> Result<(Pred, Pred), WireError> {
        let mut it = el.elements();
        let a = it
            .next()
            .ok_or_else(|| err(format!("<{}> needs 2 operands", el.name)))?;
        let b = it
            .next()
            .ok_or_else(|| err(format!("<{}> needs 2 operands", el.name)))?;
        Ok((pred_from_xml(a)?, pred_from_xml(b)?))
    };
    match el.name.as_str() {
        "true" => Ok(Pred::True),
        "and" => {
            let (a, b) = two(el)?;
            Ok(Pred::And(Box::new(a), Box::new(b)))
        }
        "or" => {
            let (a, b) = two(el)?;
            Ok(Pred::Or(Box::new(a), Box::new(b)))
        }
        "not" => {
            let x = el
                .elements()
                .next()
                .ok_or_else(|| err("<not> needs an operand"))?;
            Ok(Pred::Not(Box::new(pred_from_xml(x)?)))
        }
        "cmp" => {
            let op = match el.attr("op") {
                Some("eq") => CmpOp::Eq,
                Some("ne") => CmpOp::Ne,
                Some("lt") => CmpOp::Lt,
                Some("le") => CmpOp::Le,
                Some("gt") => CmpOp::Gt,
                Some("ge") => CmpOp::Ge,
                other => return Err(err(format!("bad cmp op {other:?}"))),
            };
            let mut it = el.elements();
            let l = it.next().ok_or_else(|| err("<cmp> needs 2 operands"))?;
            let r = it.next().ok_or_else(|| err("<cmp> needs 2 operands"))?;
            Ok(Pred::Cmp {
                op,
                left: operand_from_xml(l)?,
                right: operand_from_xml(r)?,
            })
        }
        "predicate" => {
            let name = el
                .attr("name")
                .ok_or_else(|| err("<predicate> missing name"))?;
            let args = el
                .elements()
                .map(operand_from_xml)
                .collect::<Result<_, _>>()?;
            Ok(Pred::Call {
                name: name.to_string(),
                args,
            })
        }
        other => Err(err(format!("unknown predicate element <{other}>"))),
    }
}

fn operand_to_xml(o: &Operand) -> Element {
    match o {
        Operand::Var(v) => Element::new("var").with_attr("name", v.clone()),
        Operand::Const(a) => Element::new("const")
            .with_attr("type", a.atom_type().name())
            .with_attr("value", a.to_string()),
        Operand::Call { name, args } => {
            let mut el = Element::new("call").with_attr("name", name.clone());
            for a in args {
                el.push_element(operand_to_xml(a));
            }
            el
        }
    }
}

fn operand_from_xml(el: &Element) -> Result<Operand, WireError> {
    match el.name.as_str() {
        "var" => Ok(Operand::Var(
            el.attr("name")
                .ok_or_else(|| err("<var> missing name"))?
                .to_string(),
        )),
        "const" => {
            let t = el
                .attr("type")
                .and_then(AtomType::from_name)
                .ok_or_else(|| err("<const> with unknown type"))?;
            let raw = el
                .attr("value")
                .ok_or_else(|| err("<const> missing value"))?;
            let a = Atom::parse_typed(raw, t)
                .ok_or_else(|| err(format!("`{raw}` is not a valid {t}")))?;
            Ok(Operand::Const(a))
        }
        "call" => {
            let name = el.attr("name").ok_or_else(|| err("<call> missing name"))?;
            let args = el
                .elements()
                .map(operand_from_xml)
                .collect::<Result<_, _>>()?;
            Ok(Operand::Call {
                name: name.to_string(),
                args,
            })
        }
        other => Err(err(format!("unknown operand element <{other}>"))),
    }
}

// --------------------------------------------------------------- templates

/// Serializes a construction template.
pub fn template_to_xml(t: &Template) -> Element {
    match t {
        Template::Sym { name, children } => {
            let mut el = Element::new("tsym").with_attr("name", name.clone());
            for c in children {
                el.push_element(template_to_xml(c));
            }
            el
        }
        Template::Var(v) => Element::new("tvar").with_attr("name", v.clone()),
        Template::LabelVar { var, children } => {
            let mut el = Element::new("tlabelvar").with_attr("var", var.clone());
            for c in children {
                el.push_element(template_to_xml(c));
            }
            el
        }
        Template::Group { key, skolem, body } => {
            let mut el = Element::new("tgroup").with_attr("keys", key.join(" "));
            if let Some(s) = skolem {
                el.set_attr("skolem", s.clone());
            }
            el.push_element(template_to_xml(body));
            el
        }
        Template::Text(s) => Element::new("ttext").with_attr("value", s.clone()),
    }
}

/// Parses a construction template.
pub fn template_from_xml(el: &Element) -> Result<Template, WireError> {
    match el.name.as_str() {
        "tsym" => Ok(Template::Sym {
            name: el
                .attr("name")
                .ok_or_else(|| err("<tsym> missing name"))?
                .to_string(),
            children: el
                .elements()
                .map(template_from_xml)
                .collect::<Result<_, _>>()?,
        }),
        "tvar" => Ok(Template::Var(
            el.attr("name")
                .ok_or_else(|| err("<tvar> missing name"))?
                .to_string(),
        )),
        "tlabelvar" => Ok(Template::LabelVar {
            var: el
                .attr("var")
                .ok_or_else(|| err("<tlabelvar> missing var"))?
                .to_string(),
            children: el
                .elements()
                .map(template_from_xml)
                .collect::<Result<_, _>>()?,
        }),
        "tgroup" => {
            let body = el
                .elements()
                .next()
                .ok_or_else(|| err("<tgroup> missing body"))?;
            Ok(Template::Group {
                key: el
                    .attr("keys")
                    .unwrap_or("")
                    .split_whitespace()
                    .map(str::to_string)
                    .collect(),
                skolem: el.attr("skolem").map(str::to_string),
                body: Box::new(template_from_xml(body)?),
            })
        }
        "ttext" => Ok(Template::Text(
            el.attr("value")
                .ok_or_else(|| err("<ttext> missing value"))?
                .to_string(),
        )),
        other => Err(err(format!("unknown template element <{other}>"))),
    }
}
