//! Length-framed wire XML — how protocol messages travel over a byte
//! stream (a TCP socket between a client and `yat-server`).
//!
//! Each frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 XML text. Framing failures are *typed*
//! [`WireError`]s: a frame that ends early is [`WireError::Truncated`],
//! a header that declares more than [`MAX_FRAME`] bytes is
//! [`WireError::FrameTooLarge`] (refused before any allocation), payload
//! that is not UTF-8 or not well-formed XML is [`WireError::Malformed`],
//! and socket-level failures are [`WireError::Io`]. Nothing in this
//! module panics on hostile bytes.

use crate::xml::WireError;
use std::io::{Read, Write};
use yat_xml::Element;

/// The largest payload a receiver accepts, in bytes (64 MiB). A header
/// declaring more is refused before allocating anything — a four-byte
/// garbage header cannot make the server reserve gigabytes.
pub const MAX_FRAME: u64 = 64 << 20;

/// Writes one frame: big-endian `u32` payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), WireError> {
    let len = payload.len() as u64;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            declared: len,
            max: MAX_FRAME,
        });
    }
    let header = (len as u32).to_be_bytes();
    w.write_all(&header)
        .and_then(|()| w.write_all(payload.as_bytes()))
        .and_then(|()| w.flush())
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Serializes `el` and writes it as one frame.
pub fn write_element(w: &mut impl Write, el: &Element) -> Result<(), WireError> {
    write_frame(w, &el.to_xml())
}

/// Reads one frame's payload. `Ok(None)` means the peer closed the
/// stream cleanly *between* frames; inside a frame, early EOF is
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, WireError> {
    let mut header = [0u8; 4];
    match read_full(r, &mut header)? {
        0 => return Ok(None), // clean EOF at a frame boundary
        4 => {}
        got => return Err(WireError::Truncated { expected: 4, got }),
    }
    let declared = u32::from_be_bytes(header) as u64;
    if declared > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            declared,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; declared as usize];
    let got = read_full(r, &mut payload)?;
    if got < payload.len() {
        return Err(WireError::Truncated {
            expected: declared as usize,
            got,
        });
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| WireError::Malformed(format!("frame payload is not UTF-8: {e}")))
}

/// Reads one frame and parses it as an XML element. `Ok(None)` on clean
/// EOF between frames.
pub fn read_element(r: &mut impl Read) -> Result<Option<Element>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(text) => yat_xml::parse_element(&text)
            .map(Some)
            .map_err(|e| WireError::Malformed(format!("frame did not parse as XML: {e}"))),
    }
}

/// Fills `buf` as far as the stream allows, returning how many bytes
/// arrived (less than `buf.len()` only at EOF). `ErrorKind::Interrupted`
/// is retried; other I/O errors surface as [`WireError::Io`].
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(payload: &str) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        buf
    }

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "<a/>").unwrap();
        write_frame(&mut buf, "<b x=\"1\">hé</b>").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("<a/>"));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("<b x=\"1\">hé</b>")
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        assert_eq!(read_frame(&mut r).unwrap(), None, "EOF is sticky");
    }

    #[test]
    fn elements_roundtrip() {
        let el = Element::new("query").with_text("select *");
        let mut buf = Vec::new();
        write_element(&mut buf, &el).unwrap();
        let back = read_element(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back.name, "query");
        assert_eq!(back.text(), "select *");
    }

    #[test]
    fn truncated_header_and_payload_are_typed() {
        let full = frame_bytes("<abcdef/>");
        // cut inside the header
        let err = read_frame(&mut &full[..2]).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                expected: 4,
                got: 2
            }
        );
        // cut inside the payload
        let err = read_frame(&mut &full[..7]).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                expected: 9,
                got: 3
            }
        );
    }

    #[test]
    fn oversized_header_is_refused_without_allocating() {
        let mut bytes = vec![0xff, 0xff, 0xff, 0xff];
        bytes.extend_from_slice(b"ignored");
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(
            err,
            WireError::FrameTooLarge {
                declared: 0xffff_ffff,
                max: MAX_FRAME
            }
        );
        let huge = "x".repeat(5);
        let mut sink = Vec::new();
        // the writer enforces the same bound (tested via the constant
        // rather than materializing 64 MiB here)
        assert!(write_frame(&mut sink, &huge).is_ok());
    }

    #[test]
    fn non_utf8_payload_is_malformed() {
        let mut bytes = 2u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0xc3, 0x28]); // invalid UTF-8 sequence
        match read_frame(&mut bytes.as_slice()) {
            Err(WireError::Malformed(m)) => assert!(m.contains("UTF-8"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unparseable_payload_is_malformed() {
        let bytes = frame_bytes("<unclosed");
        match read_element(&mut bytes.as_slice()) {
            Err(WireError::Malformed(m)) => assert!(m.contains("parse"), "{m}"),
            other => panic!("{other:?}"),
        }
    }
}
