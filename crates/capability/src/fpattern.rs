//! Filter patterns (`Fpattern`s): the valid-filter specifications sources
//! export (Fig. 6, lines 2–33).

use crate::flags::{BindFlag, InstFlag};
use std::fmt;
use yat_model::AtomType;

/// The label of an Fpattern node.
#[derive(Debug, Clone, PartialEq)]
pub enum FLabel {
    /// A concrete symbol (`label="class"`).
    Sym(String),
    /// Any symbol (`label="Symbol"`): the position is a name the filter
    /// may (subject to `inst`) instantiate or bind.
    AnySym,
}

impl fmt::Display for FLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FLabel::Sym(s) => write!(f, "{s}"),
            FLabel::AnySym => write!(f, "Symbol"),
        }
    }
}

/// Edge occurrence in an Fpattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FOcc {
    /// Exactly one (`<node>`/`<value>` directly under a node).
    One,
    /// Zero or more (`<star>` wrapper).
    Star,
}

/// An edge of an Fpattern node, with its own `inst` flag (Fig. 6 puts
/// `inst` on `<star>` elements).
#[derive(Debug, Clone, PartialEq)]
pub struct FEdge {
    /// Occurrence.
    pub occ: FOcc,
    /// Edge instantiation restriction.
    pub inst: InstFlag,
    /// The child pattern.
    pub child: FPattern,
}

impl FEdge {
    /// A single-occurrence edge with no restriction.
    pub fn one(child: FPattern) -> Self {
        FEdge {
            occ: FOcc::One,
            inst: InstFlag::Free,
            child,
        }
    }

    /// A star edge with an `inst` flag.
    pub fn star(inst: InstFlag, child: FPattern) -> Self {
        FEdge {
            occ: FOcc::Star,
            inst,
            child,
        }
    }
}

/// A filter pattern: the shape of filters a source accepts, annotated with
/// binding restrictions.
#[derive(Debug, Clone, PartialEq)]
pub enum FPattern {
    /// An interior node with flags.
    Node {
        /// Label specification.
        label: FLabel,
        /// Binding restriction at this node.
        bind: BindFlag,
        /// Label instantiation restriction.
        inst: InstFlag,
        /// Child edges.
        edges: Vec<FEdge>,
    },
    /// Alternatives (`<union>`).
    Union(Vec<FPattern>),
    /// A reference to a named Fpattern (`<ref pattern="Fclass"/>` /
    /// `<value pattern="Ftype"/>`).
    Ref(String),
    /// An atomic-type leaf (`<leaf label="Int"/>`). Values of this type
    /// may always be bound or compared.
    Leaf(AtomType),
}

impl FPattern {
    /// A node with default flags.
    pub fn node(label: FLabel, edges: Vec<FEdge>) -> FPattern {
        FPattern::Node {
            label,
            bind: BindFlag::Any,
            inst: InstFlag::Free,
            edges,
        }
    }

    /// A symbol node with default flags.
    pub fn sym(name: impl Into<String>, edges: Vec<FEdge>) -> FPattern {
        FPattern::node(FLabel::Sym(name.into()), edges)
    }

    /// Sets the `bind` flag (builder style).
    pub fn with_bind(self, bind: BindFlag) -> FPattern {
        match self {
            FPattern::Node {
                label, inst, edges, ..
            } => FPattern::Node {
                label,
                bind,
                inst,
                edges,
            },
            other => other,
        }
    }

    /// Sets the `inst` flag (builder style).
    pub fn with_inst(self, inst: InstFlag) -> FPattern {
        match self {
            FPattern::Node {
                label, bind, edges, ..
            } => FPattern::Node {
                label,
                bind,
                inst,
                edges,
            },
            other => other,
        }
    }
}

impl fmt::Display for FPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FPattern::Node {
                label,
                bind,
                inst,
                edges,
            } => {
                write!(f, "{label}")?;
                let mut flags = Vec::new();
                if let Some(b) = bind.attr() {
                    flags.push(format!("bind={b}"));
                }
                if let Some(i) = inst.attr() {
                    flags.push(format!("inst={i}"));
                }
                if !flags.is_empty() {
                    write!(f, "⟨{}⟩", flags.join(","))?;
                }
                if !edges.is_empty() {
                    write!(f, "[")?;
                    for (i, e) in edges.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        if e.occ == FOcc::Star {
                            write!(f, "*")?;
                            if let Some(x) = e.inst.attr() {
                                write!(f, "⟨inst={x}⟩")?;
                            }
                        }
                        write!(f, "{}", e.child)?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            FPattern::Union(bs) => {
                write!(f, "(")?;
                for (i, b) in bs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            FPattern::Ref(n) => write!(f, "&{n}"),
            FPattern::Leaf(t) => write!(f, "{t}"),
        }
    }
}

/// A named collection of Fpatterns — one source's filter grammar
/// (`<fmodel name="o2fmodel">`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Fmodel {
    /// Model name.
    pub name: String,
    /// Named patterns, in declaration order.
    pub patterns: Vec<(String, FPattern)>,
}

impl Fmodel {
    /// An empty Fmodel.
    pub fn new(name: impl Into<String>) -> Self {
        Fmodel {
            name: name.into(),
            patterns: Vec::new(),
        }
    }

    /// Adds a named pattern (builder style).
    pub fn with(mut self, name: impl Into<String>, p: FPattern) -> Self {
        self.patterns.push((name.into(), p));
        self
    }

    /// Looks a pattern up by name.
    pub fn get(&self, name: &str) -> Option<&FPattern> {
        self.patterns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p)
    }
}

/// The O2 Fmodel of Fig. 6 (lines 2–33): `Fclass` and `Ftype` with the
/// paper's exact flags.
pub fn o2_fmodel() -> Fmodel {
    let fclass = FPattern::sym(
        "class",
        vec![FEdge::one(
            FPattern::node(
                FLabel::AnySym,
                vec![FEdge::one(FPattern::Ref("Ftype".into()))],
            )
            .with_bind(BindFlag::None)
            .with_inst(InstFlag::Ground),
        )],
    )
    .with_bind(BindFlag::Tree);

    let mut branches = vec![
        FPattern::Leaf(AtomType::Int),
        FPattern::Leaf(AtomType::Bool),
        FPattern::Leaf(AtomType::Float),
        FPattern::Leaf(AtomType::Str),
    ];
    branches.push(
        FPattern::sym(
            "tuple",
            vec![FEdge::star(
                InstFlag::Ground,
                FPattern::node(
                    FLabel::AnySym,
                    vec![FEdge::one(FPattern::Ref("Ftype".into()))],
                )
                .with_bind(BindFlag::None),
            )],
        )
        .with_bind(BindFlag::Tree),
    );
    for coll in ["set", "bag", "list", "array"] {
        branches.push(
            FPattern::sym(
                coll,
                vec![FEdge::star(InstFlag::None, FPattern::Ref("Ftype".into()))],
            )
            .with_bind(BindFlag::Tree),
        );
    }
    branches.push(FPattern::Ref("Fclass".into()));
    Fmodel::new("o2fmodel")
        .with("Fclass", fclass)
        .with("Ftype", FPattern::Union(branches))
}

/// The Wais Fmodel of Section 4.2: only whole `work` documents can be
/// bound.
pub fn wais_fmodel() -> Fmodel {
    Fmodel::new("waisfmodel").with(
        "Fworks",
        FPattern::sym(
            "works",
            vec![FEdge::star(
                InstFlag::None,
                FPattern::sym("work", vec![]).with_bind(BindFlag::Tree),
            )],
        )
        .with_bind(BindFlag::None)
        .with_inst(InstFlag::Ground),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o2_fmodel_structure() {
        let m = o2_fmodel();
        assert_eq!(m.name, "o2fmodel");
        let fclass = m.get("Fclass").unwrap();
        let FPattern::Node { bind, edges, .. } = fclass else {
            panic!()
        };
        assert_eq!(*bind, BindFlag::Tree);
        let FPattern::Node { bind, inst, .. } = &edges[0].child else {
            panic!()
        };
        assert_eq!(*bind, BindFlag::None);
        assert_eq!(*inst, InstFlag::Ground);
        let FPattern::Union(branches) = m.get("Ftype").unwrap() else {
            panic!()
        };
        assert_eq!(
            branches.len(),
            10,
            "4 atoms + tuple + 4 collections + &Fclass"
        );
        assert!(m.get("Missing").is_none());
    }

    #[test]
    fn wais_fmodel_is_restrictive() {
        let m = wais_fmodel();
        let FPattern::Node { bind, edges, .. } = m.get("Fworks").unwrap() else {
            panic!()
        };
        assert_eq!(
            *bind,
            BindFlag::None,
            "the works root itself cannot be bound"
        );
        let FPattern::Node {
            bind,
            edges: work_edges,
            ..
        } = &edges[0].child
        else {
            panic!()
        };
        assert_eq!(*bind, BindFlag::Tree, "whole work documents only");
        assert!(work_edges.is_empty(), "no decomposition of documents");
    }

    #[test]
    fn display_shows_flags() {
        let s = o2_fmodel().get("Fclass").unwrap().to_string();
        assert!(s.contains("class⟨bind=tree⟩"), "{s}");
        assert!(s.contains("Symbol⟨bind=none,inst=ground⟩"), "{s}");
    }

    #[test]
    fn builders() {
        let p = FPattern::sym("x", vec![])
            .with_bind(BindFlag::Label)
            .with_inst(InstFlag::Ground);
        let FPattern::Node { bind, inst, .. } = p else {
            panic!()
        };
        assert_eq!(bind, BindFlag::Label);
        assert_eq!(inst, InstFlag::Ground);
        // flags on non-nodes are no-ops
        let leaf = FPattern::Leaf(AtomType::Int).with_bind(BindFlag::None);
        assert_eq!(leaf, FPattern::Leaf(AtomType::Int));
    }
}
