//! XML serialization of `Tab` results — how wrappers return the outcome
//! of a pushed plan to the mediator.

use crate::xml::WireError;
use yat_algebra::{Tab, Value};
use yat_model::xml_convert::{tree_from_xml, tree_to_xml};
use yat_model::{Atom, AtomType};
use yat_xml::Element;

fn err(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

/// Serializes a result table:
/// `<tab cols="t a"><row><cell>..</cell>..</row>..</tab>`.
pub fn tab_to_xml(tab: &Tab) -> Element {
    let mut el = Element::new("tab").with_attr("cols", tab.columns().join(" "));
    for row in tab.rows() {
        let mut r = Element::new("row");
        for v in row {
            r.push_element(Element::new("cell").with_child(value_to_xml(v)));
        }
        el.push_element(r);
    }
    el
}

/// Parses a result table.
pub fn tab_from_xml(el: &Element) -> Result<Tab, WireError> {
    if el.name != "tab" {
        return Err(err(format!("expected <tab>, found <{}>", el.name)));
    }
    let cols: Vec<String> = el
        .attr("cols")
        .unwrap_or("")
        .split_whitespace()
        .map(str::to_string)
        .collect();
    let mut tab = Tab::new(cols);
    for row in el.children_named("row") {
        let values: Vec<Value> = row
            .children_named("cell")
            .map(|c| {
                c.elements()
                    .next()
                    .ok_or_else(|| err("<cell> is empty"))
                    .and_then(value_from_xml)
            })
            .collect::<Result<_, _>>()?;
        if values.len() != tab.columns().len() {
            return Err(err(format!(
                "row arity {} does not match {} columns",
                values.len(),
                tab.columns().len()
            )));
        }
        tab.push(values);
    }
    Ok(tab)
}

/// Serializes a single cell value.
pub fn value_to_xml(v: &Value) -> Element {
    match v {
        Value::Tree(t) => Element::new("t").with_child(tree_to_xml(t)),
        Value::Atom(a) => Element::new("a")
            .with_attr("type", a.atom_type().name())
            .with_attr("value", a.to_string()),
        Value::Label(l) => Element::new("l").with_attr("name", l.clone()),
        Value::Coll(c) => {
            let mut el = Element::new("c");
            for x in c {
                el.push_element(value_to_xml(x));
            }
            el
        }
        Value::Null => Element::new("n"),
    }
}

/// Parses a single cell value.
pub fn value_from_xml(el: &Element) -> Result<Value, WireError> {
    match el.name.as_str() {
        "t" => {
            let body = el.elements().next().ok_or_else(|| err("<t> is empty"))?;
            Ok(Value::Tree(tree_from_xml(body)))
        }
        "a" => {
            let t = el
                .attr("type")
                .and_then(AtomType::from_name)
                .ok_or_else(|| err("<a> with unknown type"))?;
            let raw = el.attr("value").ok_or_else(|| err("<a> missing value"))?;
            let a = Atom::parse_typed(raw, t)
                .ok_or_else(|| err(format!("`{raw}` is not a valid {t}")))?;
            Ok(Value::Atom(a))
        }
        "l" => Ok(Value::Label(
            el.attr("name")
                .ok_or_else(|| err("<l> missing name"))?
                .to_string(),
        )),
        "c" => Ok(Value::Coll(
            el.elements()
                .map(value_from_xml)
                .collect::<Result<_, _>>()?,
        )),
        "n" => Ok(Value::Null),
        other => Err(err(format!("unknown value element <{other}>"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yat_model::Node;

    #[test]
    fn tab_roundtrips() {
        let mut tab = Tab::new(vec!["t".into(), "p".into(), "misc".into()]);
        tab.push(vec![
            Value::Tree(Node::elem("title", "Nympheas")),
            Value::Atom(Atom::Float(150000.0)),
            Value::Coll(vec![Value::Label("cplace".into()), Value::Null]),
        ]);
        tab.push(vec![
            Value::Null,
            Value::Atom(Atom::Int(3)),
            Value::Coll(vec![]),
        ]);
        let back = tab_from_xml(&tab_to_xml(&tab)).unwrap();
        assert_eq!(tab, back);
    }

    #[test]
    fn empty_tab_keeps_columns() {
        let tab = Tab::new(vec!["x".into()]);
        let back = tab_from_xml(&tab_to_xml(&tab)).unwrap();
        assert_eq!(back.columns(), &["x".to_string()]);
        assert!(back.is_empty());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let el = yat_xml::parse_element(r#"<tab cols="a b"><row><cell><n/></cell></row></tab>"#)
            .unwrap();
        assert!(tab_from_xml(&el).is_err());
    }

    #[test]
    fn value_errors() {
        for bad in ["<t/>", "<a type=\"Int\" value=\"x\"/>", "<z/>", "<l/>"] {
            let el = yat_xml::parse_element(bad).unwrap();
            assert!(value_from_xml(&el).is_err(), "should reject {bad}");
        }
    }
}
