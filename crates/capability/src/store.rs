//! The storage plane's control surface: the `YAT_STORE` switch and the
//! per-execution storage accounting wrappers report for
//! `EXPLAIN ANALYZE`.
//!
//! Like `YAT_INDEX`, the policy gates *where collections live only*. A
//! store-backed source accepts and rejects exactly the same plans,
//! produces byte-identical answers and moves identical wire traffic as
//! the in-memory source — in-memory mode stays the oracle the
//! differential harness holds the store-backed paths to.

use std::fmt;

/// Where sources keep their collections: in RAM (the reference
/// behavior) or mounted from a persistent segmented store directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum StorePolicy {
    /// Collections live in RAM — the differential oracle.
    #[default]
    Off,
    /// Collections mount from a store under the given directory, with
    /// an optional residency byte budget.
    Dir {
        /// Root directory holding one store per source.
        path: String,
        /// Residency byte budget (`None` = the store default).
        budget: Option<u64>,
    },
}

impl StorePolicy {
    /// The policy selected by the `YAT_STORE` environment variable
    /// (`off` or `dir:<path>[:<budget-bytes>]`); off when unset. An
    /// invalid value falls back to off, loudly via [`yat_obs::warn`].
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("YAT_STORE").ok().as_deref())
    }

    /// [`StorePolicy::from_env`] on an explicit value (`None` = unset).
    pub fn from_env_value(value: Option<&str>) -> Self {
        let Some(value) = value else {
            return StorePolicy::default();
        };
        match Self::parse(value) {
            Some(policy) => policy,
            None => {
                yat_obs::warn(format!(
                    "YAT_STORE=`{value}` is not a valid store policy; accepted \
                     values are `off` or `dir:<path>[:<budget-bytes>]` — \
                     falling back to off (in-memory)"
                ));
                StorePolicy::default()
            }
        }
    }

    /// Parses the `YAT_STORE` syntax.
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim();
        if text.eq_ignore_ascii_case("off") || text.eq_ignore_ascii_case("mem") {
            return Some(StorePolicy::Off);
        }
        let rest = text.strip_prefix("dir:")?;
        if rest.is_empty() {
            return None;
        }
        // The budget is the suffix after the *last* colon, when numeric —
        // paths may themselves contain colons.
        if let Some((path, tail)) = rest.rsplit_once(':') {
            if let Ok(budget) = tail.parse::<u64>() {
                if path.is_empty() {
                    return None;
                }
                return Some(StorePolicy::Dir {
                    path: path.to_string(),
                    budget: Some(budget),
                });
            }
        }
        Some(StorePolicy::Dir {
            path: rest.to_string(),
            budget: None,
        })
    }

    /// Whether sources should mount persistent stores.
    pub fn is_on(&self) -> bool {
        !matches!(self, StorePolicy::Off)
    }
}

impl fmt::Display for StorePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorePolicy::Off => write!(f, "off"),
            StorePolicy::Dir { path, budget: None } => write!(f, "dir:{path}"),
            StorePolicy::Dir {
                path,
                budget: Some(b),
            } => write!(f, "dir:{path}:{b}"),
        }
    }
}

/// What one pushed-plan execution did against a source's persistent
/// store: segments resident and loaded, evictions, bytes read. Purely
/// observational — reported out-of-band next to the wire protocol,
/// aggregated into the `EXPLAIN ANALYZE` storage section. In-memory
/// sources never produce one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageReport {
    /// The collection/extent the plan ran over.
    pub collection: String,
    /// Live segments in the source's store.
    pub segments: u64,
    /// Segments resident in the LRU after the execution.
    pub resident: u64,
    /// Segment loads from disk during the execution.
    pub loads: u64,
    /// Segment evictions during the execution.
    pub evictions: u64,
    /// Bytes read from disk during the execution.
    pub bytes_read: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_default() {
        assert_eq!(StorePolicy::parse("off"), Some(StorePolicy::Off));
        assert_eq!(StorePolicy::parse(" MEM "), Some(StorePolicy::Off));
        assert_eq!(
            StorePolicy::parse("dir:/tmp/stores"),
            Some(StorePolicy::Dir {
                path: "/tmp/stores".into(),
                budget: None
            })
        );
        assert_eq!(
            StorePolicy::parse("dir:/tmp/stores:1048576"),
            Some(StorePolicy::Dir {
                path: "/tmp/stores".into(),
                budget: Some(1_048_576)
            })
        );
        // a colon in the path with no numeric suffix is part of the path
        assert_eq!(
            StorePolicy::parse("dir:/tmp/a:b"),
            Some(StorePolicy::Dir {
                path: "/tmp/a:b".into(),
                budget: None
            })
        );
        assert_eq!(StorePolicy::parse("dir:"), None);
        assert_eq!(StorePolicy::parse("disk"), None);
        assert_eq!(StorePolicy::from_env_value(None), StorePolicy::Off);
        // invalid value: warn + fall back to off
        let warnings = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = warnings.clone();
        yat_obs::set_warn_sink(Some(Box::new(move |msg| {
            sink.lock().unwrap().push(msg.to_string());
        })));
        assert_eq!(
            StorePolicy::from_env_value(Some("banana")),
            StorePolicy::Off
        );
        yat_obs::set_warn_sink(None);
        let got = warnings.lock().unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].contains("YAT_STORE"), "{}", got[0]);
    }

    #[test]
    fn display_round_trips() {
        for p in [
            StorePolicy::Off,
            StorePolicy::Dir {
                path: "/x".into(),
                budget: None,
            },
            StorePolicy::Dir {
                path: "/x".into(),
                budget: Some(4096),
            },
        ] {
            assert_eq!(StorePolicy::parse(&p.to_string()), Some(p));
        }
    }
}
