//! The mediator ↔ wrapper message protocol. Three requests cover the
//! paper's interaction patterns (Section 2 / Fig. 2):
//!
//! * `<get-interface/>` — import structural metadata and query
//!   capabilities (`yat> import o2artifact;`);
//! * `<get-document name="..."/>` — fetch a whole exported document (the
//!   naive strategy: materialize at the mediator);
//! * `<execute>plan</execute>` — evaluate a pushed plan at the source
//!   (capability-based evaluation, Section 5.3).
//!
//! Every message is an XML element; transports move the serialized bytes
//! and account for them.

use crate::interface::Interface;
use crate::plan_xml::{plan_from_xml, plan_to_xml};
use crate::tab_xml::{tab_from_xml, tab_to_xml};
use crate::xml::{interface_from_xml, interface_to_xml, WireError};
use std::sync::Arc;
use yat_algebra::{Alg, EvalOut, Tab};
use yat_model::xml_convert::{tree_from_xml, tree_to_xml};
use yat_model::Tree;
use yat_xml::Element;

/// A request from the mediator to a wrapper.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Import the wrapper's interface.
    GetInterface,
    /// Fetch a whole named document.
    GetDocument {
        /// Exported document name.
        name: String,
    },
    /// Execute a pushed plan.
    Execute {
        /// The plan (wrapper-local `Source` names).
        plan: Arc<Alg>,
    },
}

impl Request {
    /// The request's wire label — the XML element name it serializes to.
    /// Stable, so traces and profiles can use it to identify round-trip
    /// kinds.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::GetInterface => "get-interface",
            Request::GetDocument { .. } => "get-document",
            Request::Execute { .. } => "execute",
        }
    }

    /// Serializes the request.
    pub fn to_xml(&self) -> Element {
        match self {
            Request::GetInterface => Element::new(self.kind()),
            Request::GetDocument { name } => {
                Element::new(self.kind()).with_attr("name", name.clone())
            }
            Request::Execute { plan } => Element::new(self.kind()).with_child(plan_to_xml(plan)),
        }
    }

    /// Parses a request.
    pub fn from_xml(el: &Element) -> Result<Request, WireError> {
        match el.name.as_str() {
            "get-interface" => Ok(Request::GetInterface),
            "get-document" => Ok(Request::GetDocument {
                name: el
                    .attr("name")
                    .ok_or_else(|| WireError::Missing {
                        element: "get-document".into(),
                        what: "name".into(),
                    })?
                    .to_string(),
            }),
            "execute" => {
                let body = el.elements().next().ok_or_else(|| WireError::Missing {
                    element: "execute".into(),
                    what: "plan".into(),
                })?;
                Ok(Request::Execute {
                    plan: plan_from_xml(body)?,
                })
            }
            other => Err(WireError::UnknownVerb(format!("unknown request <{other}>"))),
        }
    }
}

/// A wrapper's response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The wrapper's interface.
    Interface(Interface),
    /// A whole document.
    Document {
        /// Its exported name.
        name: String,
        /// The tree.
        tree: Tree,
    },
    /// The result of an executed plan.
    Result(Tab),
    /// A failure.
    Error(String),
}

impl Response {
    /// Serializes the response.
    pub fn to_xml(&self) -> Element {
        match self {
            Response::Interface(i) => interface_to_xml(i),
            Response::Document { name, tree } => Element::new("document")
                .with_attr("name", name.clone())
                .with_child(tree_to_xml(tree)),
            Response::Result(tab) => Element::new("result").with_child(tab_to_xml(tab)),
            Response::Error(msg) => Element::new("error").with_attr("message", msg.clone()),
        }
    }

    /// Parses a response.
    pub fn from_xml(el: &Element) -> Result<Response, WireError> {
        match el.name.as_str() {
            "interface" => Ok(Response::Interface(interface_from_xml(el)?)),
            "document" => {
                let name = el.attr("name").ok_or_else(|| WireError::Missing {
                    element: "document".into(),
                    what: "name".into(),
                })?;
                let body = el.elements().next().ok_or_else(|| WireError::Missing {
                    element: "document".into(),
                    what: "a document tree".into(),
                })?;
                Ok(Response::Document {
                    name: name.to_string(),
                    tree: tree_from_xml(body),
                })
            }
            "result" => {
                let body = el.elements().next().ok_or_else(|| WireError::Missing {
                    element: "result".into(),
                    what: "a result table".into(),
                })?;
                Ok(Response::Result(tab_from_xml(body)?))
            }
            "error" => Ok(Response::Error(
                el.attr("message").unwrap_or("").to_string(),
            )),
            other => Err(WireError::UnknownVerb(format!(
                "unknown response <{other}>"
            ))),
        }
    }
}

// ------------------------------------------------------- client ↔ server
//
// The verbs above travel between the mediator and its wrappers. The
// serving layer (`yat-server`) multiplexes many *clients* over one
// mediator, and those sessions speak their own, disjoint verb set so a
// wrapper can never be confused for a client or vice versa.

/// A request from a client to a running `yat-server`.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientRequest {
    /// Plan → optimize → execute a YATL query, answering with the
    /// serialized result.
    Query {
        /// The YATL query text.
        text: String,
        /// Optional per-request deadline: the server refuses to *start*
        /// executing once this much time has passed since admission
        /// (queue wait included), answering `Error` instead.
        deadline_ms: Option<u64>,
        /// Client-negotiated chunked answer streaming (`stream="chunked"`
        /// on the wire). When set, a successful answer arrives as
        /// `answer-chunk*` + `answer-end` frames instead of one `answer`
        /// frame; replies other than answers stay single-frame. A server
        /// that predates the capability simply ignores the attribute and
        /// answers single-frame — the client handles both, so old and new
        /// peers interoperate in every combination.
        stream: bool,
    },
    /// Run the query as `EXPLAIN ANALYZE`, answering with the rendered
    /// report (server-side timings appended).
    Explain {
        /// The YATL query text.
        text: String,
    },
    /// Ask for the server's gauges and counters.
    Stats,
    /// Ask the server to drain in-flight queries and exit.
    Shutdown,
}

impl ClientRequest {
    /// The request's wire label — the XML element name it serializes to.
    pub fn kind(&self) -> &'static str {
        match self {
            ClientRequest::Query { .. } => "query",
            ClientRequest::Explain { .. } => "explain",
            ClientRequest::Stats => "stats",
            ClientRequest::Shutdown => "shutdown",
        }
    }

    /// Serializes the request.
    pub fn to_xml(&self) -> Element {
        match self {
            ClientRequest::Query {
                text,
                deadline_ms,
                stream,
            } => {
                let mut el = Element::new(self.kind()).with_text(text.clone());
                if let Some(ms) = deadline_ms {
                    el = el.with_attr("deadline-ms", ms.to_string());
                }
                if *stream {
                    el = el.with_attr("stream", "chunked");
                }
                el
            }
            ClientRequest::Explain { text } => Element::new(self.kind()).with_text(text.clone()),
            ClientRequest::Stats | ClientRequest::Shutdown => Element::new(self.kind()),
        }
    }

    /// Parses a request.
    pub fn from_xml(el: &Element) -> Result<ClientRequest, WireError> {
        match el.name.as_str() {
            "query" => {
                let deadline_ms = match el.attr("deadline-ms") {
                    Some(raw) => Some(raw.parse::<u64>().map_err(|_| {
                        WireError::Malformed(format!(
                            "<query> deadline-ms `{raw}` is not a non-negative integer"
                        ))
                    })?),
                    None => None,
                };
                let stream = match el.attr("stream") {
                    None => false,
                    Some("chunked") => true,
                    Some(other) => {
                        return Err(WireError::Malformed(format!(
                            "<query> stream `{other}` is not a known streaming mode \
                             (only `chunked`)"
                        )))
                    }
                };
                Ok(ClientRequest::Query {
                    text: el.text(),
                    deadline_ms,
                    stream,
                })
            }
            "explain" => Ok(ClientRequest::Explain { text: el.text() }),
            "stats" => Ok(ClientRequest::Stats),
            "shutdown" => Ok(ClientRequest::Shutdown),
            other => Err(WireError::UnknownVerb(format!(
                "unknown client request <{other}>"
            ))),
        }
    }
}

/// Per-source activity reported by [`ServerStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceGauge {
    /// The source's advertised name.
    pub name: String,
    /// Completed mediator↔wrapper round trips.
    pub round_trips: u64,
    /// Round trips currently on the wire (the connection-pool gauge).
    pub in_flight: u64,
    /// The federation group this source belongs to, when the mediator
    /// registered it as a member; `None` for plain connections (the
    /// gauge then serializes exactly as it did before federation).
    pub group: Option<String>,
    /// EWMA round-trip latency in microseconds, truncated to an
    /// integer for the wire. `0` until the member has history.
    pub ewma_latency_us: u64,
    /// Failed round trips recorded against the member's cost record.
    pub errors: u64,
}

/// The gauges and counters a `Stats` request answers with.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Worker threads in the session pool.
    pub workers: u64,
    /// Admission-queue capacity.
    pub queue_capacity: u64,
    /// Queries waiting in the admission queue right now.
    pub queue_depth: u64,
    /// Queries executing on workers right now.
    pub in_flight: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Queries admitted to the queue since start.
    pub admitted: u64,
    /// Queries answered successfully since start.
    pub served: u64,
    /// Queries refused with `Overloaded` because the queue was full.
    pub shed: u64,
    /// Queries that failed (execution errors, expired deadlines).
    pub errors: u64,
    /// Frames that failed to decode as a [`ClientRequest`].
    pub protocol_errors: u64,
    /// Whether the server is draining toward shutdown.
    pub draining: bool,
    /// Answer-cache hits across all sessions.
    pub cache_hits: u64,
    /// Answer-cache misses across all sessions.
    pub cache_misses: u64,
    /// Per-source wrapper-connection activity.
    pub sources: Vec<SourceGauge>,
}

/// A `yat-server`'s reply to one [`ClientRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServerReply {
    /// A query's result (`Tab` for table-shaped plans, `Tree` for
    /// constructed documents) — byte-identical, serialized, to what the
    /// in-process `Mediator::query` would have produced.
    Answer {
        /// The result.
        out: EvalOut,
        /// `answered-by`: the sources that contributed. Set only on
        /// *degraded* answers, so a complete answer stays byte-identical
        /// to what a pre-federation server sent.
        answered_by: Option<String>,
        /// `missing-sources`: `name=reason` pairs for the sources that
        /// failed out of a degraded answer. Set together with
        /// `answered_by`.
        missing: Option<String>,
    },
    /// A rendered `EXPLAIN ANALYZE` report.
    Explained {
        /// The report text.
        text: String,
    },
    /// The server's gauges and counters.
    Stats(ServerStats),
    /// The admission queue is full; retry after the hinted delay.
    Overloaded {
        /// Suggested client back-off.
        retry_after_ms: u64,
    },
    /// The request failed (parse error, execution error, expired
    /// deadline, draining server).
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Acknowledges `Shutdown` after every in-flight query drained.
    Bye {
        /// Queries that were drained (completed after the shutdown
        /// request arrived).
        drained: u64,
    },
}

impl ServerReply {
    /// A complete answer (no provenance attributes on the wire).
    pub fn answer(out: EvalOut) -> ServerReply {
        ServerReply::Answer {
            out,
            answered_by: None,
            missing: None,
        }
    }

    /// The reply's wire label — the XML element name it serializes to.
    pub fn kind(&self) -> &'static str {
        match self {
            ServerReply::Answer { .. } => "answer",
            ServerReply::Explained { .. } => "explained",
            ServerReply::Stats(_) => "server-stats",
            ServerReply::Overloaded { .. } => "overloaded",
            ServerReply::Error { .. } => "error",
            ServerReply::Bye { .. } => "bye",
        }
    }

    /// Serializes the reply.
    pub fn to_xml(&self) -> Element {
        match self {
            ServerReply::Answer {
                out,
                answered_by,
                missing,
            } => {
                let body = match out {
                    EvalOut::Tab(tab) => Element::new("result").with_child(tab_to_xml(tab)),
                    EvalOut::Tree(tree) => tree_to_xml(tree),
                };
                let mut el = Element::new(self.kind());
                if let Some(a) = answered_by {
                    el.set_attr("answered-by", a.clone());
                }
                if let Some(m) = missing {
                    el.set_attr("missing-sources", m.clone());
                }
                el.with_child(body)
            }
            ServerReply::Explained { text } => Element::new(self.kind()).with_text(text.clone()),
            ServerReply::Stats(stats) => {
                let mut el = Element::new(self.kind())
                    .with_attr("workers", stats.workers.to_string())
                    .with_attr("queue-capacity", stats.queue_capacity.to_string())
                    .with_attr("queue-depth", stats.queue_depth.to_string())
                    .with_attr("in-flight", stats.in_flight.to_string())
                    .with_attr("connections", stats.connections.to_string())
                    .with_attr("admitted", stats.admitted.to_string())
                    .with_attr("served", stats.served.to_string())
                    .with_attr("shed", stats.shed.to_string())
                    .with_attr("errors", stats.errors.to_string())
                    .with_attr("protocol-errors", stats.protocol_errors.to_string())
                    .with_attr("draining", stats.draining.to_string())
                    .with_attr("cache-hits", stats.cache_hits.to_string())
                    .with_attr("cache-misses", stats.cache_misses.to_string());
                for s in &stats.sources {
                    let mut gauge = Element::new("source")
                        .with_attr("name", s.name.clone())
                        .with_attr("round-trips", s.round_trips.to_string())
                        .with_attr("in-flight", s.in_flight.to_string());
                    // federation gauges ride along only for registered
                    // members, so plain servers keep their old bytes
                    if let Some(group) = &s.group {
                        gauge.set_attr("group", group.clone());
                        gauge.set_attr("ewma-latency-us", s.ewma_latency_us.to_string());
                        gauge.set_attr("errors", s.errors.to_string());
                    }
                    el.push_element(gauge);
                }
                el
            }
            ServerReply::Overloaded { retry_after_ms } => {
                Element::new(self.kind()).with_attr("retry-after-ms", retry_after_ms.to_string())
            }
            ServerReply::Error { message } => {
                Element::new(self.kind()).with_attr("message", message.clone())
            }
            ServerReply::Bye { drained } => {
                Element::new(self.kind()).with_attr("drained", drained.to_string())
            }
        }
    }

    /// Parses a reply.
    pub fn from_xml(el: &Element) -> Result<ServerReply, WireError> {
        let counter = |el: &Element, name: &str| -> Result<u64, WireError> {
            let raw = el.attr(name).ok_or_else(|| WireError::Missing {
                element: el.name.clone(),
                what: name.to_string(),
            })?;
            raw.parse::<u64>().map_err(|_| {
                WireError::Malformed(format!(
                    "<{}> {name} `{raw}` is not a non-negative integer",
                    el.name
                ))
            })
        };
        match el.name.as_str() {
            "answer" => {
                let body = el.elements().next().ok_or_else(|| WireError::Missing {
                    element: "answer".into(),
                    what: "a result or document body".into(),
                })?;
                let out = if body.name == "result" {
                    let inner = body.elements().next().ok_or_else(|| WireError::Missing {
                        element: "result".into(),
                        what: "a result table".into(),
                    })?;
                    EvalOut::Tab(tab_from_xml(inner)?)
                } else {
                    EvalOut::Tree(tree_from_xml(body))
                };
                Ok(ServerReply::Answer {
                    out,
                    answered_by: el.attr("answered-by").map(str::to_string),
                    missing: el.attr("missing-sources").map(str::to_string),
                })
            }
            "explained" => Ok(ServerReply::Explained { text: el.text() }),
            "server-stats" => {
                let mut stats = ServerStats {
                    workers: counter(el, "workers")?,
                    queue_capacity: counter(el, "queue-capacity")?,
                    queue_depth: counter(el, "queue-depth")?,
                    in_flight: counter(el, "in-flight")?,
                    connections: counter(el, "connections")?,
                    admitted: counter(el, "admitted")?,
                    served: counter(el, "served")?,
                    shed: counter(el, "shed")?,
                    errors: counter(el, "errors")?,
                    protocol_errors: counter(el, "protocol-errors")?,
                    draining: el.attr("draining") == Some("true"),
                    cache_hits: counter(el, "cache-hits")?,
                    cache_misses: counter(el, "cache-misses")?,
                    sources: Vec::new(),
                };
                for s in el.children_named("source") {
                    stats.sources.push(SourceGauge {
                        name: s
                            .attr("name")
                            .ok_or_else(|| WireError::Missing {
                                element: "source".into(),
                                what: "name".into(),
                            })?
                            .to_string(),
                        round_trips: counter(s, "round-trips")?,
                        in_flight: counter(s, "in-flight")?,
                        group: s.attr("group").map(str::to_string),
                        ewma_latency_us: if s.attr("ewma-latency-us").is_some() {
                            counter(s, "ewma-latency-us")?
                        } else {
                            0
                        },
                        errors: if s.attr("errors").is_some() {
                            counter(s, "errors")?
                        } else {
                            0
                        },
                    });
                }
                Ok(ServerReply::Stats(stats))
            }
            "overloaded" => Ok(ServerReply::Overloaded {
                retry_after_ms: counter(el, "retry-after-ms")?,
            }),
            "error" => Ok(ServerReply::Error {
                message: el.attr("message").unwrap_or("").to_string(),
            }),
            "bye" => Ok(ServerReply::Bye {
                drained: counter(el, "drained")?,
            }),
            other => Err(WireError::UnknownVerb(format!(
                "unknown server reply <{other}>"
            ))),
        }
    }
}

/// One frame of a chunked answer stream — what a `stream="chunked"`
/// query's successful answer is delivered as. The stream is
/// `Chunk{seq: 0}`, `Chunk{seq: 1}`, …, then exactly one terminal frame:
/// `End` (whose counts let the consumer prove nothing was dropped) or
/// `Abort` (the producer failed after chunks were already on the wire —
/// too late for a plain `error` reply, which would leave the delivered
/// prefix looking like a complete short answer).
#[derive(Debug, Clone, PartialEq)]
pub enum StreamFrame {
    /// One batch of the answer. Table-shaped answers carry a `Tab`
    /// holding this batch's rows (every chunk repeats the column
    /// layout); tree-shaped answers carry a copy of the answer's root
    /// holding this batch's top-level subtrees (every chunk repeats the
    /// root, the receiver concatenates the children).
    Chunk {
        /// Zero-based position in the stream; a receiver must refuse
        /// gaps and reordering.
        seq: u64,
        /// The batch.
        payload: EvalOut,
    },
    /// Terminal frame of a successful stream.
    End {
        /// Chunks that were sent; must equal what arrived.
        chunks: u64,
        /// Total rows across all chunks (top-level subtrees for a
        /// tree-shaped answer).
        rows: u64,
        /// `answered-by`: set only when the streamed answer is degraded
        /// (see [`ServerReply::Answer`]).
        answered_by: Option<String>,
        /// `missing-sources`: set together with `answered_by`.
        missing: Option<String>,
    },
    /// Terminal frame of a failed stream.
    Abort {
        /// What went wrong on the producer side.
        message: String,
    },
}

impl StreamFrame {
    /// The frame's wire label — the XML element name it serializes to.
    pub fn kind(&self) -> &'static str {
        match self {
            StreamFrame::Chunk { .. } => "answer-chunk",
            StreamFrame::End { .. } => "answer-end",
            StreamFrame::Abort { .. } => "stream-abort",
        }
    }

    /// Serializes the frame. A chunk's body is exactly an `answer`
    /// body (`<result><tab…/></result>` or a tree), so the reassembled
    /// stream and the single-frame answer share one serialization.
    pub fn to_xml(&self) -> Element {
        match self {
            StreamFrame::Chunk { seq, payload } => {
                let body = match payload {
                    EvalOut::Tab(tab) => Element::new("result").with_child(tab_to_xml(tab)),
                    EvalOut::Tree(tree) => tree_to_xml(tree),
                };
                Element::new(self.kind())
                    .with_attr("seq", seq.to_string())
                    .with_child(body)
            }
            StreamFrame::End {
                chunks,
                rows,
                answered_by,
                missing,
            } => {
                let mut el = Element::new(self.kind())
                    .with_attr("chunks", chunks.to_string())
                    .with_attr("rows", rows.to_string());
                if let Some(a) = answered_by {
                    el.set_attr("answered-by", a.clone());
                }
                if let Some(m) = missing {
                    el.set_attr("missing-sources", m.clone());
                }
                el
            }
            StreamFrame::Abort { message } => {
                Element::new(self.kind()).with_attr("message", message.clone())
            }
        }
    }

    /// Parses a stream frame; `Err` for anything that is not one (the
    /// caller then falls back to [`ServerReply::from_xml`]).
    pub fn from_xml(el: &Element) -> Result<StreamFrame, WireError> {
        let counter = |name: &str| -> Result<u64, WireError> {
            let raw = el.attr(name).ok_or_else(|| WireError::Missing {
                element: el.name.clone(),
                what: name.to_string(),
            })?;
            raw.parse::<u64>().map_err(|_| {
                WireError::Malformed(format!(
                    "<{}> {name} `{raw}` is not a non-negative integer",
                    el.name
                ))
            })
        };
        match el.name.as_str() {
            "answer-chunk" => {
                let seq = counter("seq")?;
                let body = el.elements().next().ok_or_else(|| WireError::Missing {
                    element: "answer-chunk".into(),
                    what: "a result or document body".into(),
                })?;
                let payload = if body.name == "result" {
                    let inner = body.elements().next().ok_or_else(|| WireError::Missing {
                        element: "result".into(),
                        what: "a result table".into(),
                    })?;
                    EvalOut::Tab(tab_from_xml(inner)?)
                } else {
                    EvalOut::Tree(tree_from_xml(body))
                };
                Ok(StreamFrame::Chunk { seq, payload })
            }
            "answer-end" => Ok(StreamFrame::End {
                chunks: counter("chunks")?,
                rows: counter("rows")?,
                answered_by: el.attr("answered-by").map(str::to_string),
                missing: el.attr("missing-sources").map(str::to_string),
            }),
            "stream-abort" => Ok(StreamFrame::Abort {
                message: el.attr("message").unwrap_or("").to_string(),
            }),
            other => Err(WireError::UnknownVerb(format!(
                "unknown stream frame <{other}>"
            ))),
        }
    }
}

/// The server side of the protocol, implemented by each wrapper.
///
/// Kept object-safe and string-free on purpose: the transport layer in
/// `yat-mediator` serializes [`Request`]/[`Response`] to XML text and
/// counts the bytes, simulating the paper's networked deployment (Fig. 2).
pub trait WrapperServer: Send + Sync {
    /// The wrapper's advertised name (`o2artifact`).
    fn name(&self) -> &str;

    /// Handles one request.
    fn handle(&self, request: &Request) -> Response;

    /// Takes the index accounting of the most recent `Execute`, if the
    /// wrapper recorded one ([`crate::IndexReport`]). Observational
    /// only: the transport layer collects it *next to* the wire (never
    /// on it) and feeds the `EXPLAIN ANALYZE` index section, so answers
    /// and traffic stay byte-identical whether anyone asks or not.
    fn take_index_report(&self) -> Option<crate::IndexReport> {
        None
    }

    /// Takes the storage accounting of the most recent `Execute`, if
    /// the wrapper runs store-backed and recorded one
    /// ([`crate::StorageReport`]). Observational only, collected next
    /// to the wire exactly like [`WrapperServer::take_index_report`];
    /// in-memory wrappers return `None`.
    fn take_storage_report(&self) -> Option<crate::StorageReport> {
        None
    }

    /// Registers a mediator-side epoch cell the wrapper must bump when
    /// its underlying store mutates (documents added/removed), so the
    /// answer cache can never serve pre-mutation results. Default:
    /// ignore (immutable sources).
    fn register_epoch(&self, _epoch: std::sync::Arc<std::sync::atomic::AtomicU64>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use yat_model::Node;

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::GetInterface,
            Request::GetDocument {
                name: "artifacts".into(),
            },
            Request::Execute {
                plan: Alg::source("works"),
            },
        ];
        for r in reqs {
            let back = Request::from_xml(&r.to_xml()).unwrap();
            assert_eq!(r, back);
            assert_eq!(r.to_xml().name, r.kind(), "kind() is the wire label");
        }
        let bad = yat_xml::parse_element("<nonsense/>").unwrap();
        assert!(Request::from_xml(&bad).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        let mut tab = Tab::new(vec!["t".into()]);
        tab.push(vec![yat_algebra::Value::Tree(Node::elem(
            "title", "Nympheas",
        ))]);
        let resps = vec![
            Response::Document {
                name: "works".into(),
                tree: Node::sym("works", vec![]),
            },
            Response::Result(tab),
            Response::Error("nope".into()),
        ];
        for r in resps {
            let back = Response::from_xml(&r.to_xml()).unwrap();
            assert_eq!(r, back);
        }
    }
}
