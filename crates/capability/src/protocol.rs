//! The mediator ↔ wrapper message protocol. Three requests cover the
//! paper's interaction patterns (Section 2 / Fig. 2):
//!
//! * `<get-interface/>` — import structural metadata and query
//!   capabilities (`yat> import o2artifact;`);
//! * `<get-document name="..."/>` — fetch a whole exported document (the
//!   naive strategy: materialize at the mediator);
//! * `<execute>plan</execute>` — evaluate a pushed plan at the source
//!   (capability-based evaluation, Section 5.3).
//!
//! Every message is an XML element; transports move the serialized bytes
//! and account for them.

use crate::interface::Interface;
use crate::plan_xml::{plan_from_xml, plan_to_xml};
use crate::tab_xml::{tab_from_xml, tab_to_xml};
use crate::xml::{interface_from_xml, interface_to_xml, WireError};
use std::sync::Arc;
use yat_algebra::{Alg, Tab};
use yat_model::xml_convert::{tree_from_xml, tree_to_xml};
use yat_model::Tree;
use yat_xml::Element;

/// A request from the mediator to a wrapper.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Import the wrapper's interface.
    GetInterface,
    /// Fetch a whole named document.
    GetDocument {
        /// Exported document name.
        name: String,
    },
    /// Execute a pushed plan.
    Execute {
        /// The plan (wrapper-local `Source` names).
        plan: Arc<Alg>,
    },
}

impl Request {
    /// The request's wire label — the XML element name it serializes to.
    /// Stable, so traces and profiles can use it to identify round-trip
    /// kinds.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::GetInterface => "get-interface",
            Request::GetDocument { .. } => "get-document",
            Request::Execute { .. } => "execute",
        }
    }

    /// Serializes the request.
    pub fn to_xml(&self) -> Element {
        match self {
            Request::GetInterface => Element::new(self.kind()),
            Request::GetDocument { name } => {
                Element::new(self.kind()).with_attr("name", name.clone())
            }
            Request::Execute { plan } => Element::new(self.kind()).with_child(plan_to_xml(plan)),
        }
    }

    /// Parses a request.
    pub fn from_xml(el: &Element) -> Result<Request, WireError> {
        match el.name.as_str() {
            "get-interface" => Ok(Request::GetInterface),
            "get-document" => Ok(Request::GetDocument {
                name: el
                    .attr("name")
                    .ok_or_else(|| WireError("<get-document> missing name".into()))?
                    .to_string(),
            }),
            "execute" => {
                let body = el
                    .elements()
                    .next()
                    .ok_or_else(|| WireError("<execute> missing plan".into()))?;
                Ok(Request::Execute {
                    plan: plan_from_xml(body)?,
                })
            }
            other => Err(WireError(format!("unknown request <{other}>"))),
        }
    }
}

/// A wrapper's response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The wrapper's interface.
    Interface(Interface),
    /// A whole document.
    Document {
        /// Its exported name.
        name: String,
        /// The tree.
        tree: Tree,
    },
    /// The result of an executed plan.
    Result(Tab),
    /// A failure.
    Error(String),
}

impl Response {
    /// Serializes the response.
    pub fn to_xml(&self) -> Element {
        match self {
            Response::Interface(i) => interface_to_xml(i),
            Response::Document { name, tree } => Element::new("document")
                .with_attr("name", name.clone())
                .with_child(tree_to_xml(tree)),
            Response::Result(tab) => Element::new("result").with_child(tab_to_xml(tab)),
            Response::Error(msg) => Element::new("error").with_attr("message", msg.clone()),
        }
    }

    /// Parses a response.
    pub fn from_xml(el: &Element) -> Result<Response, WireError> {
        match el.name.as_str() {
            "interface" => Ok(Response::Interface(interface_from_xml(el)?)),
            "document" => {
                let name = el
                    .attr("name")
                    .ok_or_else(|| WireError("<document> missing name".into()))?;
                let body = el
                    .elements()
                    .next()
                    .ok_or_else(|| WireError("<document> is empty".into()))?;
                Ok(Response::Document {
                    name: name.to_string(),
                    tree: tree_from_xml(body),
                })
            }
            "result" => {
                let body = el
                    .elements()
                    .next()
                    .ok_or_else(|| WireError("<result> is empty".into()))?;
                Ok(Response::Result(tab_from_xml(body)?))
            }
            "error" => Ok(Response::Error(
                el.attr("message").unwrap_or("").to_string(),
            )),
            other => Err(WireError(format!("unknown response <{other}>"))),
        }
    }
}

/// The server side of the protocol, implemented by each wrapper.
///
/// Kept object-safe and string-free on purpose: the transport layer in
/// `yat-mediator` serializes [`Request`]/[`Response`] to XML text and
/// counts the bytes, simulating the paper's networked deployment (Fig. 2).
pub trait WrapperServer: Send + Sync {
    /// The wrapper's advertised name (`o2artifact`).
    fn name(&self) -> &str;

    /// Handles one request.
    fn handle(&self, request: &Request) -> Response;
}

#[cfg(test)]
mod tests {
    use super::*;
    use yat_model::Node;

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::GetInterface,
            Request::GetDocument {
                name: "artifacts".into(),
            },
            Request::Execute {
                plan: Alg::source("works"),
            },
        ];
        for r in reqs {
            let back = Request::from_xml(&r.to_xml()).unwrap();
            assert_eq!(r, back);
            assert_eq!(r.to_xml().name, r.kind(), "kind() is the wire label");
        }
        let bad = yat_xml::parse_element("<nonsense/>").unwrap();
        assert!(Request::from_xml(&bad).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        let mut tab = Tab::new(vec!["t".into()]);
        tab.push(vec![yat_algebra::Value::Tree(Node::elem(
            "title", "Nympheas",
        ))]);
        let resps = vec![
            Response::Document {
                name: "works".into(),
                tree: Node::sym("works", vec![]),
            },
            Response::Result(tab),
            Response::Error("nope".into()),
        ];
        for r in resps {
            let back = Response::from_xml(&r.to_xml()).unwrap();
            assert_eq!(r, back);
        }
    }
}
