//! # yat-wais — an XML full-text source and the xmlwais wrapper
//!
//! The paper's second source is "a partially structured document
//! repository supporting full-text queries" — XML documents indexed by
//! the Wais retrieval engine over the Z39.50 protocol (Sections 2 and
//! 4.2). This crate is that substrate, built from scratch:
//!
//! * [`docs`] — the `works` document collection: partially structured
//!   XML (mandatory `artist`/`title`/`style`/`size`, optional `cplace`,
//!   `history`, `technique` — Fig. 1 right), with a seeded generator that
//!   shares titles/artists with the `yat-oql` art database so the
//!   integration view joins the two sources;
//! * [`index`] — a per-field inverted index implementing the Wais
//!   attribute/value textual queries and the `contains` predicate;
//! * [`source`] — the retrieval engine: `contains` lookups, field
//!   restrictions (Z39.50 separates "what you may retrieve" from "what
//!   you may query", Section 4.2);
//! * [`wrapper`] — the `xmlwais-wrapper` program: exports the restricted
//!   interface of Section 4.2 (bind whole `work` documents only, push
//!   `select` with `contains`, the `eq ⇒ contains` equivalence) and
//!   evaluates pushed plans against the index.

pub mod docs;
pub mod index;
pub mod source;
pub mod wrapper;

pub use docs::{fig1_works, generate_works, WorksSpec};
pub use source::WaisSource;
pub use wrapper::WaisWrapper;
