//! The `works` document collection and its generator.

use yat_model::{Node, Tree};
use yat_oql::art::{artist_of, title_of};
use yat_prng::Rng;

/// Parameters of the synthetic works collection. Titles and artists of
/// the first `min(works, artifacts)` documents coincide with the O2
/// generator's artifacts, giving the view join its overlap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorksSpec {
    /// Number of work documents.
    pub works: usize,
    /// Percentage (0–100) of works whose style is `Impressionist`
    /// (the Q2 full-text selectivity).
    pub impressionist_pct: u8,
    /// Percentage of works carrying optional fields at all.
    pub optional_pct: u8,
    /// Among works with a `cplace`, percentage created at `Giverny`
    /// (the Q1 selectivity).
    pub giverny_pct: u8,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorksSpec {
    fn default() -> Self {
        WorksSpec {
            works: 50,
            impressionist_pct: 40,
            optional_pct: 50,
            giverny_pct: 30,
            seed: 42,
        }
    }
}

const STYLES: &[&str] = &["Post-Impressionist", "Realist", "Cubist", "Romantic"];
const PLACES: &[&str] = &["Paris", "Aix-en-Provence", "London", "Rouen"];
const TECHNIQUES: &[&str] = &["Oil on canvas", "Pastel", "Watercolour", "Gouache"];

/// Generates one work document.
fn work_doc(i: usize, spec: &WorksSpec, rng: &mut Rng) -> Tree {
    let mut children = vec![
        Node::elem("artist", artist_of(i)),
        Node::elem("title", title_of(i)),
    ];
    let style = if rng.gen_range(0..100u8) < spec.impressionist_pct {
        "Impressionist".to_string()
    } else {
        STYLES[rng.gen_range(0..STYLES.len())].to_string()
    };
    children.push(Node::elem("style", style));
    children.push(Node::elem(
        "size",
        format!(
            "{} x {}",
            10 + rng.gen_range(0..90),
            10 + rng.gen_range(0..90)
        ),
    ));
    if rng.gen_range(0..100u8) < spec.optional_pct {
        // optional fields: cplace and/or history
        if rng.gen_bool(0.6) {
            let place = if rng.gen_range(0..100u8) < spec.giverny_pct {
                "Giverny".to_string()
            } else {
                PLACES[rng.gen_range(0..PLACES.len())].to_string()
            };
            children.push(Node::elem("cplace", place));
        }
        if rng.gen_bool(0.5) {
            children.push(Node::sym(
                "history",
                vec![
                    Node::atom("Painted with"),
                    Node::elem("technique", TECHNIQUES[rng.gen_range(0..TECHNIQUES.len())]),
                    Node::atom("in the artist's studio"),
                ],
            ));
        }
    }
    Node::sym("work", children)
}

/// Generates the `works` document: `works[work..]`.
pub fn generate_works(spec: &WorksSpec) -> Tree {
    let mut rng = Rng::seed_from_u64(spec.seed);
    let works: Vec<Tree> = (0..spec.works)
        .map(|i| work_doc(i, spec, &mut rng))
        .collect();
    Node::sym("works", works)
}

/// The two works of Fig. 1 (right), literally.
pub fn fig1_works() -> Tree {
    Node::sym(
        "works",
        vec![
            Node::sym(
                "work",
                vec![
                    Node::elem("artist", "Claude Monet"),
                    Node::elem("title", "Nympheas"),
                    Node::elem("style", "Impressionist"),
                    Node::elem("size", "21 x 61"),
                    Node::elem("cplace", "Giverny"),
                ],
            ),
            Node::sym(
                "work",
                vec![
                    Node::elem("artist", "Claude Monet"),
                    Node::elem("title", "Waterloo Bridge"),
                    Node::elem("style", "Impressionist"),
                    Node::elem("size", "29.2 x 46.4"),
                    Node::sym(
                        "history",
                        vec![
                            Node::atom("Painted with"),
                            Node::elem("technique", "Oil on canvas"),
                            Node::atom("in ..."),
                        ],
                    ),
                ],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let spec = WorksSpec {
            works: 20,
            ..Default::default()
        };
        let a = generate_works(&spec);
        let b = generate_works(&spec);
        assert_eq!(a, b);
        assert_eq!(a.children.len(), 20);
    }

    #[test]
    fn mandatory_fields_always_present() {
        let t = generate_works(&WorksSpec {
            works: 30,
            seed: 3,
            ..Default::default()
        });
        for w in &t.children {
            for field in ["artist", "title", "style", "size"] {
                assert!(w.child(field).is_some(), "missing {field} in {w}");
            }
        }
    }

    #[test]
    fn selectivities_respected_roughly() {
        let spec = WorksSpec {
            works: 400,
            impressionist_pct: 50,
            optional_pct: 100,
            giverny_pct: 100,
            seed: 9,
        };
        let t = generate_works(&spec);
        let imp = t
            .children
            .iter()
            .filter(|w| {
                w.child("style")
                    .map(|s| s.value_atom().unwrap().to_string())
                    == Some("Impressionist".into())
            })
            .count();
        assert!(
            (120..=280).contains(&imp),
            "~50% impressionist, got {imp}/400"
        );
        // all cplace values are Giverny at 100%
        for w in &t.children {
            if let Some(c) = w.child("cplace") {
                assert_eq!(c.value_atom().unwrap().to_string(), "Giverny");
            }
        }
    }

    #[test]
    fn titles_overlap_with_art_generator() {
        let t = generate_works(&WorksSpec {
            works: 5,
            ..Default::default()
        });
        assert_eq!(
            t.children[3]
                .child("title")
                .unwrap()
                .value_atom()
                .unwrap()
                .to_string(),
            yat_oql::art::title_of(3)
        );
        assert_eq!(
            t.children[2]
                .child("artist")
                .unwrap()
                .value_atom()
                .unwrap()
                .to_string(),
            yat_oql::art::artist_of(2)
        );
    }

    #[test]
    fn fig1_works_shape() {
        let t = fig1_works();
        assert_eq!(t.children.len(), 2);
        assert_eq!(
            t.children[0]
                .child("cplace")
                .unwrap()
                .value_atom()
                .unwrap()
                .to_string(),
            "Giverny"
        );
        assert!(t.children[1].child("history").is_some());
    }
}
