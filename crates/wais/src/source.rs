//! The Wais retrieval engine: documents + index + field policy.

use crate::index::{tokenize, DocId, InvertedIndex};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use yat_capability::IndexPolicy;
use yat_model::{decode_tree, encode_tree, Label, Node, Tree};
use yat_store::{load_sidecar, save_sidecar, DocStore, StoreError, StoreOptions};

/// The Z39.50-style field policy: "a clear separation between what you
/// may retrieve and what you may query" (Section 4.2). `None` means
/// unrestricted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FieldPolicy {
    /// Fields that appear in retrieved documents (others are stripped).
    pub retrievable: Option<BTreeSet<String>>,
    /// Fields textual queries may target (full-text always allowed when
    /// `None`).
    pub queryable: Option<BTreeSet<String>>,
}

impl FieldPolicy {
    /// An unrestricted policy.
    pub fn open() -> Self {
        FieldPolicy::default()
    }

    /// The Section 4.2 example: "only the artist and style elements can
    /// be exported from our XML documents while allowing queries only on
    /// the optional fields".
    pub fn aquarelle_example() -> Self {
        FieldPolicy {
            retrievable: Some(["artist".to_string(), "style".to_string()].into()),
            queryable: Some(
                [
                    "cplace".to_string(),
                    "history".to_string(),
                    "technique".to_string(),
                ]
                .into(),
            ),
        }
    }
}

/// The full-text source: a document collection with its inverted index.
///
/// Search dispatches on the source's [`IndexPolicy`] (defaulting to
/// `YAT_INDEX`): `On` resolves queries through the inverted index, `Off`
/// scans every live document with identical token semantics — the oracle
/// the differential tests hold the index to. Either way the answer is
/// the same ascending id list.
///
/// Documents occupy stable slots: [`WaisSource::remove_document`]
/// tombstones a slot (ids never shift or get reused) and patches the
/// affected posting lists; both mutations bump every epoch cell
/// registered via [`WaisSource::register_epoch`], so mediator answer
/// caches stop serving pre-mutation results.
#[derive(Debug, Clone)]
pub struct WaisSource {
    /// The collection name (`works`).
    pub collection: String,
    bank: DocBank,
    index: InvertedIndex,
    policy: FieldPolicy,
    index_policy: IndexPolicy,
    /// Epoch cells to bump on mutation (clones share them).
    epochs: Vec<Arc<AtomicU64>>,
}

/// Where the documents live: RAM slots (the oracle) or a mounted
/// persistent store keyed by big-endian doc id.
#[derive(Debug, Clone)]
enum DocBank {
    Mem {
        docs: Vec<Option<Tree>>,
        live: usize,
    },
    Disk {
        store: Arc<DocStore>,
        /// Next id to assign (tombstoned slots are never reused, so this
        /// is persisted in the manifest's `slots` meta, not derived from
        /// the live keys).
        slots: u64,
        /// The persisted mutation epoch (mirrors the manifest).
        epoch: u64,
    },
}

/// The store key of a document id — big-endian so the store's key order
/// is ascending id order.
fn id_key(id: DocId) -> [u8; 8] {
    (id as u64).to_be_bytes()
}

fn key_id(key: &[u8]) -> DocId {
    let mut raw = [0u8; 8];
    raw[8 - key.len().min(8)..].copy_from_slice(&key[..key.len().min(8)]);
    u64::from_be_bytes(raw) as DocId
}

/// The sidecar name of the persisted inverted-index snapshot.
const INDEX_SIDECAR: &str = "wais.index";

impl WaisSource {
    /// Indexes a `works[work..]` document under the given collection
    /// name.
    pub fn new(collection: impl Into<String>, root: &Tree) -> Self {
        let docs: Vec<Option<Tree>> = root.children.iter().cloned().map(Some).collect();
        let mut index = InvertedIndex::default();
        for (id, doc) in docs.iter().enumerate() {
            index.add(id, doc.as_ref().expect("fresh slots are live"));
        }
        WaisSource {
            collection: collection.into(),
            bank: DocBank::Mem {
                live: docs.len(),
                docs,
            },
            index,
            policy: FieldPolicy::open(),
            index_policy: IndexPolicy::from_env(),
            epochs: Vec::new(),
        }
    }

    /// A store-backed source at `dir`. A fresh directory is populated
    /// from `root` (one bulk commit, index snapshot saved as a sidecar);
    /// an existing store mounts instead and `root` is ignored — the
    /// durable documents win. Mounting validates every committed byte
    /// and loads the index sidecar when its generation matches,
    /// rebuilding it from the documents otherwise.
    pub fn open_store(
        collection: impl Into<String>,
        root: &Tree,
        dir: &Path,
        opts: StoreOptions,
    ) -> Result<Self, StoreError> {
        let collection = collection.into();
        let store = DocStore::open_or_create(dir, opts)?;
        let mut index = InvertedIndex::default();
        let (slots, epoch);
        if store.meta("slots").is_none() {
            // fresh store: bulk-load the documents, one commit
            for (id, doc) in root.children.iter().enumerate() {
                store.put(&id_key(id), &encode_tree(doc))?;
                index.add(id, doc);
            }
            store.set_meta("slots", &root.children.len().to_string());
            store.set_meta("collection", &collection);
            store.commit(0)?;
            slots = root.children.len() as u64;
            epoch = 0;
            let _ = save_sidecar(dir, INDEX_SIDECAR, store.generation(), &index.to_bytes());
        } else {
            slots = store
                .meta("slots")
                .and_then(|s| s.parse().ok())
                .unwrap_or(store.len() as u64);
            epoch = store.epoch();
            index = match load_sidecar(dir, INDEX_SIDECAR, store.generation())
                .and_then(|bytes| InvertedIndex::from_bytes(&bytes))
            {
                Some(snapshot) => snapshot,
                None => {
                    // stale or damaged sidecar: rebuild from the documents
                    let mut rebuilt = InvertedIndex::default();
                    store.scan(|key, payload| {
                        let doc = decode_tree(payload).map_err(|e| StoreError::Manifest {
                            detail: format!("undecodable document {:?}: {e}", key_id(key)),
                        })?;
                        rebuilt.add(key_id(key), &doc);
                        Ok(())
                    })?;
                    let _ =
                        save_sidecar(dir, INDEX_SIDECAR, store.generation(), &rebuilt.to_bytes());
                    rebuilt
                }
            };
        }
        Ok(WaisSource {
            collection,
            bank: DocBank::Disk {
                store: Arc::new(store),
                slots,
                epoch,
            },
            index,
            policy: FieldPolicy::open(),
            index_policy: IndexPolicy::from_env(),
            epochs: Vec::new(),
        })
    }

    /// The persistent store backing this source, if store-backed.
    pub fn store(&self) -> Option<&Arc<DocStore>> {
        match &self.bank {
            DocBank::Mem { .. } => None,
            DocBank::Disk { store, .. } => Some(store),
        }
    }

    /// Installs a field policy (builder style).
    pub fn with_policy(mut self, policy: FieldPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Selects index-driven or scanning evaluation (builder style).
    pub fn with_index_policy(mut self, policy: IndexPolicy) -> Self {
        self.index_policy = policy;
        self
    }

    /// The current index policy.
    pub fn index_policy(&self) -> IndexPolicy {
        self.index_policy
    }

    /// Selects whether searches consult the inverted index or scan.
    pub fn set_index_policy(&mut self, policy: IndexPolicy) {
        self.index_policy = policy;
    }

    /// Registers an epoch cell to bump whenever the collection mutates
    /// (the mediator hands over its connection's cell at connect time).
    /// A store-backed source first raises the cell to its *persisted*
    /// epoch, so cache entries recorded before a restart-with-mutations
    /// can never validate against a remounted source.
    pub fn register_epoch(&mut self, cell: Arc<AtomicU64>) {
        if let DocBank::Disk { epoch, .. } = &self.bank {
            cell.fetch_max(*epoch, Ordering::SeqCst);
        }
        self.epochs.push(cell);
    }

    /// Adds a document to the collection: indexes it, bumps registered
    /// epochs (store-backed sources also commit, persisting the new
    /// epoch), returns its id.
    pub fn add_document(&mut self, doc: Tree) -> DocId {
        let id = match &mut self.bank {
            DocBank::Mem { docs, live } => {
                let id = docs.len();
                docs.push(Some(doc.clone()));
                *live += 1;
                id
            }
            DocBank::Disk {
                store,
                slots,
                epoch,
            } => {
                let id = *slots as DocId;
                *slots += 1;
                *epoch += 1;
                store
                    .put(&id_key(id), &encode_tree(&doc))
                    .unwrap_or_else(|e| panic!("wais store write failed: {e}"));
                store.set_meta("slots", &slots.to_string());
                store
                    .commit(*epoch)
                    .unwrap_or_else(|e| panic!("wais store commit failed: {e}"));
                id
            }
        };
        self.index.add(id, &doc);
        self.bump_epochs();
        id
    }

    /// Removes a document by id: tombstones its slot (ids stay stable),
    /// patches the posting lists its tokens touched, bumps registered
    /// epochs (store-backed sources also commit, persisting the new
    /// epoch). Returns the removed document, or `None` for an unknown or
    /// already-removed id.
    pub fn remove_document(&mut self, id: DocId) -> Option<Tree> {
        let doc = match &mut self.bank {
            DocBank::Mem { docs, live } => {
                let doc = docs.get_mut(id)?.take()?;
                *live -= 1;
                doc
            }
            DocBank::Disk { store, epoch, .. } => {
                let payload = store
                    .get(&id_key(id))
                    .unwrap_or_else(|e| panic!("wais store read failed: {e}"))?;
                let doc = decode_tree(&payload)
                    .unwrap_or_else(|e| panic!("wais store payload undecodable: {e}"));
                *epoch += 1;
                store
                    .remove(&id_key(id))
                    .unwrap_or_else(|e| panic!("wais store write failed: {e}"));
                store
                    .commit(*epoch)
                    .unwrap_or_else(|e| panic!("wais store commit failed: {e}"));
                doc
            }
        };
        self.index.remove(id, &doc);
        self.bump_epochs();
        Some(doc)
    }

    fn bump_epochs(&self) {
        for cell in &self.epochs {
            cell.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        match &self.bank {
            DocBank::Mem { live, .. } => *live,
            DocBank::Disk { store, .. } => store.len(),
        }
    }

    /// True when the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of all live documents, ascending.
    pub fn ids(&self) -> Vec<DocId> {
        match &self.bank {
            DocBank::Mem { docs, .. } => (0..docs.len()).filter(|&i| docs[i].is_some()).collect(),
            DocBank::Disk { store, .. } => {
                let mut ids: Vec<DocId> = store.keys().iter().map(|k| key_id(k)).collect();
                ids.sort_unstable();
                ids
            }
        }
    }

    /// One live document, straight from the bank (no retrieval policy).
    fn doc(&self, id: DocId) -> Option<Tree> {
        match &self.bank {
            DocBank::Mem { docs, .. } => docs.get(id)?.clone(),
            DocBank::Disk { store, .. } => {
                let payload = store
                    .get(&id_key(id))
                    .unwrap_or_else(|e| panic!("wais store read failed: {e}"))?;
                Some(
                    decode_tree(&payload)
                        .unwrap_or_else(|e| panic!("wais store payload undecodable: {e}")),
                )
            }
        }
    }

    /// The whole collection as one tree, with the retrieval policy
    /// applied.
    pub fn document(&self) -> Tree {
        Node::sym(
            self.collection.clone(),
            self.ids()
                .into_iter()
                .filter_map(|i| self.fetch(i))
                .collect(),
        )
    }

    /// One document by id, policy applied.
    pub fn fetch(&self, id: DocId) -> Option<Tree> {
        let doc = self.doc(id)?;
        match &self.policy.retrievable {
            None => Some(doc),
            Some(allowed) => Some(Node::sym(
                doc.label.as_sym().unwrap_or("work").to_string(),
                doc.children
                    .iter()
                    .filter(|c| {
                        c.label
                            .as_sym()
                            .map(|s| allowed.contains(s))
                            .unwrap_or(false)
                    })
                    .cloned()
                    .collect(),
            )),
        }
    }

    /// Full-text search: ids of documents containing `needle`, ascending.
    /// Returns an error when the policy restricts queries to fields and
    /// full-text search is therefore unavailable.
    pub fn contains(&self, needle: &str) -> Result<Vec<DocId>, String> {
        if self.policy.queryable.is_some() {
            return Err(format!(
                "collection `{}` only supports field-scoped queries",
                self.collection
            ));
        }
        Ok(self.eval("", needle))
    }

    /// Field-scoped search, honouring the queryable policy.
    pub fn search_field(&self, field: &str, needle: &str) -> Result<Vec<DocId>, String> {
        if let Some(allowed) = &self.policy.queryable {
            if !allowed.contains(field) {
                return Err(format!("field `{field}` is not queryable"));
            }
        }
        Ok(self.eval(field, needle))
    }

    /// Index-or-scan dispatch; both paths produce the same ascending ids.
    fn eval(&self, field: &str, needle: &str) -> Vec<DocId> {
        if self.index_policy.is_on() {
            self.index.lookup(field, needle)
        } else {
            self.scan(field, needle)
        }
    }

    /// The scan oracle: token-for-token the index's semantics — every
    /// needle token must occur in the document (under a `field`-labeled
    /// element for field-scoped queries), case-insensitively — evaluated
    /// by walking every live document.
    fn scan(&self, field: &str, needle: &str) -> Vec<DocId> {
        let tokens = tokenize(needle);
        if tokens.is_empty() {
            return Vec::new();
        }
        self.ids()
            .into_iter()
            .filter(|&id| {
                self.doc(id)
                    .is_some_and(|doc| tokens.iter().all(|t| doc_has_token(&doc, field, t)))
            })
            .collect()
    }

    /// Index statistics (for reports).
    pub fn posting_count(&self) -> usize {
        self.index.posting_count()
    }
}

/// Whether `token` occurs in `doc` — anywhere for the full-text pseudo
/// field, under a descendant element tagged `field` otherwise. Mirrors
/// the index builder's traversal exactly (per-field indexing only
/// descends through element-labeled children).
fn doc_has_token(doc: &Tree, field: &str, token: &str) -> bool {
    if field.is_empty() {
        return subtree_has_token(doc, token);
    }
    fn in_fields(t: &Tree, field: &str, token: &str) -> bool {
        t.children.iter().any(|child| match child.label.as_sym() {
            Some(tag) => {
                (tag == field && subtree_has_token(child, token)) || in_fields(child, field, token)
            }
            None => false,
        })
    }
    in_fields(doc, field, token)
}

fn subtree_has_token(t: &Tree, token: &str) -> bool {
    if let Label::Atom(a) = &t.label {
        if tokenize(&a.to_string()).iter().any(|x| x == token) {
            return true;
        }
    }
    t.children.iter().any(|c| subtree_has_token(c, token))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::fig1_works;

    #[test]
    fn open_policy_contains_and_fetch() {
        let s = WaisSource::new("works", &fig1_works());
        assert_eq!(s.len(), 2);
        let hits = s.contains("Giverny").unwrap();
        assert_eq!(hits.len(), 1);
        let doc = s.fetch(0).unwrap();
        assert!(doc.child("cplace").is_some());
        assert_eq!(s.document().children.len(), 2);
    }

    #[test]
    fn restricted_policy_strips_and_limits() {
        let s =
            WaisSource::new("works", &fig1_works()).with_policy(FieldPolicy::aquarelle_example());
        // retrieval strips everything but artist and style
        let doc = s.fetch(0).unwrap();
        assert!(doc.child("artist").is_some());
        assert!(doc.child("style").is_some());
        assert!(doc.child("title").is_none());
        assert!(doc.child("cplace").is_none());
        // full-text queries are refused; optional-field queries allowed
        assert!(s.contains("Giverny").is_err());
        assert_eq!(s.search_field("cplace", "Giverny").unwrap().len(), 1);
        assert!(s.search_field("artist", "Monet").is_err());
    }

    #[test]
    fn scan_path_equals_index_path() {
        let indexed = WaisSource::new("works", &fig1_works());
        let scanning = indexed.clone().with_index_policy(IndexPolicy::Off);
        for needle in [
            "Giverny",
            "Impressionist",
            "Monet Giverny",
            "Claude Monet",
            "canvas",
            "cubist",
            "",
        ] {
            assert_eq!(
                indexed.contains(needle).unwrap(),
                scanning.contains(needle).unwrap(),
                "contains({needle:?}) diverges"
            );
        }
        for (field, needle) in [
            ("artist", "Monet"),
            ("title", "Monet"),
            ("title", "Waterloo"),
            ("cplace", "Giverny"),
            ("technique", "canvas"),
            ("history", "canvas"),
            ("nosuchfield", "x"),
        ] {
            assert_eq!(
                indexed.search_field(field, needle).unwrap(),
                scanning.search_field(field, needle).unwrap(),
                "lookup({field}, {needle:?}) diverges"
            );
        }
    }

    #[test]
    fn store_backed_source_is_byte_identical_and_survives_remount() {
        let dir = std::env::temp_dir().join(format!("yat-wais-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let works = fig1_works();
        let mem = WaisSource::new("works", &works);
        let disk = WaisSource::open_store("works", &works, &dir, StoreOptions::default()).unwrap();
        assert_eq!(disk.len(), mem.len());
        assert_eq!(disk.document(), mem.document());
        assert_eq!(
            disk.contains("Giverny").unwrap(),
            mem.contains("Giverny").unwrap()
        );
        // scan oracle agrees with the index on the store-backed path too
        let disk_scan = disk.clone().with_index_policy(IndexPolicy::Off);
        assert_eq!(
            disk.contains("Impressionist").unwrap(),
            disk_scan.contains("Impressionist").unwrap()
        );
        drop(disk);
        drop(disk_scan);

        // remount: root is ignored, the durable documents win
        let empty = Node::sym("works", vec![]);
        let remounted =
            WaisSource::open_store("works", &empty, &dir, StoreOptions::default()).unwrap();
        assert_eq!(remounted.document(), mem.document());
        assert_eq!(
            remounted.contains("Giverny").unwrap(),
            mem.contains("Giverny").unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_backed_mutations_persist_epochs() {
        let dir = std::env::temp_dir().join(format!("yat-wais-epoch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let works = fig1_works();
        let mut s = WaisSource::open_store("works", &works, &dir, StoreOptions::default()).unwrap();
        let cell = Arc::new(AtomicU64::new(0));
        s.register_epoch(cell.clone());
        assert_eq!(cell.load(Ordering::SeqCst), 0, "fresh store: epoch 0");

        let removed = s.remove_document(0).unwrap();
        assert_eq!(cell.load(Ordering::SeqCst), 1);
        let id = s.add_document(removed);
        assert_eq!(id, 2, "tombstoned slots are never reused across the store");
        drop(s);

        // a remount sees the persisted epoch...
        let empty = Node::sym("works", vec![]);
        let mut s2 =
            WaisSource::open_store("works", &empty, &dir, StoreOptions::default()).unwrap();
        assert_eq!(s2.ids(), vec![1, 2]);
        // ...and raises a freshly registered cell to it
        let fresh = Arc::new(AtomicU64::new(0));
        s2.register_epoch(fresh.clone());
        assert_eq!(fresh.load(Ordering::SeqCst), 2);
        assert_eq!(s2.contains("Giverny").unwrap(), vec![2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mutations_keep_ids_stable_and_bump_epochs() {
        let mut s = WaisSource::new("works", &fig1_works());
        let epoch = Arc::new(AtomicU64::new(0));
        s.register_epoch(epoch.clone());

        let removed = s.remove_document(0).unwrap();
        assert_eq!(epoch.load(Ordering::SeqCst), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.ids(), vec![1], "slot 1 keeps its id");
        assert!(s.contains("Giverny").unwrap().is_empty());
        assert!(s.fetch(0).is_none());
        assert!(s.remove_document(0).is_none(), "double remove is a no-op");
        assert_eq!(epoch.load(Ordering::SeqCst), 1);

        let id = s.add_document(removed);
        assert_eq!(id, 2, "tombstoned slots are never reused");
        assert_eq!(epoch.load(Ordering::SeqCst), 2);
        assert_eq!(s.contains("Giverny").unwrap(), vec![2]);
        assert_eq!(s.document().children.len(), 2);

        // the scan oracle agrees after mutations too
        let scanning = s.clone().with_index_policy(IndexPolicy::Off);
        assert_eq!(
            s.contains("Impressionist").unwrap(),
            scanning.contains("Impressionist").unwrap()
        );
    }
}
