//! The Wais retrieval engine: documents + index + field policy.

use crate::index::{DocId, InvertedIndex};
use std::collections::BTreeSet;
use yat_model::{Node, Tree};

/// The Z39.50-style field policy: "a clear separation between what you
/// may retrieve and what you may query" (Section 4.2). `None` means
/// unrestricted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FieldPolicy {
    /// Fields that appear in retrieved documents (others are stripped).
    pub retrievable: Option<BTreeSet<String>>,
    /// Fields textual queries may target (full-text always allowed when
    /// `None`).
    pub queryable: Option<BTreeSet<String>>,
}

impl FieldPolicy {
    /// An unrestricted policy.
    pub fn open() -> Self {
        FieldPolicy::default()
    }

    /// The Section 4.2 example: "only the artist and style elements can
    /// be exported from our XML documents while allowing queries only on
    /// the optional fields".
    pub fn aquarelle_example() -> Self {
        FieldPolicy {
            retrievable: Some(["artist".to_string(), "style".to_string()].into()),
            queryable: Some(
                [
                    "cplace".to_string(),
                    "history".to_string(),
                    "technique".to_string(),
                ]
                .into(),
            ),
        }
    }
}

/// The full-text source: a document collection with its inverted index.
#[derive(Debug, Clone)]
pub struct WaisSource {
    /// The collection name (`works`).
    pub collection: String,
    docs: Vec<Tree>,
    index: InvertedIndex,
    policy: FieldPolicy,
}

impl WaisSource {
    /// Indexes a `works[work..]` document under the given collection
    /// name.
    pub fn new(collection: impl Into<String>, root: &Tree) -> Self {
        let docs: Vec<Tree> = root.children.to_vec();
        let index = InvertedIndex::build(&docs);
        WaisSource {
            collection: collection.into(),
            docs,
            index,
            policy: FieldPolicy::open(),
        }
    }

    /// Installs a field policy (builder style).
    pub fn with_policy(mut self, policy: FieldPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The whole collection as one tree, with the retrieval policy
    /// applied.
    pub fn document(&self) -> Tree {
        Node::sym(
            self.collection.clone(),
            (0..self.docs.len()).filter_map(|i| self.fetch(i)).collect(),
        )
    }

    /// One document by id, policy applied.
    pub fn fetch(&self, id: DocId) -> Option<Tree> {
        let doc = self.docs.get(id)?;
        match &self.policy.retrievable {
            None => Some(doc.clone()),
            Some(allowed) => Some(Node::sym(
                doc.label.as_sym().unwrap_or("work").to_string(),
                doc.children
                    .iter()
                    .filter(|c| {
                        c.label
                            .as_sym()
                            .map(|s| allowed.contains(s))
                            .unwrap_or(false)
                    })
                    .cloned()
                    .collect(),
            )),
        }
    }

    /// Full-text search: ids of documents containing `needle`.
    /// Returns an error when the policy restricts queries to fields and
    /// full-text search is therefore unavailable.
    pub fn contains(&self, needle: &str) -> Result<BTreeSet<DocId>, String> {
        if self.policy.queryable.is_some() {
            return Err(format!(
                "collection `{}` only supports field-scoped queries",
                self.collection
            ));
        }
        Ok(self.index.contains(needle))
    }

    /// Field-scoped search, honouring the queryable policy.
    pub fn search_field(&self, field: &str, needle: &str) -> Result<BTreeSet<DocId>, String> {
        if let Some(allowed) = &self.policy.queryable {
            if !allowed.contains(field) {
                return Err(format!("field `{field}` is not queryable"));
            }
        }
        Ok(self.index.lookup(field, needle))
    }

    /// Index statistics (for reports).
    pub fn posting_count(&self) -> usize {
        self.index.posting_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::fig1_works;

    #[test]
    fn open_policy_contains_and_fetch() {
        let s = WaisSource::new("works", &fig1_works());
        assert_eq!(s.len(), 2);
        let hits = s.contains("Giverny").unwrap();
        assert_eq!(hits.len(), 1);
        let doc = s.fetch(0).unwrap();
        assert!(doc.child("cplace").is_some());
        assert_eq!(s.document().children.len(), 2);
    }

    #[test]
    fn restricted_policy_strips_and_limits() {
        let s =
            WaisSource::new("works", &fig1_works()).with_policy(FieldPolicy::aquarelle_example());
        // retrieval strips everything but artist and style
        let doc = s.fetch(0).unwrap();
        assert!(doc.child("artist").is_some());
        assert!(doc.child("style").is_some());
        assert!(doc.child("title").is_none());
        assert!(doc.child("cplace").is_none());
        // full-text queries are refused; optional-field queries allowed
        assert!(s.contains("Giverny").is_err());
        assert_eq!(s.search_field("cplace", "Giverny").unwrap().len(), 1);
        assert!(s.search_field("artist", "Monet").is_err());
    }
}
