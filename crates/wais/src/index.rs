//! The inverted index: Wais attribute/value textual queries.

use std::collections::BTreeMap;
use yat_model::{Label, Tree};

/// A document id within the collection. Ids are slot positions and stay
/// stable across removals (removed slots are tombstoned, never reused).
pub type DocId = usize;

/// A per-field inverted index over a document collection.
///
/// Z39.50 queries are attribute/value pairs: `field = word`. The pseudo
/// field `""` (empty) indexes the full text of each document, which is
/// what the bare `contains(doc, word)` predicate searches.
///
/// Posting lists are ascending, deduplicated `Vec<DocId>`s; multi-token
/// and multi-predicate queries resolve by merging sorted lists
/// ([`intersect_sorted`]), so a conjunction's cost is bounded by its
/// most selective conjunct, not by collection size.
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    /// field → token → documents (ascending, deduplicated).
    postings: BTreeMap<String, BTreeMap<String, Vec<DocId>>>,
    size: usize,
}

impl InvertedIndex {
    /// Builds the index over a document collection.
    pub fn build(docs: &[Tree]) -> Self {
        let mut idx = InvertedIndex::default();
        for (id, doc) in docs.iter().enumerate() {
            idx.add(id, doc);
        }
        idx
    }

    /// Indexes one document under `id`, patching every posting list the
    /// document's tokens touch.
    pub fn add(&mut self, id: DocId, doc: &Tree) {
        let postings = &mut self.postings;
        visit(doc, |field, token| {
            let list = postings
                .entry(field.to_string())
                .or_default()
                .entry(token)
                .or_default();
            insert_sorted(list, id);
        });
        self.size += 1;
    }

    /// Unindexes one document: removes `id` from every posting list its
    /// tokens touch (the inverse of [`InvertedIndex::add`] for the same
    /// document), dropping emptied postings.
    pub fn remove(&mut self, id: DocId, doc: &Tree) {
        let postings = &mut self.postings;
        visit(doc, |field, token| {
            if let Some(fields) = postings.get_mut(field) {
                if let Some(list) = fields.get_mut(&token) {
                    if let Ok(pos) = list.binary_search(&id) {
                        list.remove(pos);
                    }
                    if list.is_empty() {
                        fields.remove(&token);
                    }
                }
                if fields.is_empty() {
                    postings.remove(field);
                }
            }
        });
        self.size = self.size.saturating_sub(1);
    }

    /// Documents whose full text contains `word` (case-insensitive,
    /// token-level). Ascending.
    pub fn contains(&self, word: &str) -> Vec<DocId> {
        self.lookup("", word)
    }

    /// Documents whose `field` contains `word`. Ascending.
    pub fn lookup(&self, field: &str, word: &str) -> Vec<DocId> {
        let mut result: Option<Vec<DocId>> = None;
        for token in tokenize(word) {
            let hits: &[DocId] = self
                .postings
                .get(field)
                .and_then(|p| p.get(&token))
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            result = Some(match result {
                None => hits.to_vec(),
                Some(prev) => intersect_sorted(&prev, hits),
            });
            if result.as_ref().is_some_and(Vec::is_empty) {
                break;
            }
        }
        result.unwrap_or_default()
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Number of distinct (field, token) postings — index footprint, used
    /// in reports.
    pub fn posting_count(&self) -> usize {
        self.postings.values().map(|p| p.len()).sum()
    }

    /// Serializes the index for a store sidecar snapshot (all integers
    /// little-endian): `size:u64 field_count:u32 (field:str
    /// token_count:u32 (token:str len:u32 id:u64*)*)*`.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_str(s: &str, out: &mut Vec<u8>) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::new();
        out.extend_from_slice(&(self.size as u64).to_le_bytes());
        out.extend_from_slice(&(self.postings.len() as u32).to_le_bytes());
        for (field, tokens) in &self.postings {
            put_str(field, &mut out);
            out.extend_from_slice(&(tokens.len() as u32).to_le_bytes());
            for (token, list) in tokens {
                put_str(token, &mut out);
                out.extend_from_slice(&(list.len() as u32).to_le_bytes());
                for &id in list {
                    out.extend_from_slice(&(id as u64).to_le_bytes());
                }
            }
        }
        out
    }

    /// Deserializes a [`InvertedIndex::to_bytes`] snapshot. Any damage
    /// returns `None` — the caller rebuilds from the documents (the
    /// snapshot is an optimization, never a source of truth).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Option<&'a [u8]> {
            let end = at.checked_add(n).filter(|&e| e <= bytes.len())?;
            let s = &bytes[*at..end];
            *at = end;
            Some(s)
        }
        fn take_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
            Some(u32::from_le_bytes(take(bytes, at, 4)?.try_into().ok()?))
        }
        fn take_str(bytes: &[u8], at: &mut usize) -> Option<String> {
            let len = take_u32(bytes, at)? as usize;
            String::from_utf8(take(bytes, at, len)?.to_vec()).ok()
        }
        let mut at = 0usize;
        let size = u64::from_le_bytes(take(bytes, &mut at, 8)?.try_into().ok()?) as usize;
        let field_count = take_u32(bytes, &mut at)? as usize;
        let mut postings: BTreeMap<String, BTreeMap<String, Vec<DocId>>> = BTreeMap::new();
        for _ in 0..field_count {
            let field = take_str(bytes, &mut at)?;
            let token_count = take_u32(bytes, &mut at)? as usize;
            let mut tokens: BTreeMap<String, Vec<DocId>> = BTreeMap::new();
            for _ in 0..token_count {
                let token = take_str(bytes, &mut at)?;
                let len = take_u32(bytes, &mut at)? as usize;
                if len > (bytes.len() - at) / 8 {
                    return None;
                }
                let mut list = Vec::with_capacity(len);
                for _ in 0..len {
                    let id = u64::from_le_bytes(take(bytes, &mut at, 8)?.try_into().ok()?) as DocId;
                    if list.last().is_some_and(|&last| last >= id) {
                        return None; // posting lists are strictly ascending
                    }
                    list.push(id);
                }
                tokens.insert(token, list);
            }
            postings.insert(field, tokens);
        }
        if at != bytes.len() {
            return None;
        }
        Some(InvertedIndex { postings, size })
    }
}

/// Merges two ascending posting lists into their intersection — the
/// conjunction combinator for pushed predicates.
pub fn intersect_sorted(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn insert_sorted(list: &mut Vec<DocId>, id: DocId) {
    match list.last() {
        // the common case: builds and adds index ascending ids
        Some(&last) if last < id => list.push(id),
        Some(&last) if last == id => {}
        None => list.push(id),
        _ => {
            if let Err(pos) = list.binary_search(&id) {
                list.insert(pos, id);
            }
        }
    }
}

/// Walks every (field, token) pair one document contributes: the full
/// text under the pseudo field `""`, plus each descendant element's
/// subtree under its own tag (Z39.50 attributes address nested structure
/// too — `technique` lives inside `history` in Fig. 1). [`InvertedIndex::add`]
/// and [`InvertedIndex::remove`] share this walk, so unindexing visits
/// exactly the postings indexing touched.
fn visit<F: FnMut(&str, String)>(doc: &Tree, mut f: F) {
    atoms(doc, "", &mut f);
    fields(doc, &mut f);
}

fn atoms<F: FnMut(&str, String)>(t: &Tree, field: &str, f: &mut F) {
    if let Label::Atom(a) = &t.label {
        for token in tokenize(&a.to_string()) {
            f(field, token);
        }
    }
    for c in &t.children {
        atoms(c, field, f);
    }
}

fn fields<F: FnMut(&str, String)>(t: &Tree, f: &mut F) {
    for child in &t.children {
        if let Label::Sym(field) = &child.label {
            atoms(child, field, f);
            fields(child, f);
        }
    }
}

/// Lowercased alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::fig1_works;

    fn index() -> InvertedIndex {
        let works = fig1_works();
        InvertedIndex::build(&works.children)
    }

    #[test]
    fn full_text_contains() {
        let idx = index();
        assert_eq!(idx.len(), 2);
        // both works are impressionist
        assert_eq!(idx.contains("Impressionist").len(), 2);
        // case-insensitive
        assert_eq!(idx.contains("impressionist").len(), 2);
        // only the first was painted at Giverny
        assert_eq!(idx.contains("Giverny"), vec![0]);
        // tokens inside mixed content are found
        assert_eq!(idx.contains("canvas"), vec![1]);
        assert!(idx.contains("cubist").is_empty());
    }

    #[test]
    fn multi_word_queries_intersect() {
        let idx = index();
        assert_eq!(idx.contains("Claude Monet").len(), 2);
        assert_eq!(idx.contains("Monet Giverny").len(), 1);
        assert!(idx.contains("Monet cubist").is_empty());
        // empty needle matches nothing (no tokens)
        assert!(idx.contains("").is_empty());
    }

    #[test]
    fn field_scoped_lookup() {
        let idx = index();
        // "Monet" appears in artist but not title
        assert_eq!(idx.lookup("artist", "Monet").len(), 2);
        assert!(idx.lookup("title", "Monet").is_empty());
        assert_eq!(idx.lookup("title", "Waterloo").len(), 1);
        assert_eq!(idx.lookup("cplace", "Giverny").len(), 1);
        // nested fields are addressable (technique inside history)
        assert_eq!(idx.lookup("technique", "canvas").len(), 1);
        assert_eq!(idx.lookup("history", "canvas").len(), 1);
        assert!(idx.lookup("nosuchfield", "x").is_empty());
    }

    #[test]
    fn tokenizer() {
        assert_eq!(tokenize("Oil on canvas!"), vec!["oil", "on", "canvas"]);
        assert_eq!(tokenize("29.2 x 46.4"), vec!["29", "2", "x", "46", "4"]);
        assert!(tokenize("  ,;  ").is_empty());
    }

    #[test]
    fn posting_count_positive() {
        assert!(index().posting_count() > 10);
        assert!(InvertedIndex::default().is_empty());
    }

    #[test]
    fn intersect_sorted_merges() {
        assert_eq!(
            intersect_sorted(&[1, 3, 5, 9], &[0, 3, 4, 5, 10]),
            vec![3, 5]
        );
        assert!(intersect_sorted(&[1, 2], &[3, 4]).is_empty());
        assert!(intersect_sorted(&[], &[1]).is_empty());
    }

    #[test]
    fn snapshot_round_trips() {
        let idx = index();
        let bytes = idx.to_bytes();
        let back = InvertedIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.posting_count(), idx.posting_count());
        assert_eq!(back.contains("Giverny"), idx.contains("Giverny"));
        assert_eq!(
            back.lookup("artist", "Monet"),
            idx.lookup("artist", "Monet")
        );
        // damage returns None rather than a wrong index
        assert!(InvertedIndex::from_bytes(&bytes[..bytes.len() - 3]).is_none());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(InvertedIndex::from_bytes(&extra).is_none());
    }

    #[test]
    fn remove_patches_postings() {
        let works = fig1_works();
        let mut idx = InvertedIndex::build(&works.children);
        assert_eq!(idx.contains("Impressionist"), vec![0, 1]);
        idx.remove(0, &works.children[0]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.contains("Impressionist"), vec![1]);
        assert!(
            idx.contains("Giverny").is_empty(),
            "doc 0's tokens are gone"
        );
        // re-adding restores the exact postings
        idx.add(0, &works.children[0]);
        assert_eq!(idx.contains("Impressionist"), vec![0, 1]);
        assert_eq!(idx.contains("Giverny"), vec![0]);
    }
}
