//! The inverted index: Wais attribute/value textual queries.

use std::collections::{BTreeMap, BTreeSet};
use yat_model::{Label, Tree};

/// A document id within the collection.
pub type DocId = usize;

/// A per-field inverted index over a document collection.
///
/// Z39.50 queries are attribute/value pairs: `field = word`. The pseudo
/// field `""` (empty) indexes the full text of each document, which is
/// what the bare `contains(doc, word)` predicate searches.
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    /// field → token → documents.
    postings: BTreeMap<String, BTreeMap<String, BTreeSet<DocId>>>,
    size: usize,
}

impl InvertedIndex {
    /// Builds the index over a document collection.
    pub fn build(docs: &[Tree]) -> Self {
        let mut idx = InvertedIndex::default();
        for (id, doc) in docs.iter().enumerate() {
            idx.add(id, doc);
        }
        idx.size = docs.len();
        idx
    }

    fn add(&mut self, id: DocId, doc: &Tree) {
        // full-text: every token anywhere in the document
        index_tree(doc, id, "", &mut self.postings);
        // per-field: every descendant element indexes its subtree under
        // its own tag (Z39.50 attributes address nested structure too —
        // `technique` lives inside `history` in Fig. 1)
        fn fields(t: &Tree, id: DocId, postings: &mut Postings) {
            for child in &t.children {
                if let Label::Sym(field) = &child.label {
                    index_tree(child, id, field, postings);
                    fields(child, id, postings);
                }
            }
        }
        fields(doc, id, &mut self.postings);
    }

    /// Documents whose full text contains `word` (case-insensitive,
    /// token-level).
    pub fn contains(&self, word: &str) -> BTreeSet<DocId> {
        self.lookup("", word)
    }

    /// Documents whose `field` contains `word`.
    pub fn lookup(&self, field: &str, word: &str) -> BTreeSet<DocId> {
        let mut result: Option<BTreeSet<DocId>> = None;
        for token in tokenize(word) {
            let hits = self
                .postings
                .get(field)
                .and_then(|p| p.get(&token))
                .cloned()
                .unwrap_or_default();
            result = Some(match result {
                None => hits,
                Some(prev) => prev.intersection(&hits).copied().collect(),
            });
        }
        result.unwrap_or_default()
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Number of distinct (field, token) postings — index footprint, used
    /// in reports.
    pub fn posting_count(&self) -> usize {
        self.postings.values().map(|p| p.len()).sum()
    }
}

type Postings = BTreeMap<String, BTreeMap<String, BTreeSet<DocId>>>;

fn index_tree(t: &Tree, id: DocId, field: &str, postings: &mut Postings) {
    if let Label::Atom(a) = &t.label {
        for token in tokenize(&a.to_string()) {
            postings
                .entry(field.to_string())
                .or_default()
                .entry(token)
                .or_default()
                .insert(id);
        }
    }
    for c in &t.children {
        index_tree(c, id, field, postings);
    }
}

/// Lowercased alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::fig1_works;

    fn index() -> InvertedIndex {
        let works = fig1_works();
        InvertedIndex::build(&works.children)
    }

    #[test]
    fn full_text_contains() {
        let idx = index();
        assert_eq!(idx.len(), 2);
        // both works are impressionist
        assert_eq!(idx.contains("Impressionist").len(), 2);
        // case-insensitive
        assert_eq!(idx.contains("impressionist").len(), 2);
        // only the first was painted at Giverny
        let hits = idx.contains("Giverny");
        assert_eq!(hits.into_iter().collect::<Vec<_>>(), vec![0]);
        // tokens inside mixed content are found
        assert_eq!(
            idx.contains("canvas").into_iter().collect::<Vec<_>>(),
            vec![1]
        );
        assert!(idx.contains("cubist").is_empty());
    }

    #[test]
    fn multi_word_queries_intersect() {
        let idx = index();
        assert_eq!(idx.contains("Claude Monet").len(), 2);
        assert_eq!(idx.contains("Monet Giverny").len(), 1);
        assert!(idx.contains("Monet cubist").is_empty());
        // empty needle matches nothing (no tokens)
        assert!(idx.contains("").is_empty());
    }

    #[test]
    fn field_scoped_lookup() {
        let idx = index();
        // "Monet" appears in artist but not title
        assert_eq!(idx.lookup("artist", "Monet").len(), 2);
        assert!(idx.lookup("title", "Monet").is_empty());
        assert_eq!(idx.lookup("title", "Waterloo").len(), 1);
        assert_eq!(idx.lookup("cplace", "Giverny").len(), 1);
        // nested fields are addressable (technique inside history)
        assert_eq!(idx.lookup("technique", "canvas").len(), 1);
        assert_eq!(idx.lookup("history", "canvas").len(), 1);
        assert!(idx.lookup("nosuchfield", "x").is_empty());
    }

    #[test]
    fn tokenizer() {
        assert_eq!(tokenize("Oil on canvas!"), vec!["oil", "on", "canvas"]);
        assert_eq!(tokenize("29.2 x 46.4"), vec!["29", "2", "x", "46", "4"]);
        assert!(tokenize("  ,;  ").is_empty());
    }

    #[test]
    fn posting_count_positive() {
        assert!(index().posting_count() > 10);
        assert!(InvertedIndex::default().is_empty());
    }
}
