//! The `xmlwais-wrapper` program (Fig. 2): exports the restricted
//! interface of Section 4.2 and evaluates pushed plans against the
//! full-text index.

use crate::source::WaisSource;
use std::collections::BTreeSet;
use yat_algebra::{Alg, Operand, Pred, Tab, Value};
use yat_capability::fpattern::wais_fmodel;
use yat_capability::interface::{
    Equivalence, ExportDecl, Interface, OpKind, OperationDecl, SigItem,
};
use yat_capability::protocol::{Request, Response, WrapperServer};
use yat_model::{AtomType, Edge, Model, Occ, PLabel, Pattern, StarBind};

/// The xmlwais wrapper: a [`WrapperServer`] over a [`WaisSource`].
pub struct WaisWrapper {
    name: String,
    source: WaisSource,
}

impl WaisWrapper {
    /// Wraps a source under the interface name `name` (the paper uses
    /// `xmlartwork`).
    pub fn new(name: impl Into<String>, source: WaisSource) -> Self {
        WaisWrapper {
            name: name.into(),
            source,
        }
    }

    /// Access to the underlying source (tests, benches).
    pub fn source(&self) -> &WaisSource {
        &self.source
    }

    /// The exported structural metadata: the `Artworks_Structure` of
    /// Fig. 3 (mandatory fields plus arbitrary extra `Field`s).
    pub fn structure(&self) -> Model {
        let work = Pattern::sym(
            "work",
            vec![
                Edge::one(Pattern::elem_typed("artist", AtomType::Str)),
                Edge::one(Pattern::elem_typed("title", AtomType::Str)),
                Edge::one(Pattern::elem_typed("style", AtomType::Str)),
                Edge::one(Pattern::elem_typed("size", AtomType::Str)),
                Edge::star(Pattern::Ref("Field".into())),
            ],
        );
        Model::new("Artworks_Structure")
            .with("Work", work)
            .with(
                "Field",
                Pattern::Node {
                    label: PLabel::AnySym,
                    edges: vec![Edge::star(Pattern::Wildcard)],
                },
            )
            .with(
                "Works",
                Pattern::sym(
                    self.source.collection.clone(),
                    vec![Edge::star(Pattern::Ref("Work".into()))],
                ),
            )
    }

    /// The exported interface of Section 4.2: the restrictive `Fworks`
    /// pattern, `bind`/`select`, the external `contains` predicate, and
    /// the `eq ⇒ contains` equivalence declaration.
    pub fn interface(&self) -> Interface {
        let mut i = Interface::new(self.name.clone());
        i.models.push(self.structure());
        i.fmodels.push(wais_fmodel());
        i.exports.push(ExportDecl {
            name: self.source.collection.clone(),
            model: "Artworks_Structure".into(),
            pattern: "Works".into(),
        });
        i.operations.push(OperationDecl {
            name: "bind".into(),
            kind: OpKind::Algebra,
            input: vec![
                SigItem::Value {
                    model: "Artworks_Structure".into(),
                    pattern: "works".into(),
                },
                SigItem::Filter {
                    model: "waisfmodel".into(),
                    pattern: "Fworks".into(),
                },
            ],
            output: vec![SigItem::Value {
                model: "yat".into(),
                pattern: "Tab".into(),
            }],
        });
        i.operations.push(OperationDecl::algebra("select"));
        i.operations.push(OperationDecl {
            name: "contains".into(),
            kind: OpKind::External,
            input: vec![
                SigItem::Value {
                    model: "Artworks_Structure".into(),
                    pattern: "Work".into(),
                },
                SigItem::Leaf(AtomType::Str),
            ],
            output: vec![SigItem::Leaf(AtomType::Bool)],
        });
        i.equivalences.push(Equivalence::EqImpliesContains {
            predicate: "contains".into(),
        });
        i
    }

    /// Evaluates a pushed plan: `Select*(Bind(Source))` where every
    /// selection predicate is a `contains($w, "…")` conjunct.
    fn execute(&self, plan: &Alg) -> Response {
        let mut needles: Vec<String> = Vec::new();
        let doc_var: String;
        let mut cursor = plan;
        loop {
            match cursor {
                Alg::Select { input, pred } => {
                    for c in pred.conjuncts() {
                        match c {
                            Pred::Call { name, args } if name == "contains" => {
                                match args.as_slice() {
                                    [Operand::Var(_), Operand::Const(a)] => {
                                        needles.push(a.to_string())
                                    }
                                    _ => {
                                        return Response::Error(
                                            "contains takes a document variable and a string"
                                                .into(),
                                        )
                                    }
                                }
                            }
                            other => {
                                return Response::Error(format!(
                                    "predicate `{other}` is beyond Wais capabilities"
                                ))
                            }
                        }
                    }
                    cursor = input;
                }
                Alg::Bind {
                    input,
                    filter,
                    over: None,
                } => {
                    let Alg::Source { name, .. } = input.as_ref() else {
                        return Response::Error("Bind must read the works collection".into());
                    };
                    if *name != self.source.collection {
                        return Response::Error(format!("no collection `{name}`"));
                    }
                    match doc_binding_var(filter, &self.source.collection) {
                        Some(v) => doc_var = v,
                        None => {
                            return Response::Error(format!(
                                "filter `{filter}` exceeds Wais binding capabilities"
                            ))
                        }
                    }
                    break;
                }
                other => {
                    return Response::Error(format!(
                        "operator beyond Wais capabilities: {}",
                        other.describe()
                    ))
                }
            }
        }
        let var = doc_var;

        // resolve candidates through the index
        let mut ids: Option<BTreeSet<usize>> = None;
        for needle in &needles {
            let hits = match self.source.contains(needle) {
                Ok(h) => h,
                Err(e) => return Response::Error(e),
            };
            ids = Some(match ids {
                None => hits,
                Some(prev) => prev.intersection(&hits).copied().collect(),
            });
        }
        let ids: Vec<usize> = match ids {
            Some(set) => set.into_iter().collect(),
            None => (0..self.source.len()).collect(),
        };

        let mut tab = Tab::new(vec![var]);
        for id in ids {
            if let Some(doc) = self.source.fetch(id) {
                tab.push(vec![Value::Tree(doc)]);
            }
        }
        Response::Result(tab)
    }
}

/// Checks the filter is within the declared capability — `works *$w`
/// (possibly with a structural `work` subpattern) — and returns the
/// document variable.
fn doc_binding_var(filter: &Pattern, collection: &str) -> Option<String> {
    let Pattern::Node {
        label: PLabel::Sym(root),
        edges,
    } = filter
    else {
        return None;
    };
    if root != collection || edges.len() != 1 {
        return None;
    }
    let edge = &edges[0];
    if edge.occ != Occ::Star {
        return None;
    }
    let (var, mode) = edge.star_var.as_ref()?;
    if *mode != StarBind::Iterate {
        return None;
    }
    match &edge.pattern {
        Pattern::Wildcard => Some(var.clone()),
        Pattern::Node {
            label: PLabel::Sym(s),
            edges,
        } if s == "work" && edges.is_empty() => Some(var.clone()),
        _ => None,
    }
}

impl WrapperServer for WaisWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&self, request: &Request) -> Response {
        match request {
            Request::GetInterface => Response::Interface(self.interface()),
            Request::GetDocument { name } => {
                if *name == self.source.collection {
                    Response::Document {
                        name: name.clone(),
                        tree: self.source.document(),
                    }
                } else {
                    Response::Error(format!("no collection `{name}`"))
                }
            }
            Request::Execute { plan } => self.execute(plan),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::fig1_works;
    use yat_capability::matcher::pushable;
    use yat_yatl::parse_filter;

    fn wrapper() -> WaisWrapper {
        WaisWrapper::new("xmlartwork", WaisSource::new("works", &fig1_works()))
    }

    #[test]
    fn interface_matches_section_4_2() {
        let i = wrapper().interface();
        assert_eq!(i.name, "xmlartwork");
        assert!(i.export("works").is_some());
        assert!(i.operation("contains").is_some());
        assert!(!i.supports_comparisons());
        assert_eq!(
            i.equivalences,
            vec![Equivalence::EqImpliesContains {
                predicate: "contains".into()
            }]
        );
        // wire round-trip
        let xml = yat_capability::xml::interface_to_xml(&i);
        let back = yat_capability::xml::interface_from_xml(&xml).unwrap();
        assert_eq!(i, back);
    }

    #[test]
    fn execute_contains_pushdown() {
        let w = wrapper();
        let plan = Alg::select(
            Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap()),
            Pred::Call {
                name: "contains".into(),
                args: vec![Operand::var("w"), Operand::cst("Giverny")],
            },
        );
        pushable(&w.interface(), &plan).unwrap();
        match w.handle(&Request::Execute { plan }) {
            Response::Result(tab) => {
                assert_eq!(tab.columns(), &["w"]);
                assert_eq!(tab.len(), 1);
                let doc = tab.get(0, "w").unwrap().as_tree().unwrap();
                assert_eq!(
                    doc.child("title")
                        .unwrap()
                        .value_atom()
                        .unwrap()
                        .to_string(),
                    "Nympheas"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn execute_multiple_contains_intersect() {
        let w = wrapper();
        let plan = Alg::select(
            Alg::select(
                Alg::bind(
                    Alg::source("works"),
                    parse_filter("works *$w: work").unwrap(),
                ),
                Pred::Call {
                    name: "contains".into(),
                    args: vec![Operand::var("w"), Operand::cst("Impressionist")],
                },
            ),
            Pred::Call {
                name: "contains".into(),
                args: vec![Operand::var("w"), Operand::cst("canvas")],
            },
        );
        match w.handle(&Request::Execute { plan }) {
            Response::Result(tab) => assert_eq!(tab.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn execute_without_predicates_scans() {
        let w = wrapper();
        let plan = Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap());
        match w.handle(&Request::Execute { plan }) {
            Response::Result(tab) => assert_eq!(tab.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn execute_rejects_beyond_capability() {
        let w = wrapper();
        // decomposing filter
        let plan = Alg::bind(
            Alg::source("works"),
            parse_filter("works *work [ title: $t ]").unwrap(),
        );
        assert!(matches!(
            w.handle(&Request::Execute { plan }),
            Response::Error(_)
        ));
        // comparison predicate
        let plan = Alg::select(
            Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap()),
            Pred::eq_const("w", "x"),
        );
        assert!(matches!(
            w.handle(&Request::Execute { plan }),
            Response::Error(_)
        ));
        // unknown collection
        let plan = Alg::bind(Alg::source("artifacts"), parse_filter("works *$w").unwrap());
        assert!(matches!(
            w.handle(&Request::Execute { plan }),
            Response::Error(_)
        ));
    }

    #[test]
    fn get_document_returns_collection() {
        let w = wrapper();
        match w.handle(&Request::GetDocument {
            name: "works".into(),
        }) {
            Response::Document { tree, .. } => assert_eq!(tree.children.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn structure_instantiates_works() {
        // Fig. 3: the exported Artworks structure matches the data
        let w = wrapper();
        let model = w.structure();
        let doc = w.source().document();
        for work in &doc.children {
            assert!(
                yat_model::instantiate::is_instance(work, model.get("Work").unwrap(), Some(&model)),
                "{work} should instantiate Work"
            );
        }
    }
}
