//! The `xmlwais-wrapper` program (Fig. 2): exports the restricted
//! interface of Section 4.2 and evaluates pushed plans against the
//! full-text index.

use crate::index::{intersect_sorted, tokenize, DocId};
use crate::source::WaisSource;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use yat_algebra::{Alg, Operand, Pred, Tab, Value};
use yat_capability::fpattern::wais_fmodel;
use yat_capability::interface::{
    Equivalence, ExportDecl, Interface, OpKind, OperationDecl, SigItem,
};
use yat_capability::protocol::{Request, Response, WrapperServer};
use yat_capability::{IndexReport, StorageReport};
use yat_model::{AtomType, Edge, Model, Occ, PLabel, Pattern, StarBind};

/// The xmlwais wrapper: a [`WrapperServer`] over a [`WaisSource`].
///
/// The source sits behind an `RwLock` so holders of a shared handle
/// ([`WaisWrapper::shared`]) can mutate the collection while the wrapper
/// is connected — mutations bump the epoch cell the mediator registered,
/// invalidating cached answers.
pub struct WaisWrapper {
    name: String,
    source: Arc<RwLock<WaisSource>>,
    /// Index accounting of the most recent `Execute`, taken by the
    /// transport for `EXPLAIN ANALYZE` (never on the wire).
    report: Mutex<Option<IndexReport>>,
    /// Storage accounting of the most recent `Execute` or `GetDocument`
    /// (store-backed sources only), taken the same way.
    storage: Mutex<Option<StorageReport>>,
}

impl WaisWrapper {
    /// Wraps a source under the interface name `name` (the paper uses
    /// `xmlartwork`).
    pub fn new(name: impl Into<String>, source: WaisSource) -> Self {
        Self::new_shared(name, Arc::new(RwLock::new(source)))
    }

    /// Wraps an already-shared source — the caller keeps a handle to
    /// mutate the collection after connecting.
    pub fn new_shared(name: impl Into<String>, source: Arc<RwLock<WaisSource>>) -> Self {
        WaisWrapper {
            name: name.into(),
            source,
            report: Mutex::new(None),
            storage: Mutex::new(None),
        }
    }

    /// Read access to the underlying source (tests, benches).
    pub fn source(&self) -> RwLockReadGuard<'_, WaisSource> {
        self.source.read().unwrap_or_else(|e| e.into_inner())
    }

    /// A shared handle to the source, for mutating it while connected.
    pub fn shared(&self) -> Arc<RwLock<WaisSource>> {
        self.source.clone()
    }

    /// The exported structural metadata: the `Artworks_Structure` of
    /// Fig. 3 (mandatory fields plus arbitrary extra `Field`s).
    pub fn structure(&self) -> Model {
        let work = Pattern::sym(
            "work",
            vec![
                Edge::one(Pattern::elem_typed("artist", AtomType::Str)),
                Edge::one(Pattern::elem_typed("title", AtomType::Str)),
                Edge::one(Pattern::elem_typed("style", AtomType::Str)),
                Edge::one(Pattern::elem_typed("size", AtomType::Str)),
                Edge::star(Pattern::Ref("Field".into())),
            ],
        );
        Model::new("Artworks_Structure")
            .with("Work", work)
            .with(
                "Field",
                Pattern::Node {
                    label: PLabel::AnySym,
                    edges: vec![Edge::star(Pattern::Wildcard)],
                },
            )
            .with(
                "Works",
                Pattern::sym(
                    self.source().collection.clone(),
                    vec![Edge::star(Pattern::Ref("Work".into()))],
                ),
            )
    }

    /// The exported interface of Section 4.2: the restrictive `Fworks`
    /// pattern, `bind`/`select`, the external `contains` predicate, and
    /// the `eq ⇒ contains` equivalence declaration.
    pub fn interface(&self) -> Interface {
        let mut i = Interface::new(self.name.clone());
        i.models.push(self.structure());
        i.fmodels.push(wais_fmodel());
        i.exports.push(ExportDecl {
            name: self.source().collection.clone(),
            model: "Artworks_Structure".into(),
            pattern: "Works".into(),
        });
        i.operations.push(OperationDecl {
            name: "bind".into(),
            kind: OpKind::Algebra,
            input: vec![
                SigItem::Value {
                    model: "Artworks_Structure".into(),
                    pattern: "works".into(),
                },
                SigItem::Filter {
                    model: "waisfmodel".into(),
                    pattern: "Fworks".into(),
                },
            ],
            output: vec![SigItem::Value {
                model: "yat".into(),
                pattern: "Tab".into(),
            }],
        });
        i.operations.push(OperationDecl::algebra("select"));
        i.operations.push(OperationDecl {
            name: "contains".into(),
            kind: OpKind::External,
            input: vec![
                SigItem::Value {
                    model: "Artworks_Structure".into(),
                    pattern: "Work".into(),
                },
                SigItem::Leaf(AtomType::Str),
            ],
            output: vec![SigItem::Leaf(AtomType::Bool)],
        });
        i.equivalences.push(Equivalence::EqImpliesContains {
            predicate: "contains".into(),
        });
        i
    }

    /// Evaluates a pushed plan: `Select*(Bind(Source))` where every
    /// selection predicate is a `contains($w, "…")` conjunct. Under an
    /// `On` index policy the conjunction resolves by intersecting sorted
    /// posting lists, so only matching documents are touched; under
    /// `Off` each conjunct scans the collection — identical answers, and
    /// the accounting lands in an [`IndexReport`] either way.
    fn execute(&self, plan: &Alg) -> Response {
        let source = self.source();
        let storage_before = source.store().map(|s| s.stats());
        let mut needles: Vec<String> = Vec::new();
        let doc_var: String;
        let mut cursor = plan;
        loop {
            match cursor {
                Alg::Select { input, pred } => {
                    for c in pred.conjuncts() {
                        match c {
                            Pred::Call { name, args } if name == "contains" => {
                                match args.as_slice() {
                                    [Operand::Var(_), Operand::Const(a)] => {
                                        needles.push(a.to_string())
                                    }
                                    _ => {
                                        return Response::Error(
                                            "contains takes a document variable and a string"
                                                .into(),
                                        )
                                    }
                                }
                            }
                            other => {
                                return Response::Error(format!(
                                    "predicate `{other}` is beyond Wais capabilities"
                                ))
                            }
                        }
                    }
                    cursor = input;
                }
                Alg::Bind {
                    input,
                    filter,
                    over: None,
                } => {
                    let Alg::Source { name, .. } = input.as_ref() else {
                        return Response::Error("Bind must read the works collection".into());
                    };
                    if *name != source.collection {
                        return Response::Error(format!("no collection `{name}`"));
                    }
                    match doc_binding_var(filter, &source.collection) {
                        Some(v) => doc_var = v,
                        None => {
                            return Response::Error(format!(
                                "filter `{filter}` exceeds Wais binding capabilities"
                            ))
                        }
                    }
                    break;
                }
                other => {
                    return Response::Error(format!(
                        "operator beyond Wais capabilities: {}",
                        other.describe()
                    ))
                }
            }
        }
        let var = doc_var;

        // resolve candidates: posting-list intersection (or the scan
        // oracle, per the source's index policy) per conjunct
        let mut probes = 0u64;
        let mut ids: Option<Vec<DocId>> = None;
        for needle in &needles {
            probes += tokenize(needle).len() as u64;
            let hits = match source.contains(needle) {
                Ok(h) => h,
                Err(e) => return Response::Error(e),
            };
            ids = Some(match ids {
                None => hits,
                Some(prev) => intersect_sorted(&prev, &hits),
            });
        }
        let indexed = source.index_policy().is_on() && !needles.is_empty();
        let ids: Vec<DocId> = match ids {
            Some(set) => set,
            None => source.ids(),
        };
        let candidates = ids.len() as u64;
        let collection_size = source.len() as u64;

        let mut tab = Tab::new(vec![var]);
        for id in ids {
            if let Some(doc) = source.fetch(id) {
                tab.push(vec![Value::Tree(doc)]);
            }
        }
        *self.report.lock().unwrap_or_else(|e| e.into_inner()) = Some(IndexReport {
            collection: source.collection.clone(),
            indexed,
            probes: if indexed { probes } else { 0 },
            candidates,
            scanned: if indexed { candidates } else { collection_size },
            collection_size,
            rows: tab.len() as u64,
        });
        self.record_storage(&source, storage_before);
        Response::Result(tab)
    }

    /// Files a [`StorageReport`] for work that just touched the source,
    /// when it is store-backed: `before` is the counter snapshot taken
    /// before the work, so the deltas cover exactly this request.
    fn record_storage(&self, source: &WaisSource, before: Option<yat_store::StoreStats>) {
        if let (Some(before), Some(store)) = (before, source.store()) {
            let after = store.stats();
            *self.storage.lock().unwrap_or_else(|e| e.into_inner()) = Some(StorageReport {
                collection: source.collection.clone(),
                segments: after.segments,
                resident: after.resident,
                loads: after.loads - before.loads,
                evictions: after.evictions - before.evictions,
                bytes_read: after.bytes_read - before.bytes_read,
            });
        }
    }
}

/// Checks the filter is within the declared capability — `works *$w`
/// (possibly with a structural `work` subpattern) — and returns the
/// document variable.
fn doc_binding_var(filter: &Pattern, collection: &str) -> Option<String> {
    let Pattern::Node {
        label: PLabel::Sym(root),
        edges,
    } = filter
    else {
        return None;
    };
    if root != collection || edges.len() != 1 {
        return None;
    }
    let edge = &edges[0];
    if edge.occ != Occ::Star {
        return None;
    }
    let (var, mode) = edge.star_var.as_ref()?;
    if *mode != StarBind::Iterate {
        return None;
    }
    match &edge.pattern {
        Pattern::Wildcard => Some(var.clone()),
        Pattern::Node {
            label: PLabel::Sym(s),
            edges,
        } if s == "work" && edges.is_empty() => Some(var.clone()),
        _ => None,
    }
}

impl WrapperServer for WaisWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&self, request: &Request) -> Response {
        match request {
            Request::GetInterface => Response::Interface(self.interface()),
            Request::GetDocument { name } => {
                let source = self.source();
                if *name == source.collection {
                    let before = source.store().map(|s| s.stats());
                    let tree = source.document();
                    self.record_storage(&source, before);
                    Response::Document {
                        name: name.clone(),
                        tree,
                    }
                } else {
                    Response::Error(format!("no collection `{name}`"))
                }
            }
            Request::Execute { plan } => self.execute(plan),
        }
    }

    fn take_index_report(&self) -> Option<IndexReport> {
        self.report.lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    fn take_storage_report(&self) -> Option<StorageReport> {
        self.storage
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    fn register_epoch(&self, cell: Arc<AtomicU64>) {
        self.source
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .register_epoch(cell);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::fig1_works;
    use yat_capability::matcher::pushable;
    use yat_yatl::parse_filter;

    fn wrapper() -> WaisWrapper {
        WaisWrapper::new("xmlartwork", WaisSource::new("works", &fig1_works()))
    }

    #[test]
    fn interface_matches_section_4_2() {
        let i = wrapper().interface();
        assert_eq!(i.name, "xmlartwork");
        assert!(i.export("works").is_some());
        assert!(i.operation("contains").is_some());
        assert!(!i.supports_comparisons());
        assert_eq!(
            i.equivalences,
            vec![Equivalence::EqImpliesContains {
                predicate: "contains".into()
            }]
        );
        // wire round-trip
        let xml = yat_capability::xml::interface_to_xml(&i);
        let back = yat_capability::xml::interface_from_xml(&xml).unwrap();
        assert_eq!(i, back);
    }

    #[test]
    fn execute_contains_pushdown() {
        let w = wrapper();
        let plan = Alg::select(
            Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap()),
            Pred::Call {
                name: "contains".into(),
                args: vec![Operand::var("w"), Operand::cst("Giverny")],
            },
        );
        pushable(&w.interface(), &plan).unwrap();
        match w.handle(&Request::Execute { plan }) {
            Response::Result(tab) => {
                assert_eq!(tab.columns(), &["w"]);
                assert_eq!(tab.len(), 1);
                let doc = tab.get(0, "w").unwrap().as_tree().unwrap();
                assert_eq!(
                    doc.child("title")
                        .unwrap()
                        .value_atom()
                        .unwrap()
                        .to_string(),
                    "Nympheas"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn execute_multiple_contains_intersect() {
        let w = wrapper();
        let plan = Alg::select(
            Alg::select(
                Alg::bind(
                    Alg::source("works"),
                    parse_filter("works *$w: work").unwrap(),
                ),
                Pred::Call {
                    name: "contains".into(),
                    args: vec![Operand::var("w"), Operand::cst("Impressionist")],
                },
            ),
            Pred::Call {
                name: "contains".into(),
                args: vec![Operand::var("w"), Operand::cst("canvas")],
            },
        );
        match w.handle(&Request::Execute { plan }) {
            Response::Result(tab) => assert_eq!(tab.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn execute_without_predicates_scans() {
        let w = wrapper();
        let plan = Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap());
        match w.handle(&Request::Execute { plan }) {
            Response::Result(tab) => assert_eq!(tab.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn execute_rejects_beyond_capability() {
        let w = wrapper();
        // decomposing filter
        let plan = Alg::bind(
            Alg::source("works"),
            parse_filter("works *work [ title: $t ]").unwrap(),
        );
        assert!(matches!(
            w.handle(&Request::Execute { plan }),
            Response::Error(_)
        ));
        // comparison predicate
        let plan = Alg::select(
            Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap()),
            Pred::eq_const("w", "x"),
        );
        assert!(matches!(
            w.handle(&Request::Execute { plan }),
            Response::Error(_)
        ));
        // unknown collection
        let plan = Alg::bind(Alg::source("artifacts"), parse_filter("works *$w").unwrap());
        assert!(matches!(
            w.handle(&Request::Execute { plan }),
            Response::Error(_)
        ));
    }

    #[test]
    fn execute_records_an_index_report() {
        let w = wrapper();
        let plan = Alg::select(
            Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap()),
            Pred::Call {
                name: "contains".into(),
                args: vec![Operand::var("w"), Operand::cst("Giverny")],
            },
        );
        assert!(w.take_index_report().is_none(), "nothing executed yet");
        w.handle(&Request::Execute { plan });
        let r = w.take_index_report().unwrap();
        assert!(r.indexed);
        assert_eq!(r.collection, "works");
        assert_eq!(r.probes, 1);
        assert_eq!(r.candidates, 1);
        assert_eq!(r.scanned, 1, "only the posting-list hit was touched");
        assert_eq!(r.collection_size, 2);
        assert_eq!(r.rows, 1);
        assert!(w.take_index_report().is_none(), "a report is taken once");
    }

    #[test]
    fn scan_policy_answers_identically() {
        use yat_capability::IndexPolicy;
        let scan = WaisWrapper::new(
            "xmlartwork",
            WaisSource::new("works", &fig1_works()).with_index_policy(IndexPolicy::Off),
        );
        let indexed = wrapper();
        let plan = Alg::select(
            Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap()),
            Pred::Call {
                name: "contains".into(),
                args: vec![Operand::var("w"), Operand::cst("Impressionist")],
            },
        );
        let a = indexed.handle(&Request::Execute { plan: plan.clone() });
        let b = scan.handle(&Request::Execute { plan });
        match (a, b) {
            (Response::Result(x), Response::Result(y)) => assert_eq!(x, y),
            other => panic!("{other:?}"),
        }
        let r = scan.take_index_report().unwrap();
        assert!(!r.indexed);
        assert_eq!(r.scanned, 2, "the scan path touched every document");
    }

    #[test]
    fn shared_source_mutations_bump_registered_epochs() {
        use std::sync::atomic::Ordering;
        let shared = Arc::new(RwLock::new(WaisSource::new("works", &fig1_works())));
        let w = WaisWrapper::new_shared("xmlartwork", shared.clone());
        let cell = Arc::new(AtomicU64::new(0));
        w.register_epoch(cell.clone());

        let extra = fig1_works().children[0].clone();
        shared.write().unwrap().add_document(extra);
        assert_eq!(cell.load(Ordering::SeqCst), 1, "mutation bumped the epoch");
        match w.handle(&Request::GetDocument {
            name: "works".into(),
        }) {
            Response::Document { tree, .. } => assert_eq!(tree.children.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn store_backed_wrapper_reports_storage_and_matches_oracle() {
        let dir = std::env::temp_dir().join(format!("yat-waiswrap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = WaisWrapper::new(
            "xmlartwork",
            WaisSource::open_store(
                "works",
                &fig1_works(),
                &dir,
                yat_store::StoreOptions::default(),
            )
            .unwrap(),
        );
        let oracle = wrapper();
        let plan = Alg::select(
            Alg::bind(Alg::source("works"), parse_filter("works *$w").unwrap()),
            Pred::Call {
                name: "contains".into(),
                args: vec![Operand::var("w"), Operand::cst("Giverny")],
            },
        );
        assert!(disk.take_storage_report().is_none(), "nothing executed yet");
        let a = disk.handle(&Request::Execute { plan: plan.clone() });
        let b = oracle.handle(&Request::Execute { plan });
        match (a, b) {
            (Response::Result(x), Response::Result(y)) => assert_eq!(x, y),
            other => panic!("{other:?}"),
        }
        let r = disk.take_storage_report().unwrap();
        assert_eq!(r.collection, "works");
        assert!(r.segments >= 1);
        assert!(disk.take_storage_report().is_none(), "taken once");
        assert!(
            oracle.take_storage_report().is_none(),
            "in-memory sources never report storage"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_document_returns_collection() {
        let w = wrapper();
        match w.handle(&Request::GetDocument {
            name: "works".into(),
        }) {
            Response::Document { tree, .. } => assert_eq!(tree.children.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn structure_instantiates_works() {
        // Fig. 3: the exported Artworks structure matches the data
        let w = wrapper();
        let model = w.structure();
        let doc = w.source().document();
        for work in &doc.children {
            assert!(
                yat_model::instantiate::is_instance(work, model.get("Work").unwrap(), Some(&model)),
                "{work} should instantiate Work"
            );
        }
    }
}
