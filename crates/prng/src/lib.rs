//! A tiny, dependency-free, deterministic pseudo-random number generator.
//!
//! The workload generators (`yat-oql`, `yat-wais`, `yat-bench`) and the
//! randomized tests need *seeded, reproducible* randomness, not
//! cryptographic quality. This crate provides exactly that: a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream behind an
//! API shaped like the parts of `rand` the workspace used, so the
//! repository builds with no external dependencies.
//!
//! Determinism is part of the contract: for a given seed the stream is
//! fixed forever. Changing the algorithm would silently change every
//! seeded scenario, so don't.

#![deny(missing_docs)]

/// A seeded deterministic generator (SplitMix64).
///
/// ```
/// use yat_prng::Rng;
/// let mut rng = Rng::seed_from_u64(42);
/// let a = rng.gen_range(0..100u8);
/// let b = rng.gen_range(0..100u8);
/// let mut again = Rng::seed_from_u64(42);
/// assert_eq!(a, again.gen_range(0..100u8));
/// assert_eq!(b, again.gen_range(0..100u8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`. Equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64: public-domain constants by Sebastiano Vigna.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value in the half-open range `lo..hi` (`lo < hi`).
    ///
    /// Implemented for the integer types the generators use; see
    /// [`SampleRange`].
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.gen_range(0..items.len())]
    }

    /// Uniform `u64` below `bound` (`bound > 0`), by widening
    /// multiplication (Lemire's method — unbiased enough for workloads,
    /// exact enough for tests).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Integer types [`Rng::gen_range`] can sample.
pub trait SampleRange: Sized {
    /// Uniform sample from `range` (panics when the range is empty).
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_sample_signed!(i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u8);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&w));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}/10000");
        let mut rng = Rng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_picks_each_element() {
        let mut rng = Rng::seed_from_u64(5);
        let pool = ["a", "b", "c"];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*rng.choose(&pool));
        }
        assert_eq!(seen.len(), 3);
    }
}
