//! Entity escaping and unescaping for the five predefined XML entities and
//! numeric character references.

use std::borrow::Cow;

/// Escapes character data for element content: `&`, `<`, `>`.
///
/// Returns a borrowed string when no escaping is needed — the common case for
/// the paper's workloads (titles, artist names) — so bulk serialization does
/// not allocate per text node.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escapes an attribute value for double-quoted output: also `"`.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn escape_with(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = |c: char| matches!(c, '&' | '<' | '>') || (attr && c == '"');
    if !s.chars().any(needs) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Expands entity and character references in `s`.
///
/// Recognizes `&amp;` `&lt;` `&gt;` `&quot;` `&apos;` and `&#NN;` /
/// `&#xHH;`. Unknown or malformed references are an error: the wrapper
/// protocol never produces them, so encountering one indicates a corrupt
/// message.
pub fn unescape(s: &str) -> Result<Cow<'_, str>, String> {
    if !s.contains('&') {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let semi = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity reference near {:.20}", rest))?;
        let ent = &rest[1..semi];
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let code = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| format!("bad hex character reference &{};", ent))?;
                out.push(
                    char::from_u32(code).ok_or_else(|| format!("invalid code point &{};", ent))?,
                );
            }
            _ if ent.starts_with('#') => {
                let code: u32 = ent[1..]
                    .parse()
                    .map_err(|_| format!("bad decimal character reference &{};", ent))?;
                out.push(
                    char::from_u32(code).ok_or_else(|| format!("invalid code point &{};", ent))?,
                );
            }
            _ => return Err(format!("unknown entity &{};", ent)),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_no_alloc_when_clean() {
        assert!(matches!(escape_text("Claude Monet"), Cow::Borrowed(_)));
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
    }

    #[test]
    fn unescape_round_trip() {
        let raw = r#"21 x 61 < "29" & more"#;
        let esc = escape_attr(raw).into_owned();
        assert_eq!(unescape(&esc).unwrap(), raw);
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("caf&#233;").unwrap(), "café");
        assert_eq!(unescape("caf&#xE9;").unwrap(), "café");
    }

    #[test]
    fn bad_entities_rejected() {
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("&amp").is_err());
        assert!(unescape("&#xZZ;").is_err());
        assert!(unescape("&#1114112;").is_err()); // > U+10FFFF
    }
}
