//! # yat-xml — XML substrate for the YAT integration system
//!
//! A self-contained implementation of the XML 1.0 subset used by the YAT
//! system of *"On Wrapping Query Languages and Efficient XML Integration"*
//! (SIGMOD 2000). Wrappers and mediators in the paper exchange **data,
//! structures and operations** as XML documents (Section 2), so this crate is
//! the wire format of the whole reproduction:
//!
//! * [`Element`] / [`Content`] — an ordered-tree document model with
//!   attributes, text, comments, CDATA and processing instructions;
//! * [`parse`] / [`parse_element`] — a recursive-descent parser with
//!   line/column error reporting;
//! * [`Element::to_xml`] and [`Element::to_pretty_xml`] — serializers that
//!   round-trip with the parser;
//! * entity escaping/unescaping (the five predefined entities plus numeric
//!   character references).
//!
//! The subset deliberately excludes DTDs and namespaces: the paper predates
//! XML namespaces in practice and argues DTDs are insufficient for type
//! information (Section 1), replacing them with the YAT type system
//! implemented in `yat-model`.
//!
//! ```
//! use yat_xml::parse_element;
//!
//! let doc = parse_element(r#"<work><artist>Claude Monet</artist></work>"#).unwrap();
//! assert_eq!(doc.name, "work");
//! assert_eq!(doc.child("artist").unwrap().text(), "Claude Monet");
//! let again = parse_element(&doc.to_xml()).unwrap();
//! assert_eq!(doc, again);
//! ```

mod escape;
mod node;
mod parser;
mod writer;

pub use escape::{escape_attr, escape_text, unescape};
pub use node::{Attribute, Content, Element};
pub use parser::{parse, parse_element, ParseError, Position};
pub use writer::{write_pretty, write_xml};

#[cfg(test)]
mod tests;
