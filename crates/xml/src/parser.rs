//! A recursive-descent parser for the XML subset exchanged between YAT
//! wrappers and mediators.

use crate::escape::unescape;
use crate::node::{Attribute, Content, Element};
use std::fmt;

/// A line/column position in the input, for error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub column: u32,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A parse failure with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the failure was detected.
    pub position: Position,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete document: optional XML declaration, optional
/// comments/PIs, then exactly one root element.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let root = p.element()?;
    p.skip_misc();
    if !p.at_end() {
        return Err(p.err("content after document root element"));
    }
    Ok(root)
}

/// Parses a single element, ignoring any prolog. Convenience entry point
/// used throughout the workspace for message payloads.
pub fn parse_element(input: &str) -> Result<Element, ParseError> {
    parse(input)
}

struct Parser<'a> {
    input: &'a str,
    /// Byte offset of the cursor.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn position(&self) -> Position {
        Position {
            line: self.line,
            column: self.col,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            position: self.position(),
            message: msg.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in s.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`, found `{:.12}`", s, self.rest())))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// Consumes everything up to (and including) `end`, returning the
    /// consumed prefix.
    fn until(&mut self, end: &str, what: &str) -> Result<&'a str, ParseError> {
        match self.rest().find(end) {
            Some(i) => {
                let s = &self.rest()[..i];
                for _ in s.chars().chain(end.chars()) {
                    self.bump();
                }
                Ok(s)
            }
            None => Err(self.err(format!("unterminated {what} (missing `{end}`)"))),
        }
    }

    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            self.eat("<?xml");
            self.until("?>", "XML declaration")?;
        }
        self.skip_misc();
        Ok(())
    }

    /// Skips whitespace, comments and PIs (allowed around the root).
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.eat("<!--");
                if self.until("-->", "comment").is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                self.eat("<?");
                if self.until("?>", "processing instruction").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn attribute(&mut self) -> Result<Attribute, ParseError> {
        let name = self.name()?;
        self.skip_ws();
        self.expect("=")?;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let raw = self.until(&quote.to_string(), "attribute value")?;
        let value = unescape(raw).map_err(|m| self.err(m))?.into_owned();
        Ok(Attribute { name, value })
    }

    fn element(&mut self) -> Result<Element, ParseError> {
        self.expect("<")?;
        let name = self.name()?;
        let mut el = Element::new(name);
        loop {
            self.skip_ws();
            if self.eat("/>") {
                return Ok(el);
            }
            if self.eat(">") {
                break;
            }
            el.attributes.push(self.attribute()?);
        }
        self.content_into(&mut el)?;
        // content_into stops at `</`
        self.expect("</")?;
        let close = self.name()?;
        if close != el.name {
            return Err(self.err(format!(
                "mismatched closing tag: expected `</{}>`, found `</{}>`",
                el.name, close
            )));
        }
        self.skip_ws();
        self.expect(">")?;
        Ok(el)
    }

    fn content_into(&mut self, el: &mut Element) -> Result<(), ParseError> {
        let mut text = String::new();
        let mut text_has_cr = false;
        loop {
            if self.at_end() {
                return Err(self.err(format!("unexpected end of input inside <{}>", el.name)));
            }
            if self.starts_with("</") {
                flush_text(el, &mut text, text_has_cr);
                return Ok(());
            } else if self.starts_with("<!--") {
                flush_text(el, &mut text, text_has_cr);
                self.eat("<!--");
                let c = self.until("-->", "comment")?;
                el.children.push(Content::Comment(c.to_string()));
            } else if self.starts_with("<![CDATA[") {
                flush_text(el, &mut text, text_has_cr);
                self.eat("<![CDATA[");
                let c = self.until("]]>", "CDATA section")?;
                el.children.push(Content::CData(c.to_string()));
            } else if self.starts_with("<?") {
                flush_text(el, &mut text, text_has_cr);
                self.eat("<?");
                let body = self.until("?>", "processing instruction")?;
                let (target, data) = match body.find(char::is_whitespace) {
                    Some(i) => (body[..i].to_string(), body[i..].trim_start().to_string()),
                    None => (body.to_string(), String::new()),
                };
                el.children
                    .push(Content::ProcessingInstruction { target, data });
            } else if self.starts_with("<!") {
                return Err(self.err("DTD declarations are not supported"));
            } else if self.starts_with("<") {
                flush_text(el, &mut text, text_has_cr);
                let child = self.element()?;
                el.children.push(Content::Element(child));
            } else {
                // character data up to the next `<`
                let chunk = match self.rest().find('<') {
                    Some(i) => &self.rest()[..i],
                    None => self.rest(),
                };
                let owned;
                let chunk = {
                    owned = chunk.to_string();
                    for _ in owned.chars() {
                        self.bump();
                    }
                    owned
                };
                if chunk.contains('\r') {
                    text_has_cr = true;
                }
                let un = unescape(&chunk).map_err(|m| self.err(m))?;
                text.push_str(&un);
            }
        }
    }
}

/// XML 1.0 end-of-line handling: `\r\n` and lone `\r` normalize to `\n`.
fn flush_text(el: &mut Element, text: &mut String, has_cr: bool) {
    if text.is_empty() {
        return;
    }
    let t = if has_cr {
        text.replace("\r\n", "\n").replace('\r', "\n")
    } else {
        std::mem::take(text)
    };
    text.clear();
    el.children.push(Content::Text(t));
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}
