//! Serializers: compact (wire format, round-trips exactly) and pretty
//! (indented, for transcripts and EXPLAIN output).

use crate::escape::{escape_attr, escape_text};
use crate::node::{Content, Element};

/// Writes `el` compactly onto `out`. No whitespace is introduced, so
/// `parse(write(el)) == el`.
pub fn write_xml(el: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&el.name);
    for a in &el.attributes {
        out.push(' ');
        out.push_str(&a.name);
        out.push_str("=\"");
        out.push_str(&escape_attr(&a.value));
        out.push('"');
    }
    if el.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &el.children {
        write_content(c, out);
    }
    out.push_str("</");
    out.push_str(&el.name);
    out.push('>');
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Element(e) => write_xml(e, out),
        Content::Text(t) => out.push_str(&escape_text(t)),
        Content::CData(t) => {
            out.push_str("<![CDATA[");
            out.push_str(t);
            out.push_str("]]>");
        }
        Content::Comment(t) => {
            out.push_str("<!--");
            out.push_str(t);
            out.push_str("-->");
        }
        Content::ProcessingInstruction { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
}

/// Writes `el` with two-space indentation.
///
/// Elements whose children are text-only are kept on one line
/// (`<title>Nympheas</title>`), matching the layout of the paper's figures.
/// Mixed content is emitted compactly to avoid changing its meaning.
pub fn write_pretty(el: &Element, out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    let has_el = el.children.iter().any(|c| matches!(c, Content::Element(_)));
    let has_text = el
        .children
        .iter()
        .any(|c| matches!(c, Content::Text(_) | Content::CData(_)) && !c.is_ws());
    if !has_el || has_text {
        // leaf-ish or mixed: one line
        write_xml(el, out);
        out.push('\n');
        return;
    }
    out.push('<');
    out.push_str(&el.name);
    for a in &el.attributes {
        out.push(' ');
        out.push_str(&a.name);
        out.push_str("=\"");
        out.push_str(&escape_attr(&a.value));
        out.push('"');
    }
    out.push_str(">\n");
    for c in &el.children {
        match c {
            Content::Element(e) => write_pretty(e, out, indent + 1),
            other if other.is_ws() => {}
            other => {
                for _ in 0..=indent {
                    out.push_str("  ");
                }
                write_content(other, out);
                out.push('\n');
            }
        }
    }
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str("</");
    out.push_str(&el.name);
    out.push_str(">\n");
}
