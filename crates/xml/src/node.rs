//! The XML document model: ordered trees of [`Element`]s and [`Content`].

use std::fmt;

/// A single `name="value"` attribute on an element.
///
/// Attribute order is preserved (the paper's interface documents, e.g.
/// Fig. 6, rely on readable, stable output) but equality is
/// order-insensitive per the XML specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name (no namespace processing is performed).
    pub name: String,
    /// Unescaped attribute value.
    pub value: String,
}

impl Attribute {
    /// Creates an attribute from anything string-like.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// A child item of an element.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// A nested element.
    Element(Element),
    /// Character data. Stored unescaped; escaped on output.
    Text(String),
    /// A `<![CDATA[..]]>` section. Kept distinct from [`Content::Text`] so
    /// documents round-trip, but [`Element::text`] treats both as text.
    CData(String),
    /// A `<!-- .. -->` comment.
    Comment(String),
    /// A `<?target data?>` processing instruction.
    ProcessingInstruction {
        /// The PI target (e.g. `xml-stylesheet`).
        target: String,
        /// Everything between the target and `?>`, unparsed.
        data: String,
    },
}

impl Content {
    /// Returns the nested element, if this content item is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Content::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Returns the character data if this is text or CDATA.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Content::Text(t) | Content::CData(t) => Some(t),
            _ => None,
        }
    }

    /// True if this is whitespace-only text (ignorable between elements).
    pub fn is_ws(&self) -> bool {
        matches!(self, Content::Text(t) if t.chars().all(char::is_whitespace))
    }
}

/// An XML element: a name, attributes, and an ordered list of children.
///
/// This is the unit wrappers and mediators exchange: YAT data
/// (Fig. 1), structural metadata (Fig. 3) and operation interfaces
/// (Fig. 6) are all `Element` trees.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<Attribute>,
    /// Children in document order.
    pub children: Vec<Content>,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: adds an attribute and returns `self`.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push(Attribute::new(name, value));
        self
    }

    /// Builder-style: appends a child element and returns `self`.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Content::Element(child));
        self
    }

    /// Builder-style: appends a text child and returns `self`.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Content::Text(text.into()));
        self
    }

    /// Appends a child element in place.
    pub fn push_element(&mut self, child: Element) {
        self.children.push(Content::Element(child));
    }

    /// Appends a text child in place.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Content::Text(text.into()));
    }

    /// Sets (replacing if present) an attribute value.
    pub fn set_attr(&mut self, name: &str, value: impl Into<String>) {
        if let Some(a) = self.attributes.iter_mut().find(|a| a.name == name) {
            a.value = value.into();
        } else {
            self.attributes.push(Attribute::new(name, value.into()));
        }
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Iterates over child elements, skipping text/comments/PIs.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Content::as_element)
    }

    /// First child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// All child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// Concatenated character data of all text/CDATA descendants,
    /// with surrounding whitespace trimmed.
    ///
    /// `<title> Nympheas </title>` has text `"Nympheas"` — matching how the
    /// paper's sample data (Fig. 1) formats values with padding whitespace.
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out.trim().to_string()
    }

    fn collect_text(&self, out: &mut String) {
        for c in &self.children {
            match c {
                Content::Text(t) | Content::CData(t) => out.push_str(t),
                Content::Element(e) => e.collect_text(out),
                _ => {}
            }
        }
    }

    /// True if the element has no children at all.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Number of element children.
    pub fn element_count(&self) -> usize {
        self.elements().count()
    }

    /// Total number of nodes (elements + text items) in this subtree,
    /// counting this element. Used by the transfer meter to report document
    /// sizes independently of serialization details.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                Content::Element(e) => e.node_count(),
                _ => 1,
            })
            .sum::<usize>()
    }

    /// Serializes compactly (no added whitespace). Round-trips via
    /// [`crate::parse_element`].
    pub fn to_xml(&self) -> String {
        let mut s = String::new();
        crate::writer::write_xml(self, &mut s);
        s
    }

    /// Serializes with indentation for human consumption (session
    /// transcripts, EXPLAIN output).
    pub fn to_pretty_xml(&self) -> String {
        let mut s = String::new();
        crate::writer::write_pretty(self, &mut s, 0);
        s
    }

    /// Removes whitespace-only text children, recursively. The parser keeps
    /// them for fidelity; structural consumers (yat-model conversion, the
    /// capability reader) call this first.
    pub fn trim_ws(&mut self) {
        self.children.retain(|c| !c.is_ws());
        for c in &mut self.children {
            if let Content::Element(e) = c {
                e.trim_ws();
            }
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}
