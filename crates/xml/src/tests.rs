//! Unit and property tests for the XML substrate.

use crate::*;

fn roundtrip(el: &Element) {
    let s = el.to_xml();
    let back = parse_element(&s).unwrap_or_else(|e| panic!("reparse of `{s}` failed: {e}"));
    assert_eq!(el, &back, "round-trip mismatch for `{s}`");
}

#[test]
fn parse_fig1_object() {
    // The first object of the paper's Figure 1 (sample XML data).
    let src = r#"
<object id="a1" class="artifact">
  <title> Nympheas </title>
  <year> 1897 </year>
  <creator> Claude Monet </creator>
  <owners refs="p1 p2 p3"/>
</object>"#;
    let el = parse_element(src).unwrap();
    assert_eq!(el.name, "object");
    assert_eq!(el.attr("id"), Some("a1"));
    assert_eq!(el.attr("class"), Some("artifact"));
    assert_eq!(el.child("title").unwrap().text(), "Nympheas");
    assert_eq!(el.child("year").unwrap().text(), "1897");
    assert_eq!(el.child("owners").unwrap().attr("refs"), Some("p1 p2 p3"));
    assert_eq!(el.element_count(), 4);
}

#[test]
fn parse_fig1_work_with_nested_mixed_content() {
    let src = r#"<work>
  <artist> Claude Monet </artist>
  <title> Waterloo Bridge </title>
  <history>Painted with
    <technique> Oil on canvas </technique> in ...
  </history>
</work>"#;
    let el = parse_element(src).unwrap();
    let history = el.child("history").unwrap();
    assert!(history.text().starts_with("Painted with"));
    assert_eq!(history.child("technique").unwrap().text(), "Oil on canvas");
}

#[test]
fn self_closing_and_empty_equivalent_text() {
    let a = parse_element("<owners/>").unwrap();
    let b = parse_element("<owners></owners>").unwrap();
    assert_eq!(a, b);
}

#[test]
fn attributes_single_and_double_quotes() {
    let el = parse_element(r#"<n a="x" b='y "z"'/>"#).unwrap();
    assert_eq!(el.attr("a"), Some("x"));
    assert_eq!(el.attr("b"), Some(r#"y "z""#));
}

#[test]
fn entity_unescaping_in_text_and_attrs() {
    let el = parse_element(r#"<n a="1 &lt; 2">Tom &amp; Jerry &#33;</n>"#).unwrap();
    assert_eq!(el.attr("a"), Some("1 < 2"));
    assert_eq!(el.text(), "Tom & Jerry !");
}

#[test]
fn prolog_comments_and_pis_are_skipped() {
    let el = parse(
        "<?xml version=\"1.0\"?>\n<!-- exported by o2-wrapper -->\n<?yat mediator?>\n<interface name=\"o2artifact\"/>\n<!-- trailing -->",
    )
    .unwrap();
    assert_eq!(el.name, "interface");
    assert_eq!(el.attr("name"), Some("o2artifact"));
}

#[test]
fn comments_and_cdata_in_content() {
    let el = parse_element("<d><!-- note --><![CDATA[a<b&c]]></d>").unwrap();
    assert_eq!(el.children.len(), 2);
    assert_eq!(el.text(), "a<b&c");
    roundtrip(&el);
}

#[test]
fn processing_instruction_in_content() {
    let el = parse_element("<d><?target some data?></d>").unwrap();
    match &el.children[0] {
        Content::ProcessingInstruction { target, data } => {
            assert_eq!(target, "target");
            assert_eq!(data, "some data");
        }
        other => panic!("expected PI, got {other:?}"),
    }
    roundtrip(&el);
}

#[test]
fn crlf_normalization() {
    let el = parse_element("<d>a\r\nb\rc</d>").unwrap();
    assert_eq!(el.children[0].as_text(), Some("a\nb\nc"));
}

#[test]
fn errors_carry_positions() {
    let err = parse_element("<a>\n  <b></c>\n</a>").unwrap_err();
    assert_eq!(err.position.line, 2);
    assert!(err.message.contains("mismatched"), "{err}");

    let err = parse_element("<a>").unwrap_err();
    assert!(err.message.contains("unexpected end"), "{err}");

    let err = parse_element("<a></a><b/>").unwrap_err();
    assert!(err.message.contains("after document root"), "{err}");

    let err = parse_element("<a x=1/>").unwrap_err();
    assert!(err.message.contains("quoted attribute"), "{err}");

    let err = parse_element("<a><!DOCTYPE x></a>").unwrap_err();
    assert!(err.message.contains("DTD"), "{err}");
}

#[test]
fn unterminated_constructs() {
    for bad in [
        "<a><!-- x</a>",
        "<a><![CDATA[x</a>",
        "<a b=\"c/>",
        "<a><?pi x</a>",
    ] {
        assert!(parse_element(bad).is_err(), "should reject `{bad}`");
    }
}

#[test]
fn mismatched_tag_reports_both_names() {
    let err = parse_element("<work></artifact>").unwrap_err();
    assert!(err.message.contains("work") && err.message.contains("artifact"));
}

#[test]
fn trim_ws_removes_indentation_nodes() {
    let mut el = parse_element("<a>\n  <b/>\n  <c>keep me</c>\n</a>").unwrap();
    assert_eq!(el.children.len(), 5);
    el.trim_ws();
    assert_eq!(el.children.len(), 2);
    assert_eq!(el.child("c").unwrap().text(), "keep me");
}

#[test]
fn builders_and_accessors() {
    let el = Element::new("operation")
        .with_attr("name", "bind")
        .with_attr("kind", "algebra")
        .with_child(
            Element::new("input").with_child(Element::new("value").with_attr("model", "o2model")),
        )
        .with_child(Element::new("output"));
    assert_eq!(el.attr("kind"), Some("algebra"));
    assert_eq!(el.children_named("input").count(), 1);
    assert_eq!(
        el.child("input")
            .unwrap()
            .child("value")
            .unwrap()
            .attr("model"),
        Some("o2model")
    );
    roundtrip(&el);
}

#[test]
fn set_attr_replaces() {
    let mut el = Element::new("n").with_attr("k", "1");
    el.set_attr("k", "2");
    el.set_attr("j", "3");
    assert_eq!(el.attr("k"), Some("2"));
    assert_eq!(el.attr("j"), Some("3"));
    assert_eq!(el.attributes.len(), 2);
}

#[test]
fn node_count_counts_subtree() {
    let el = parse_element("<a><b>t</b><c/></a>").unwrap();
    // a + b + text + c
    assert_eq!(el.node_count(), 4);
}

#[test]
fn pretty_print_is_reparseable_and_indented() {
    let el =
        parse_element("<works><work><artist>Monet</artist><title>Nympheas</title></work></works>")
            .unwrap();
    let pretty = el.to_pretty_xml();
    assert!(pretty.contains("\n  <work>"), "{pretty}");
    assert!(pretty.contains("\n    <artist>Monet</artist>"), "{pretty}");
    let mut back = parse_element(&pretty).unwrap();
    back.trim_ws();
    assert_eq!(el, back);
}

#[test]
fn unicode_names_and_text() {
    let el = parse_element("<œuvre peintre=\"Cézanne\">Montagne Sainte-Victoire</œuvre>").unwrap();
    assert_eq!(el.name, "œuvre");
    assert_eq!(el.attr("peintre"), Some("Cézanne"));
    roundtrip(&el);
}

#[test]
fn deeply_nested() {
    let mut s = String::new();
    let depth = 200;
    for _ in 0..depth {
        s.push_str("<d>");
    }
    s.push('x');
    for _ in 0..depth {
        s.push_str("</d>");
    }
    let el = parse_element(&s).unwrap();
    assert_eq!(el.node_count(), depth + 1); // depth elements + 1 text node
    roundtrip(&el);
}

/// Seeded randomized tests (deterministic: fixed seeds, fixed case counts).
mod properties {
    use super::*;
    use yat_prng::Rng;

    const CASES: usize = 256;

    fn gen_name(rng: &mut Rng) -> String {
        const FIRST: &[u8] = b"abcXYZ_";
        const REST: &[u8] = b"abcdefXYZ019_.-";
        let mut s = String::new();
        s.push(*rng.choose(FIRST) as char);
        for _ in 0..rng.gen_range(0..9usize) {
            s.push(*rng.choose(REST) as char);
        }
        s
    }

    /// Printable text plus some multibyte characters, without '\r' (the
    /// parser normalizes CR, so raw CR does not round-trip by design —
    /// covered by `crlf_normalization`).
    fn gen_text(rng: &mut Rng) -> String {
        let mut s = String::new();
        for _ in 0..rng.gen_range(1..21usize) {
            match rng.gen_range(0..20u8) {
                0 => s.push('é'),
                1 => s.push('λ'),
                _ => s.push(rng.gen_range(0x20..0x7fu8) as char),
            }
        }
        s
    }

    /// Printable ASCII without '>' (a `]]>` terminator may not appear
    /// inside a CDATA section).
    fn gen_cdata(rng: &mut Rng) -> String {
        (0..rng.gen_range(0..11usize))
            .map(|_| match rng.gen_range(0x20..0x7fu8) as char {
                '>' => '?',
                c => c,
            })
            .collect()
    }

    fn gen_element(rng: &mut Rng, depth: u32) -> Element {
        let mut el = Element::new(gen_name(rng));
        for _ in 0..rng.gen_range(0..3usize) {
            let k = gen_name(rng);
            // duplicate attribute names are invalid XML; dedupe
            if el.attr(&k).is_none() {
                el.attributes.push(Attribute::new(k, gen_text(rng)));
            }
        }
        if depth > 0 {
            for _ in 0..rng.gen_range(0..4usize) {
                let c = match rng.gen_range(0..7u8) {
                    0..=3 => Content::Element(gen_element(rng, depth - 1)),
                    4 | 5 => Content::Text(gen_text(rng)),
                    _ => Content::CData(gen_cdata(rng)),
                };
                // merge adjacent text children: the parser coalesces
                // character data, so adjacency does not round-trip
                match (&c, el.children.last_mut()) {
                    (Content::Text(t), Some(Content::Text(prev))) => prev.push_str(t),
                    _ => el.children.push(c),
                }
            }
        }
        el
    }

    #[test]
    fn print_parse_roundtrip() {
        let mut rng = Rng::seed_from_u64(0xC0FFEE);
        for _ in 0..CASES {
            roundtrip(&gen_element(&mut rng, 3));
        }
    }

    #[test]
    fn pretty_print_parses() {
        let mut rng = Rng::seed_from_u64(0xBEEF);
        for _ in 0..CASES {
            // pretty output must always be valid XML (possibly with extra ws)
            let pretty = gen_element(&mut rng, 3).to_pretty_xml();
            assert!(parse_element(&pretty).is_ok(), "unparseable: {pretty}");
        }
    }

    #[test]
    fn escape_unescape_text() {
        let mut rng = Rng::seed_from_u64(0xE5C);
        for _ in 0..CASES {
            let s: String = (0..rng.gen_range(0..41usize))
                .map(|_| rng.gen_range(0x20..0x7fu8) as char)
                .collect();
            let esc = escape_text(&s).into_owned();
            assert_eq!(unescape(&esc).unwrap().into_owned(), s);
        }
    }

    #[test]
    fn parser_never_panics() {
        const SOUP: &[u8] = b"<>abz&;\"= /![]-";
        let mut rng = Rng::seed_from_u64(0x5011);
        for _ in 0..CASES {
            let s: String = (0..rng.gen_range(0..61usize))
                .map(|_| *rng.choose(SOUP) as char)
                .collect();
            let _ = parse_element(&s);
        }
    }
}
