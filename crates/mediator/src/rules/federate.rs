//! Federation routing (round 4): plan-time source selection.
//!
//! [`FederateRoute`] rewrites a `Push` addressed to a *partition group*
//! into per-member arms united left-deep:
//!
//! * shards the fragment's conjunctive constraints exclude are pruned —
//!   they never appear in the plan, so they are never contacted;
//! * members that can execute the fragment get their own `Push`;
//! * fetch-only (or quarantined) members get the fragment requalified to
//!   read their documents directly, evaluated mediator-side.
//!
//! Replica groups are not routed here: picking a replica at plan time
//! would bake one member into the plan, losing runtime failover. The
//! executor resolves replica pushes cheapest-first with failover instead.

use super::{RewriteRule, RuleCtx};
use std::sync::Arc;
use yat_algebra::Alg;
use yat_capability::matcher::pushable;
use yat_federate::{constraints_of, GroupKind};

/// Round 4: route partition-group pushes to their concrete members.
pub struct FederateRoute;

impl RewriteRule for FederateRoute {
    fn name(&self) -> &'static str {
        "federate-route"
    }

    fn apply(&self, plan: &Arc<Alg>, ctx: &RuleCtx<'_>) -> Option<Arc<Alg>> {
        let fed = ctx.federation.as_ref()?;
        let Alg::Push { source, plan: frag } = plan.as_ref() else {
            return None;
        };
        if fed.registry.group_kind(source) != Some(GroupKind::Partitioned) {
            return None;
        }
        let selected = if ctx.options.prune_partitions {
            fed.registry.prune(source, &constraints_of(frag))
        } else {
            fed.registry
                .members_of(source)
                .iter()
                .map(|m| m.name.clone())
                .collect()
        };
        let takes_push = |name: &str| {
            !fed.quarantined.contains(name)
                && fed.registry.member(name).is_some_and(|m| m.execute)
                && ctx
                    .interfaces
                    .get(name)
                    .is_some_and(|i| pushable(i, frag).is_ok())
        };
        // fire only when routing changes something: a shard was pruned,
        // or a member cannot take the push as-is
        let all = fed.registry.members_of(source).len();
        if selected.len() == all && selected.iter().all(|n| takes_push(n)) {
            return None;
        }
        let mut arms = selected.iter().map(|name| {
            if takes_push(name) {
                Alg::push(name.clone(), frag.clone())
            } else {
                requalify(frag, name)
            }
        });
        let first = arms.next()?;
        Some(arms.fold(first, |acc, arm| {
            Arc::new(Alg::Union {
                left: acc,
                right: arm,
            })
        }))
    }
}

/// Rewrites wrapper-local `Source{None, n}` to `Source{Some(member), n}`
/// so a mediator-side arm reads exactly its member's documents.
fn requalify(plan: &Arc<Alg>, member: &str) -> Arc<Alg> {
    match plan.as_ref() {
        Alg::Source { source: None, name } => Alg::source_at(member, name.clone()),
        _ => {
            let kids = plan
                .children()
                .into_iter()
                .map(|c| requalify(c, member))
                .collect();
            Arc::new(plan.with_children(kids))
        }
    }
}
