//! Classical selection pushdown — "optimization techniques from
//! relational and object databases can be applied directly on the
//! corresponding operations in our algebra" (Section 5).

use super::{RewriteRule, RuleCtx};
use std::sync::Arc;
use yat_algebra::{Alg, Pred};

/// Merges stacked selections into one conjunction (canonical form for
/// the other rules).
pub struct SelectMerge;

impl RewriteRule for SelectMerge {
    fn name(&self) -> &'static str {
        "select-merge"
    }

    fn apply(&self, plan: &Arc<Alg>, _ctx: &RuleCtx<'_>) -> Option<Arc<Alg>> {
        let Alg::Select { input, pred } = plan.as_ref() else {
            return None;
        };
        let Alg::Select {
            input: inner,
            pred: inner_pred,
        } = input.as_ref()
        else {
            return None;
        };
        Some(Alg::select(
            inner.clone(),
            inner_pred.clone().and(pred.clone()),
        ))
    }
}

/// Pushes selection conjuncts toward their producing subplans: through
/// `Project` (with renaming), into `Join`/`DJoin` branches, and below
/// `Bind[over]` when the variables are available earlier.
pub struct SelectPushdown;

impl RewriteRule for SelectPushdown {
    fn name(&self) -> &'static str {
        "select-pushdown"
    }

    fn apply(&self, plan: &Arc<Alg>, _ctx: &RuleCtx<'_>) -> Option<Arc<Alg>> {
        let Alg::Select { input, pred } = plan.as_ref() else {
            return None;
        };
        match input.as_ref() {
            Alg::Project { input: below, cols } => {
                // rename predicate variables dst→src and push below
                let mapping: Vec<(&str, &str)> =
                    cols.iter().map(|(s, d)| (d.as_str(), s.as_str())).collect();
                let vars = pred.vars();
                if !vars.iter().all(|v| mapping.iter().any(|(d, _)| d == v)) {
                    return None;
                }
                let renamed = rename_pred(pred, &mapping);
                Some(Alg::project(
                    Alg::select(below.clone(), renamed),
                    cols.clone(),
                ))
            }
            Alg::Join {
                left,
                right,
                pred: jp,
            } => {
                let lvars = left.out_vars().unwrap_or_default();
                let rvars = right.out_vars().unwrap_or_default();
                let mut to_left = Vec::new();
                let mut to_right = Vec::new();
                let mut stay = Vec::new();
                for c in pred.conjuncts() {
                    let vars = c.vars();
                    if !vars.is_empty() && vars.iter().all(|v| lvars.iter().any(|x| x == v)) {
                        to_left.push(c.clone());
                    } else if !vars.is_empty() && vars.iter().all(|v| rvars.iter().any(|x| x == v))
                    {
                        to_right.push(c.clone());
                    } else {
                        stay.push(c.clone());
                    }
                }
                if to_left.is_empty() && to_right.is_empty() {
                    return None;
                }
                let mut l = left.clone();
                if !to_left.is_empty() {
                    l = Alg::select(l, Pred::from_conjuncts(to_left));
                }
                let mut r = right.clone();
                if !to_right.is_empty() {
                    r = Alg::select(r, Pred::from_conjuncts(to_right));
                }
                let joined = Alg::join(l, r, jp.clone());
                Some(if stay.is_empty() {
                    joined
                } else {
                    Alg::select(joined, Pred::from_conjuncts(stay))
                })
            }
            Alg::DJoin { left, right } => {
                let lvars = left.out_vars().unwrap_or_default();
                let (to_left, stay): (Vec<Pred>, Vec<Pred>) =
                    pred.conjuncts().into_iter().cloned().partition(|c| {
                        let vars = c.vars();
                        !vars.is_empty() && vars.iter().all(|v| lvars.iter().any(|x| x == v))
                    });
                if to_left.is_empty() {
                    return None;
                }
                let l = Alg::select(left.clone(), Pred::from_conjuncts(to_left));
                let dj = Alg::djoin(l, right.clone());
                Some(if stay.is_empty() {
                    dj
                } else {
                    Alg::select(dj, Pred::from_conjuncts(stay))
                })
            }
            Alg::Bind {
                input: below,
                filter,
                over: Some(col),
            } => {
                // conjuncts not involving the freshly bound variables can
                // run before the navigation
                let below_vars = below.out_vars().unwrap_or_default();
                let (early, late): (Vec<Pred>, Vec<Pred>) =
                    pred.conjuncts().into_iter().cloned().partition(|c| {
                        let vars = c.vars();
                        !vars.is_empty() && vars.iter().all(|v| below_vars.iter().any(|x| x == v))
                    });
                if early.is_empty() {
                    return None;
                }
                let inner = Alg::select(below.clone(), Pred::from_conjuncts(early));
                let bind = Alg::bind_over(inner, col.clone(), filter.clone());
                Some(if late.is_empty() {
                    bind
                } else {
                    Alg::select(bind, Pred::from_conjuncts(late))
                })
            }
            _ => None,
        }
    }
}

fn rename_pred(pred: &Pred, mapping: &[(&str, &str)]) -> Pred {
    use yat_algebra::Operand;
    fn rename_operand(o: &Operand, mapping: &[(&str, &str)]) -> Operand {
        match o {
            Operand::Var(v) => match mapping.iter().find(|(d, _)| d == v) {
                Some((_, s)) => Operand::Var(s.to_string()),
                None => o.clone(),
            },
            Operand::Const(_) => o.clone(),
            Operand::Call { name, args } => Operand::Call {
                name: name.clone(),
                args: args.iter().map(|a| rename_operand(a, mapping)).collect(),
            },
        }
    }
    match pred {
        Pred::True => Pred::True,
        Pred::And(a, b) => Pred::And(
            Box::new(rename_pred(a, mapping)),
            Box::new(rename_pred(b, mapping)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(rename_pred(a, mapping)),
            Box::new(rename_pred(b, mapping)),
        ),
        Pred::Not(p) => Pred::Not(Box::new(rename_pred(p, mapping))),
        Pred::Cmp { op, left, right } => Pred::Cmp {
            op: *op,
            left: rename_operand(left, mapping),
            right: rename_operand(right, mapping),
        },
        Pred::Call { name, args } => Pred::Call {
            name: name.clone(),
            args: args.iter().map(|a| rename_operand(a, mapping)).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerOptions;
    use std::collections::BTreeMap;
    use yat_model::Pattern;
    use yat_yatl::parse_filter;

    fn apply(rule: &dyn RewriteRule, plan: &Arc<Alg>) -> Option<Arc<Alg>> {
        let ifaces = BTreeMap::new();
        let options = OptimizerOptions::default();
        let ctx = RuleCtx {
            interfaces: &ifaces,
            options: &options,
            federation: None,
        };
        super::super::apply_once(plan, rule, &ctx)
    }

    fn bind(src: &str, filter: &str) -> Arc<Alg> {
        Alg::bind(Alg::source(src), parse_filter(filter).unwrap())
    }

    #[test]
    fn merge_stacked_selects() {
        let p = Alg::select(
            Alg::select(bind("d", "d *$x"), Pred::eq_const("x", 1)),
            Pred::eq_const("x", 2),
        );
        let merged = apply(&SelectMerge, &p).unwrap();
        let Alg::Select { pred, .. } = merged.as_ref() else {
            panic!()
        };
        assert_eq!(pred.conjuncts().len(), 2);
    }

    #[test]
    fn push_through_project_renames() {
        let p = Alg::select(
            Alg::project(
                bind("d", "d *work [ title: $t ]"),
                vec![("t".into(), "title".into())],
            ),
            Pred::eq_const("title", "X"),
        );
        let pushed = apply(&SelectPushdown, &p).unwrap();
        let Alg::Project { input, .. } = pushed.as_ref() else {
            panic!("{pushed}")
        };
        let Alg::Select { pred, .. } = input.as_ref() else {
            panic!("{pushed}")
        };
        assert_eq!(pred.to_string(), "$t = \"X\"");
    }

    #[test]
    fn push_into_join_branches() {
        let l = bind("d1", "d1 *work [ title: $t, year: $y ]");
        let r = bind("d2", "d2 *work [ title: $t2, style: $s ]");
        let p = Alg::select(
            Alg::join(l, r, Pred::var_eq("t", "t2")),
            Pred::eq_const("y", 1800).and(Pred::eq_const("s", "Impressionist")),
        );
        let pushed = apply(&SelectPushdown, &p).unwrap();
        let Alg::Join { left, right, .. } = pushed.as_ref() else {
            panic!("{pushed}")
        };
        assert!(matches!(left.as_ref(), Alg::Select { .. }), "{pushed}");
        assert!(matches!(right.as_ref(), Alg::Select { .. }), "{pushed}");
    }

    #[test]
    fn cross_branch_conjuncts_stay() {
        let l = bind("d1", "d1 *work [ title: $t ]");
        let r = bind("d2", "d2 *work [ title: $t2 ]");
        let p = Alg::select(Alg::join(l, r, Pred::True), Pred::var_eq("t", "t2"));
        assert!(apply(&SelectPushdown, &p).is_none(), "nothing to push");
    }

    #[test]
    fn push_below_bind_over() {
        let base = bind("d", "d *$w: work");
        let b2 = Alg::bind_over(base, "w", parse_filter("work [ title: $t ]").unwrap());
        // hmm: a predicate on $w can run before the second navigation
        let p = Alg::select(
            b2,
            Pred::Call {
                name: "contains".into(),
                args: vec![
                    yat_algebra::Operand::var("w"),
                    yat_algebra::Operand::cst("x"),
                ],
            }
            .and(Pred::eq_const("t", "y")),
        );
        let pushed = apply(&SelectPushdown, &p).unwrap();
        let Alg::Select { input, pred } = pushed.as_ref() else {
            panic!("{pushed}")
        };
        assert_eq!(pred.to_string(), "$t = \"y\"");
        assert!(
            matches!(input.as_ref(), Alg::Bind { over: Some(_), .. }),
            "{pushed}"
        );
    }

    #[test]
    fn push_into_djoin_left() {
        let l = bind("d1", "d1 *work [ title: $t ]");
        let r = bind("d2", "d2 *price [ title: $t, amount: $p ]");
        let p = Alg::select(
            Alg::djoin(l, r),
            Pred::eq_const("t", "X").and(Pred::eq_const("p", 3)),
        );
        let pushed = apply(&SelectPushdown, &p).unwrap();
        let Alg::Select { input, pred } = pushed.as_ref() else {
            panic!("{pushed}")
        };
        assert_eq!(pred.to_string(), "$p = 3");
        let Alg::DJoin { left, .. } = input.as_ref() else {
            panic!("{pushed}")
        };
        assert!(matches!(left.as_ref(), Alg::Select { .. }));
    }

    #[test]
    fn no_fire_on_plain_bind() {
        let p = Alg::select(bind("d", "d *work [ t: $t ]"), Pred::eq_const("t", 1));
        assert!(apply(&SelectPushdown, &p).is_none());
        let _ = Pattern::Wildcard;
    }
}
