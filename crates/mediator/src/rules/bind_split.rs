//! Bind splitting (Section 5.1, Fig. 7): a complex `Bind` can be split
//! into "a linear sequence of elementary ones, each one navigating down
//! the result of the previous one".
//!
//! "Among other things, this rewriting is useful to simplify query
//! compositions or push some evaluation to a source" — the capability
//! round uses it to carve off exactly the prefix a source accepts
//! (Fig. 9 step (ii): "splits the Bind to match the Wais capabilities
//! description").

use std::sync::Arc;
use yat_algebra::Alg;
use yat_model::{Edge, Occ, Pattern, StarBind};

/// Splits `Bind(input, root[*element])` into
/// `Bind_over(Bind(input, root *$doc), $doc, element)`.
///
/// The document variable is the star edge's iterate variable when
/// present, otherwise a fresh `__doc` name. Returns `None` when the
/// filter does not have the splittable single-star shape or is already
/// elementary.
pub fn split_linear(input: &Arc<Alg>, filter: &Pattern) -> Option<Arc<Alg>> {
    let Pattern::Node { label, edges } = filter else {
        return None;
    };
    let [edge] = edges.as_slice() else {
        return None;
    };
    if edge.occ != Occ::Star {
        return None;
    }
    let (doc_var, element) = match &edge.star_var {
        Some((v, StarBind::Iterate)) => (v.clone(), edge.pattern.clone()),
        Some((_, StarBind::Collect)) => return None,
        None => (fresh_var(filter), edge.pattern.clone()),
    };
    // already elementary: nothing to navigate further
    if matches!(element, Pattern::Wildcard) {
        return None;
    }
    let prefix = Pattern::Node {
        label: label.clone(),
        edges: vec![Edge::star_iter(doc_var.clone(), Pattern::Wildcard)],
    };
    let first = Alg::bind(input.clone(), prefix);
    Some(Alg::bind_over(first, doc_var, element))
}

/// A variable name free in `filter`.
fn fresh_var(filter: &Pattern) -> String {
    let vars = filter.variables();
    let mut name = "__doc".to_string();
    let mut i = 0;
    while vars.contains(&name) {
        i += 1;
        name = format!("__doc{i}");
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use yat_algebra::eval::{eval, EvalCtx};
    use yat_algebra::{EvalOut, FnRegistry, SkolemRegistry};
    use yat_model::{Forest, Node};
    use yat_yatl::parse_filter;

    fn forest() -> Forest {
        let mut f = Forest::new();
        f.insert(
            "works",
            Node::sym(
                "works",
                vec![
                    Node::sym(
                        "work",
                        vec![
                            Node::elem("title", "A"),
                            Node::elem("style", "Impressionist"),
                        ],
                    ),
                    Node::sym(
                        "work",
                        vec![Node::elem("title", "B"), Node::elem("style", "Cubist")],
                    ),
                ],
            ),
        );
        f
    }

    fn eval_tab(plan: &Alg) -> yat_algebra::Tab {
        let f = forest();
        let funcs = FnRegistry::with_builtins();
        let sk = SkolemRegistry::new();
        match eval(plan, &EvalCtx::local(&f, &funcs, &sk)).unwrap() {
            EvalOut::Tab(t) => t,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn split_preserves_bindings() {
        let filter = parse_filter("works *work [ title: $t, style: $s ]").unwrap();
        let original = Alg::bind(Alg::source("works"), filter.clone());
        let split = split_linear(&Alg::source("works"), &filter).expect("splittable");
        // split introduces a fresh __doc column; project it away
        let projected = Alg::project(
            split.clone(),
            vec![("t".into(), "t".into()), ("s".into(), "s".into())],
        );
        assert_eq!(eval_tab(&original), eval_tab(&projected));
        // the split is a Bind over a Bind
        let Alg::Bind {
            input,
            over: Some(_),
            ..
        } = split.as_ref()
        else {
            panic!("{split}")
        };
        assert!(matches!(input.as_ref(), Alg::Bind { over: None, .. }));
    }

    #[test]
    fn explicit_doc_variable_is_reused() {
        let filter = parse_filter("works *$w: work [ title: $t ]").unwrap();
        let split = split_linear(&Alg::source("works"), &filter).unwrap();
        let vars = split.out_vars().unwrap();
        assert!(vars.contains(&"w".to_string()), "{vars:?}");
        assert!(!vars.iter().any(|v| v.starts_with("__doc")), "{vars:?}");
    }

    #[test]
    fn unsplittable_shapes() {
        // already elementary
        assert!(split_linear(&Alg::source("works"), &parse_filter("works *$w").unwrap()).is_none());
        // collect star
        assert!(split_linear(
            &Alg::source("works"),
            &parse_filter("works [ *($all) ]").unwrap()
        )
        .is_none());
        // multiple edges
        assert!(split_linear(
            &Alg::source("works"),
            &parse_filter("works [ *work, count: $c ]").unwrap()
        )
        .is_none());
        // non-star edge
        assert!(split_linear(
            &Alg::source("works"),
            &parse_filter("works [ work [ title: $t ] ]").unwrap()
        )
        .is_none());
    }

    #[test]
    fn fresh_var_avoids_collisions() {
        let f = parse_filter("works *work [ a: $__doc, b: $__doc1 ]").unwrap();
        assert_eq!(fresh_var(&f), "__doc2");
    }
}
