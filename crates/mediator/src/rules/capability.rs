//! Capability-based rewriting (Section 5.3): adapt the plan to what each
//! source can evaluate and delegate maximal fragments.
//!
//! Three rules, applied in order:
//!
//! 1. [`CapabilitySplit`] — a `Bind` whose filter exceeds a source's
//!    Fpattern is split (Fig. 7 linear split) so that the prefix matches
//!    the declared capability (Fig. 9 step (ii));
//! 2. [`ContainsIntroduction`] — an equality selection over content bound
//!    inside a document justifies inserting the source's `contains`
//!    predicate over the whole document, per the declared
//!    `eq ⇒ contains` equivalence (Fig. 9 step (i)). The equality remains
//!    as mediator-side compensation, since full text over-approximates;
//! 3. [`PushFragments`] — every maximal single-source fragment the
//!    capability matcher accepts is wrapped in `Push`.

use super::bind_split::split_linear;
use super::{RewriteRule, RuleCtx};
use std::sync::Arc;
use yat_algebra::{Alg, CmpOp, Operand, Pred};
use yat_capability::interface::Equivalence;
use yat_capability::matcher::{accepts_filter, pushable};
use yat_model::{Atom, Pattern, StarBind};

/// Rule 1: split binds down to source capabilities.
pub struct CapabilitySplit;

impl RewriteRule for CapabilitySplit {
    fn name(&self) -> &'static str {
        "capability-split"
    }

    fn apply(&self, plan: &Arc<Alg>, ctx: &RuleCtx<'_>) -> Option<Arc<Alg>> {
        let Alg::Bind {
            input,
            filter,
            over: None,
        } = plan.as_ref()
        else {
            return None;
        };
        let Alg::Source {
            source: Some(s), ..
        } = input.as_ref()
        else {
            return None;
        };
        let iface = ctx.interfaces.get(s)?;
        let (fm, fp) = iface.bind_fpattern()?;
        // only split when the whole filter is beyond the source but the
        // prefix would be within it
        if accepts_filter(fm, fp, filter).is_ok() {
            return None;
        }
        let split = split_linear(input, filter)?;
        let Alg::Bind { input: first, .. } = split.as_ref() else {
            return None;
        };
        let Alg::Bind { filter: prefix, .. } = first.as_ref() else {
            return None;
        };
        accepts_filter(fm, fp, prefix).ok()?;
        Some(split)
    }
}

/// Rule 2: introduce `contains` below equality selections, following the
/// source-declared equivalence.
pub struct ContainsIntroduction;

impl RewriteRule for ContainsIntroduction {
    fn name(&self) -> &'static str {
        "contains-introduction"
    }

    fn apply(&self, plan: &Arc<Alg>, ctx: &RuleCtx<'_>) -> Option<Arc<Alg>> {
        let Alg::Select { input, pred } = plan.as_ref() else {
            return None;
        };
        for conjunct in pred.conjuncts() {
            let (x, s) = match conjunct {
                Pred::Cmp {
                    op: CmpOp::Eq,
                    left: Operand::Var(x),
                    right: Operand::Const(Atom::Str(s)),
                } => (x, s),
                Pred::Cmp {
                    op: CmpOp::Eq,
                    left: Operand::Const(Atom::Str(s)),
                    right: Operand::Var(x),
                } => (x, s),
                _ => continue,
            };
            if let Some(new_input) = insert_contains(input, x, s, ctx) {
                return Some(Alg::select(new_input, pred.clone()));
            }
        }
        None
    }
}

/// Walks down looking for the document variable transitively binding `x`,
/// and wraps its source `Bind` in `Select(contains($doc, s))`.
fn insert_contains(plan: &Arc<Alg>, x: &str, s: &str, ctx: &RuleCtx<'_>) -> Option<Arc<Alg>> {
    match plan.as_ref() {
        Alg::Bind {
            input,
            filter,
            over: Some(col),
        } => {
            if filter.variables().iter().any(|v| v == x) {
                // x is extracted from $col: chase the document variable
                insert_contains(input, col, s, ctx)
                    .map(|inner| Alg::bind_over(inner, col.clone(), filter.clone()))
            } else {
                insert_contains(input, x, s, ctx)
                    .map(|inner| Alg::bind_over(inner, col.clone(), filter.clone()))
            }
        }
        Alg::Bind {
            input,
            filter,
            over: None,
        } => {
            let Alg::Source {
                source: Some(src), ..
            } = input.as_ref()
            else {
                return None;
            };
            let iface = ctx.interfaces.get(src)?;
            let declared = iface
                .equivalences
                .iter()
                .any(|e| matches!(e, Equivalence::EqImpliesContains { .. }));
            if !declared {
                return None;
            }
            // the filter must bind x as its document variable
            let Pattern::Node { edges, .. } = filter else {
                return None;
            };
            let binds_doc = edges
                .iter()
                .any(|e| matches!(&e.star_var, Some((v, StarBind::Iterate)) if v == x));
            if !binds_doc {
                return None;
            }
            let predicate = iface
                .equivalences
                .iter()
                .map(|e| match e {
                    Equivalence::EqImpliesContains { predicate } => predicate.clone(),
                })
                .next()
                .expect("checked above");
            Some(Alg::select(
                plan.clone(),
                Pred::Call {
                    name: predicate,
                    args: vec![Operand::Var(x.to_string()), Operand::cst(s)],
                },
            ))
        }
        Alg::Select { input, pred } => {
            // refire guard: the contains we would insert is already here
            let already = pred.conjuncts().iter().any(|c| match c {
                Pred::Call { name: _, args } => {
                    matches!(args.as_slice(),
                        [Operand::Var(v), Operand::Const(Atom::Str(n))] if v == x && n == s)
                }
                _ => false,
            });
            if already {
                return None;
            }
            insert_contains(input, x, s, ctx).map(|inner| Alg::select(inner, pred.clone()))
        }
        Alg::Project { input, cols } => {
            // follow renaming dst → src
            let target = cols
                .iter()
                .find(|(_, d)| d == x)
                .map(|(src, _)| src.clone())?;
            insert_contains(input, &target, s, ctx).map(|inner| Alg::project(inner, cols.clone()))
        }
        Alg::Join { left, right, pred } => {
            if let Some(l) = insert_contains(left, x, s, ctx) {
                return Some(Alg::join(l, right.clone(), pred.clone()));
            }
            insert_contains(right, x, s, ctx).map(|r| Alg::join(left.clone(), r, pred.clone()))
        }
        Alg::DJoin { left, right } => {
            if let Some(l) = insert_contains(left, x, s, ctx) {
                return Some(Alg::djoin(l, right.clone()));
            }
            insert_contains(right, x, s, ctx).map(|r| Alg::djoin(left.clone(), r))
        }
        _ => None,
    }
}

/// Rule 3: wrap maximal pushable single-source fragments in `Push`.
pub struct PushFragments;

impl RewriteRule for PushFragments {
    fn name(&self) -> &'static str {
        "push-fragments"
    }

    fn apply(&self, plan: &Arc<Alg>, ctx: &RuleCtx<'_>) -> Option<Arc<Alg>> {
        // a bare Source is fetched as a document, not pushed
        if matches!(plan.as_ref(), Alg::Source { .. } | Alg::Push { .. }) {
            return None;
        }
        let source = single_source(plan)?;
        // push-vs-pull: a quarantined member's fragments stay
        // mediator-side, its documents are pulled instead
        if let Some(fed) = &ctx.federation {
            if fed.quarantined.contains(&source) {
                return None;
            }
        }
        let iface = ctx.interfaces.get(&source)?;
        let localized = localize(plan, &source);
        pushable(iface, &localized).ok()?;
        Some(Alg::push(source, localized))
    }
}

/// The unique wrapper all `Source` leaves of `plan` read from; `None`
/// when mixed, local, or already containing `Push`/`TreeOp` nodes.
fn single_source(plan: &Alg) -> Option<String> {
    fn walk(plan: &Alg, found: &mut Option<String>) -> bool {
        match plan {
            Alg::Source {
                source: Some(s), ..
            } => match found {
                None => {
                    *found = Some(s.clone());
                    true
                }
                Some(prev) => prev == s,
            },
            Alg::Source { source: None, .. } | Alg::Push { .. } | Alg::TreeOp { .. } => false,
            _ => plan.children().iter().all(|c| walk(c, found)),
        }
    }
    let mut found = None;
    if walk(plan, &mut found) {
        found
    } else {
        None
    }
}

/// Rewrites `Source{Some(s), n}` to wrapper-local `Source{None, n}`.
fn localize(plan: &Arc<Alg>, source: &str) -> Arc<Alg> {
    match plan.as_ref() {
        Alg::Source {
            source: Some(s),
            name,
        } if s == source => Alg::source(name.clone()),
        _ => {
            let kids = plan
                .children()
                .into_iter()
                .map(|c| localize(c, source))
                .collect();
            Arc::new(plan.with_children(kids))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerOptions;
    use std::collections::BTreeMap;
    use yat_capability::fpattern::{o2_fmodel, wais_fmodel};
    use yat_capability::interface::{ExportDecl, Interface, OpKind, OperationDecl, SigItem};
    use yat_model::AtomType;
    use yat_yatl::parse_filter;

    fn wais_iface() -> Interface {
        let mut i = Interface::new("xmlartwork");
        i.fmodels.push(wais_fmodel());
        i.exports.push(ExportDecl {
            name: "works".into(),
            model: "Artworks_Structure".into(),
            pattern: "Works".into(),
        });
        i.operations.push(OperationDecl {
            name: "bind".into(),
            kind: OpKind::Algebra,
            input: vec![
                SigItem::Value {
                    model: "Artworks_Structure".into(),
                    pattern: "works".into(),
                },
                SigItem::Filter {
                    model: "waisfmodel".into(),
                    pattern: "Fworks".into(),
                },
            ],
            output: vec![],
        });
        i.operations.push(OperationDecl::algebra("select"));
        i.operations.push(OperationDecl {
            name: "contains".into(),
            kind: OpKind::External,
            input: vec![SigItem::Leaf(AtomType::Str)],
            output: vec![SigItem::Leaf(AtomType::Bool)],
        });
        i.equivalences.push(Equivalence::EqImpliesContains {
            predicate: "contains".into(),
        });
        i
    }

    fn o2_iface() -> Interface {
        let mut i = Interface::new("o2artifact");
        i.fmodels.push(o2_fmodel());
        i.exports.push(ExportDecl {
            name: "artifacts".into(),
            model: "art".into(),
            pattern: "Artifacts".into(),
        });
        i.operations.push(OperationDecl {
            name: "bind".into(),
            kind: OpKind::Algebra,
            input: vec![SigItem::Filter {
                model: "o2fmodel".into(),
                pattern: "Ftype".into(),
            }],
            output: vec![],
        });
        i.operations.push(OperationDecl::algebra("select"));
        i.operations.push(OperationDecl::algebra("project"));
        i.operations.push(OperationDecl::boolean("eq"));
        i
    }

    fn interfaces() -> BTreeMap<String, Interface> {
        let mut m = BTreeMap::new();
        m.insert("xmlartwork".to_string(), wais_iface());
        m.insert("o2artifact".to_string(), o2_iface());
        m
    }

    fn apply(rule: &dyn RewriteRule, plan: &Arc<Alg>) -> Option<Arc<Alg>> {
        let ifaces = interfaces();
        let options = OptimizerOptions::default();
        let ctx = RuleCtx {
            interfaces: &ifaces,
            options: &options,
            federation: None,
        };
        super::super::apply_once(plan, rule, &ctx)
    }

    #[test]
    fn split_fires_only_beyond_capability() {
        // decomposing filter: beyond Wais → split
        let deep = Alg::bind(
            Alg::source_at("xmlartwork", "works"),
            parse_filter("works *work [ title: $t, style: $s ]").unwrap(),
        );
        let split = apply(&CapabilitySplit, &deep).expect("should split");
        let Alg::Bind {
            input,
            over: Some(_),
            ..
        } = split.as_ref()
        else {
            panic!("{split}")
        };
        assert!(matches!(input.as_ref(), Alg::Bind { over: None, .. }));

        // whole-document filter: within capability → no split
        let shallow = Alg::bind(
            Alg::source_at("xmlartwork", "works"),
            parse_filter("works *$w").unwrap(),
        );
        assert!(apply(&CapabilitySplit, &shallow).is_none());

        // O2 accepts its deep filter → no split
        let o2 = Alg::bind(
            Alg::source_at("o2artifact", "artifacts"),
            parse_filter("set *class: artifact: tuple [ title: $t ]").unwrap(),
        );
        assert!(apply(&CapabilitySplit, &o2).is_none());
    }

    #[test]
    fn contains_introduced_from_equality() {
        // Select(s = "Impressionist") over split binds
        let base = Alg::bind(
            Alg::source_at("xmlartwork", "works"),
            parse_filter("works *$w").unwrap(),
        );
        let over = Alg::bind_over(base, "w", parse_filter("work [ style: $s ]").unwrap());
        let plan = Alg::select(over, Pred::eq_const("s", "Impressionist"));
        let rewritten = apply(&ContainsIntroduction, &plan).expect("should fire");
        let shown = rewritten.explain();
        assert!(shown.contains("contains($w, \"Impressionist\")"), "{shown}");
        // the equality stays above as compensation
        assert!(shown.contains("$s = \"Impressionist\""), "{shown}");
        // and the rule does not fire twice
        assert!(
            apply(&ContainsIntroduction, &rewritten).is_none(),
            "{shown}"
        );
    }

    #[test]
    fn contains_follows_transitive_bindings() {
        // $cl comes from $fields which comes from $w
        let base = Alg::bind(
            Alg::source_at("xmlartwork", "works"),
            parse_filter("works *$w").unwrap(),
        );
        let fields = Alg::bind_over(base, "w", parse_filter("work [ *($fields) ]").unwrap());
        let cl = Alg::bind_over(fields, "fields", parse_filter("cplace: $cl").unwrap());
        let plan = Alg::select(cl, Pred::eq_const("cl", "Giverny"));
        let rewritten = apply(&ContainsIntroduction, &plan).expect("should fire");
        assert!(
            rewritten.explain().contains("contains($w, \"Giverny\")"),
            "{rewritten}"
        );
    }

    #[test]
    fn contains_requires_declared_equivalence() {
        // O2 declares no equivalence: the rule must not fire there
        let base = Alg::bind(
            Alg::source_at("o2artifact", "artifacts"),
            parse_filter("set *$x: class").unwrap(),
        );
        let over = Alg::bind_over(base, "x", parse_filter("class [ $v ]").unwrap());
        let plan = Alg::select(over, Pred::eq_const("v", "something"));
        assert!(apply(&ContainsIntroduction, &plan).is_none());
    }

    #[test]
    fn push_wraps_maximal_fragment() {
        let plan = Alg::select(
            Alg::select(
                Alg::bind(
                    Alg::source_at("xmlartwork", "works"),
                    parse_filter("works *$w").unwrap(),
                ),
                Pred::Call {
                    name: "contains".into(),
                    args: vec![Operand::var("w"), Operand::cst("Impressionist")],
                },
            ),
            Pred::Call {
                name: "contains".into(),
                args: vec![Operand::var("w"), Operand::cst("Giverny")],
            },
        );
        let pushed = apply(&PushFragments, &plan).expect("pushable");
        let Alg::Push {
            source,
            plan: inner,
        } = pushed.as_ref()
        else {
            panic!("{pushed}")
        };
        assert_eq!(source, "xmlartwork");
        // maximal: both selects are inside, sources localized
        assert_eq!(inner.explain().matches("Select").count(), 2);
        assert!(
            inner.explain().contains("Source works\n"),
            "{}",
            inner.explain()
        );
        // does not refire
        assert!(apply(&PushFragments, &pushed).is_none());
    }

    #[test]
    fn push_declines_beyond_capability() {
        // an eq selection cannot go to Wais: the fragment boundary falls
        // below it, and the selection stays at the mediator
        let plan = Alg::select(
            Alg::bind(
                Alg::source_at("xmlartwork", "works"),
                parse_filter("works *$w").unwrap(),
            ),
            Pred::eq_const("w", "x"),
        );
        let pushed = apply(&PushFragments, &plan).expect("the bind itself is pushable");
        let Alg::Select { input, .. } = pushed.as_ref() else {
            panic!("{pushed}")
        };
        assert!(matches!(input.as_ref(), Alg::Push { .. }), "{pushed}");
        // mixed-source fragments cannot be pushed
        let mixed = Alg::join(
            Alg::bind(
                Alg::source_at("o2artifact", "artifacts"),
                parse_filter("set *$x").unwrap(),
            ),
            Alg::bind(
                Alg::source_at("xmlartwork", "works"),
                parse_filter("works *$w").unwrap(),
            ),
            Pred::True,
        );
        assert!(single_source(&mixed).is_none());
    }

    #[test]
    fn push_inner_fragment_of_mixed_plan() {
        // in a mixed join, each branch gets its own Push
        let o2_branch = Alg::select(
            Alg::bind(
                Alg::source_at("o2artifact", "artifacts"),
                parse_filter("set *class: artifact: tuple [ title: $t, year: $y ]").unwrap(),
            ),
            Pred::cmp(CmpOp::Gt, Operand::var("y"), Operand::cst(1800)),
        );
        let wais_branch = Alg::bind(
            Alg::source_at("xmlartwork", "works"),
            parse_filter("works *$w").unwrap(),
        );
        let plan = Alg::join(o2_branch, wais_branch, Pred::True);
        let first = apply(&PushFragments, &plan).expect("o2 side pushable");
        let second = apply(&PushFragments, &first).expect("wais side pushable");
        assert_eq!(second.explain().matches("Push").count(), 2, "{second}");
        assert!(apply(&PushFragments, &second).is_none());
    }
}
