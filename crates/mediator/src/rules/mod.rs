//! The algebraic rewriting rules of Section 5.
//!
//! Each rule is a [`RewriteRule`]: a pure function from plan to plan that
//! either fires at the given node or declines. The driver in
//! [`crate::optimizer`] applies rule sets to fixpoint, bottom-up, in the
//! three rounds the paper describes.
//!
//! Every rule is individually validated by tests asserting
//! `eval(rewritten) == eval(original)` (up to the documented duplicate
//! absorption of constructing templates).

pub mod bind_split;
pub mod bind_tree;
pub mod capability;
pub mod federate;
pub mod info_passing;
pub mod prune;
pub mod pushdown;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use yat_algebra::Alg;
use yat_capability::interface::Interface;
use yat_federate::SourceRegistry;

/// Context available to rules: the imported interfaces (capabilities and
/// structural models) and the optimizer options.
pub struct RuleCtx<'a> {
    /// Imported interfaces, by connection id.
    pub interfaces: &'a BTreeMap<String, Interface>,
    /// Optimizer options.
    pub options: &'a crate::optimizer::OptimizerOptions,
    /// Federation context for registry-aware rules (`None` when
    /// optimizing for a plain, unfederated mediator).
    pub federation: Option<FederationCtx<'a>>,
}

/// What registry-aware rules see: the source registry and the members
/// whose cost records disqualify them from receiving pushed work.
#[derive(Clone, Copy)]
pub struct FederationCtx<'a> {
    /// The federation registry.
    pub registry: &'a SourceRegistry,
    /// Members quarantined by their error rate: fragments are kept
    /// mediator-side rather than pushed to them.
    pub quarantined: &'a BTreeSet<String>,
}

/// A rewriting rule.
pub trait RewriteRule {
    /// The rule's name (shown in optimizer traces).
    fn name(&self) -> &'static str;

    /// Attempts to rewrite the *root* of `plan`. Return `None` to
    /// decline; the driver handles recursion into children.
    fn apply(&self, plan: &Arc<Alg>, ctx: &RuleCtx<'_>) -> Option<Arc<Alg>>;
}

/// Applies `rule` once, at the topmost node where it fires (pre-order).
/// Returns `None` if it fires nowhere.
pub fn apply_once(plan: &Arc<Alg>, rule: &dyn RewriteRule, ctx: &RuleCtx<'_>) -> Option<Arc<Alg>> {
    if let Some(rewritten) = rule.apply(plan, ctx) {
        return Some(rewritten);
    }
    let children = plan.children();
    for (i, child) in children.iter().enumerate() {
        if let Some(new_child) = apply_once(child, rule, ctx) {
            let mut kids: Vec<Arc<Alg>> = children.iter().map(|c| (*c).clone()).collect();
            kids[i] = new_child;
            return Some(Arc::new(plan.with_children(kids)));
        }
    }
    None
}
