//! The needed-columns pass: projection pushdown, typed filter
//! simplification (Section 5.1) and join/branch elimination (Fig. 8).
//!
//! Runs once per optimization (after Bind–Tree elimination, before
//! capability rewriting — it must precede information passing, which
//! introduces cross-plan variable references pruning cannot see):
//!
//! * columns no operator above consumes are projected away early
//!   ("Structured queries over semistructured data": the projection is
//!   used to simplify the `Bind`);
//! * filter variables that became unneeded turn into wildcards, and
//!   variable-free edges are **dropped when the source's type guarantees
//!   them** — "we often have more interesting opportunities, using type
//!   information about the data" (Section 5.1). Without type information
//!   the edge must stay: dropping a mandatory `One` edge would stop
//!   filtering out documents that lack it;
//! * under the Fig. 8 containment assumption ("all artifacts are
//!   available in the XML source"), a join branch none of whose columns
//!   are needed — after substituting equated variables from the other
//!   side — is eliminated together with the join.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use yat_algebra::{Alg, CmpOp, Operand, Pred};
use yat_capability::interface::Interface;
use yat_model::instantiate::subsumes_open;
use yat_model::{Edge, Model, Occ, Pattern};

/// Options consumed by the pass (a subset of the optimizer options).
#[derive(Debug, Clone, Copy)]
pub struct PruneOptions {
    /// Use imported structural models to drop guaranteed filter edges.
    pub use_type_info: bool,
    /// Assume view joins are containment-complete (Fig. 8) and eliminate
    /// branches whose columns are substitutable.
    pub assume_containment: bool,
}

/// Runs the pass over a whole plan.
pub fn prune(
    plan: &Arc<Alg>,
    interfaces: &BTreeMap<String, Interface>,
    options: PruneOptions,
) -> Arc<Alg> {
    let p = Pruner {
        interfaces,
        options,
    };
    match plan.as_ref() {
        Alg::TreeOp { input, template } => {
            let needed: BTreeSet<String> = template.variables().into_iter().collect();
            Alg::tree(p.go(input, &needed), template.clone())
        }
        _ => {
            let needed: BTreeSet<String> =
                plan.out_vars().unwrap_or_default().into_iter().collect();
            p.go(plan, &needed)
        }
    }
}

struct Pruner<'a> {
    interfaces: &'a BTreeMap<String, Interface>,
    options: PruneOptions,
}

impl<'a> Pruner<'a> {
    fn go(&self, plan: &Arc<Alg>, needed: &BTreeSet<String>) -> Arc<Alg> {
        match plan.as_ref() {
            Alg::Source { .. } => plan.clone(),
            Alg::TreeOp { input, template } => {
                let n: BTreeSet<String> = template.variables().into_iter().collect();
                Alg::tree(self.go(input, &n), template.clone())
            }
            Alg::Project { input, cols } => {
                let mut kept: Vec<(String, String)> = cols
                    .iter()
                    .filter(|(_, d)| needed.contains(d))
                    .cloned()
                    .collect();
                if kept.is_empty() {
                    // keep one column so row counts survive
                    kept = cols.first().into_iter().cloned().collect();
                }
                let inner_needed: BTreeSet<String> = kept.iter().map(|(s, _)| s.clone()).collect();
                Alg::project(self.go(input, &inner_needed), kept)
            }
            Alg::Select { input, pred } => {
                let mut n = needed.clone();
                n.extend(pred.vars().into_iter().map(str::to_string));
                Alg::select(self.go(input, &n), pred.clone())
            }
            Alg::Bind {
                input,
                filter,
                over,
            } => {
                let input_vars: BTreeSet<String> = match over {
                    Some(_) => input.out_vars().unwrap_or_default().into_iter().collect(),
                    None => BTreeSet::new(),
                };
                // shared variables are equality constraints: keep them
                let mut keep_vars = needed.clone();
                for v in filter.variables() {
                    if input_vars.contains(&v) {
                        keep_vars.insert(v);
                    }
                }
                let guarantee = match (over, input.as_ref()) {
                    (
                        None,
                        Alg::Source {
                            source: Some(s),
                            name,
                        },
                    ) if self.options.use_type_info => self.document_pattern(s, name),
                    _ => None,
                };
                let filter = match &guarantee {
                    Some((pat, model)) => {
                        simplify_filter(filter, &keep_vars, Some(pat), Some(model))
                    }
                    None => simplify_filter(filter, &keep_vars, None, None),
                };
                // variables this Bind produces are satisfied here — do
                // not request them from the input (only shared ones,
                // which are constraints, stay needed)
                let mut inner_needed = needed.clone();
                for v in filter.variables() {
                    if !input_vars.contains(&v) {
                        inner_needed.remove(&v);
                    }
                }
                if let Some(col) = over {
                    inner_needed.insert(col.clone());
                }
                match over {
                    Some(col) => Alg::bind_over(self.go(input, &inner_needed), col.clone(), filter),
                    None => Alg::bind(self.go(input, &inner_needed), filter),
                }
            }
            Alg::Join { left, right, pred } => {
                if self.options.assume_containment {
                    if let Some(rewritten) = self.try_eliminate(left, right, pred, needed) {
                        return rewritten;
                    }
                }
                let lv: BTreeSet<String> =
                    left.out_vars().unwrap_or_default().into_iter().collect();
                let rv: BTreeSet<String> =
                    right.out_vars().unwrap_or_default().into_iter().collect();
                let mut want = needed.clone();
                want.extend(pred.vars().into_iter().map(str::to_string));
                let nl: BTreeSet<String> = want.intersection(&lv).cloned().collect();
                let nr: BTreeSet<String> = want.intersection(&rv).cloned().collect();
                Alg::join(self.go(left, &nl), self.go(right, &nr), pred.clone())
            }
            // conservative through the remaining operators: recurse with
            // the child's full column set
            _ => {
                let kids: Vec<Arc<Alg>> = plan
                    .children()
                    .into_iter()
                    .map(|c| {
                        let all: BTreeSet<String> =
                            c.out_vars().unwrap_or_default().into_iter().collect();
                        self.go(c, &all)
                    })
                    .collect();
                Arc::new(plan.with_children(kids))
            }
        }
    }

    /// Fig. 8 branch elimination: drop one join side when all of its
    /// needed variables can be substituted through equality conjuncts.
    fn try_eliminate(
        &self,
        left: &Arc<Alg>,
        right: &Arc<Alg>,
        pred: &Pred,
        needed: &BTreeSet<String>,
    ) -> Option<Arc<Alg>> {
        let lv: BTreeSet<String> = left.out_vars().unwrap_or_default().into_iter().collect();
        let rv: BTreeSet<String> = right.out_vars().unwrap_or_default().into_iter().collect();
        // equality pairs from the join predicate
        let eqs: Vec<(String, String)> = pred
            .conjuncts()
            .iter()
            .filter_map(|c| match c {
                Pred::Cmp {
                    op: CmpOp::Eq,
                    left: Operand::Var(a),
                    right: Operand::Var(b),
                } => Some((a.clone(), b.clone())),
                _ => None,
            })
            .collect();
        // the conjuncts must all be variable equalities for the
        // containment reading to make sense
        if eqs.len() != pred.conjuncts().len() {
            return None;
        }
        // every needed variable must come from one of the two sides;
        // anything else would silently project to Null
        if !needed.iter().all(|v| lv.contains(v) || rv.contains(v)) {
            return None;
        }
        for (drop, keep, kv) in [(&lv, right, &rv), (&rv, left, &lv)] {
            let mut subst: Vec<(String, String)> = Vec::new(); // dropped var → kept var
            let mut ok = true;
            for v in needed
                .iter()
                .filter(|v| drop.contains(*v) && !kv.contains(*v))
            {
                let partner = eqs.iter().find_map(|(a, b)| {
                    if a == v && kv.contains(b) {
                        Some(b.clone())
                    } else if b == v && kv.contains(a) {
                        Some(a.clone())
                    } else {
                        None
                    }
                });
                match partner {
                    Some(p) => subst.push((v.clone(), p)),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            // all needed vars available on the kept side (after renaming)
            let inner_needed: BTreeSet<String> = needed
                .iter()
                .map(|v| {
                    subst
                        .iter()
                        .find(|(d, _)| d == v)
                        .map(|(_, k)| k.clone())
                        .unwrap_or_else(|| v.clone())
                })
                .filter(|v| kv.contains(v))
                .collect();
            let kept = self.go(keep, &inner_needed);
            let cols: Vec<(String, String)> = needed
                .iter()
                .map(|v| {
                    let src = subst
                        .iter()
                        .find(|(d, _)| d == v)
                        .map(|(_, k)| k.clone())
                        .unwrap_or_else(|| v.clone());
                    (src, v.clone())
                })
                .collect();
            if cols.is_empty() {
                return Some(kept);
            }
            return Some(Alg::project(kept, cols));
        }
        None
    }

    /// The structural pattern of an exported document, with its model.
    fn document_pattern(&self, source: &str, name: &str) -> Option<(Pattern, Model)> {
        let iface = self.interfaces.get(source)?;
        let export = iface.export(name)?;
        let model = iface.model(&export.model)?;
        let pattern = model.get(&export.pattern)?;
        Some((pattern.clone(), model.clone()))
    }
}

/// Rewrites a filter for a reduced variable set: unneeded variables become
/// wildcards, and variable-free edges are dropped when `guarantee` (the
/// source's type, threaded in parallel) proves every instance satisfies
/// them.
pub fn simplify_filter(
    filter: &Pattern,
    needed: &BTreeSet<String>,
    guarantee: Option<&Pattern>,
    model: Option<&Model>,
) -> Pattern {
    match filter {
        Pattern::TreeVar(v) if !needed.contains(v) => Pattern::Wildcard,
        Pattern::Union(bs) => Pattern::Union(
            bs.iter()
                .map(|b| simplify_filter(b, needed, guarantee, model))
                .collect(),
        ),
        Pattern::Node { label, edges } => {
            let guar = resolve_guarantee(guarantee, model);
            let mut out_edges = Vec::new();
            for e in edges {
                let gedge = guar.and_then(|g| matching_guarantee_edge(g, &e.pattern, model));
                let star_var = match &e.star_var {
                    Some((v, _)) if !needed.contains(v) => None,
                    other => other.clone(),
                };
                let pattern = simplify_filter(&e.pattern, needed, gedge.map(|g| &g.pattern), model);
                let e2 = Edge {
                    occ: e.occ,
                    star_var,
                    pattern,
                };
                if e2.star_var.is_none() && e2.pattern.variables().is_empty() {
                    match e2.occ {
                        // structural stars and options never filter
                        Occ::Star | Occ::Opt => continue,
                        Occ::One => {
                            if let Some(g) = gedge {
                                if g.occ == Occ::One
                                    && subsumes_open(&e2.pattern, &g.pattern, None, model)
                                {
                                    continue;
                                }
                            }
                        }
                    }
                }
                out_edges.push(e2);
            }
            Pattern::Node {
                label: label.clone(),
                edges: out_edges,
            }
        }
        other => other.clone(),
    }
}

fn resolve_guarantee<'a>(g: Option<&'a Pattern>, model: Option<&'a Model>) -> Option<&'a Pattern> {
    let mut cur = g?;
    for _ in 0..16 {
        match cur {
            Pattern::Ref(name) => cur = model?.get(name)?,
            _ => return Some(cur),
        }
    }
    None
}

/// Finds the guarantee edge whose pattern produces nodes the filter edge
/// could match (by root symbol).
fn matching_guarantee_edge<'a>(
    guar: &'a Pattern,
    filter_pattern: &Pattern,
    model: Option<&'a Model>,
) -> Option<&'a Edge> {
    let Pattern::Node { edges, .. } = guar else {
        return None;
    };
    let fname = match filter_pattern {
        Pattern::Node {
            label: yat_model::PLabel::Sym(s),
            ..
        } => Some(s.as_str()),
        _ => None,
    };
    edges.iter().find(|g| {
        let gp = resolve_guarantee(Some(&g.pattern), model);
        match (fname, gp) {
            (
                Some(f),
                Some(Pattern::Node {
                    label: yat_model::PLabel::Sym(s),
                    ..
                }),
            ) => s == f,
            (
                _,
                Some(Pattern::Node {
                    label: yat_model::PLabel::AnySym,
                    ..
                }),
            ) => true,
            (None, Some(_)) => true,
            _ => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use yat_model::AtomType;
    use yat_yatl::parse_filter;

    fn needed(vars: &[&str]) -> BTreeSet<String> {
        vars.iter().map(|s| s.to_string()).collect()
    }

    /// The works structure: mandatory artist/title/style/size.
    fn works_model() -> Model {
        Model::new("Artworks_Structure")
            .with(
                "Work",
                Pattern::sym(
                    "work",
                    vec![
                        Edge::one(Pattern::elem_typed("artist", AtomType::Str)),
                        Edge::one(Pattern::elem_typed("title", AtomType::Str)),
                        Edge::one(Pattern::elem_typed("style", AtomType::Str)),
                        Edge::one(Pattern::elem_typed("size", AtomType::Str)),
                        Edge::star(Pattern::Wildcard),
                    ],
                ),
            )
            .with(
                "Works",
                Pattern::sym("works", vec![Edge::star(Pattern::Ref("Work".into()))]),
            )
    }

    #[test]
    fn unneeded_vars_become_wildcards_and_stars_drop() {
        let f = parse_filter("works *work [ title: $t, artist: $a, *($fields) ]").unwrap();
        let simplified = simplify_filter(&f, &needed(&["t"]), None, None);
        let s = simplified.to_string();
        // $a pruned to wildcard but the artist edge must stay (no type
        // info proves every work has one); the collect star is dropped
        assert!(s.contains("title[$t]"), "{s}");
        assert!(s.contains("artist[_]"), "{s}");
        assert!(!s.contains("fields"), "{s}");
    }

    #[test]
    fn type_info_drops_guaranteed_edges() {
        let model = works_model();
        let f = parse_filter("works *work [ title: $t, artist: $a, size: $si ]").unwrap();
        let guarantee = model.get("Works").unwrap().clone();
        let simplified = simplify_filter(&f, &needed(&["t"]), Some(&guarantee), Some(&model));
        assert_eq!(simplified.to_string(), "works[*work[title[$t]]]");
    }

    #[test]
    fn constants_are_never_dropped() {
        let model = works_model();
        let f = parse_filter("works *work [ title: $t, style: \"Impressionist\" ]").unwrap();
        let guarantee = model.get("Works").unwrap().clone();
        let simplified = simplify_filter(&f, &needed(&["t"]), Some(&guarantee), Some(&model));
        assert!(
            simplified.to_string().contains("Impressionist"),
            "{simplified}"
        );
    }

    #[test]
    fn optional_edges_drop_without_type_info() {
        let f = parse_filter("work [ title: $t, ?cplace: $c ]").unwrap();
        let simplified = simplify_filter(&f, &needed(&["t"]), None, None);
        assert_eq!(simplified.to_string(), "work[title[$t]]");
    }

    mod plan_level {
        use super::*;
        use yat_algebra::{Alg, Pred};

        fn options() -> PruneOptions {
            PruneOptions {
                use_type_info: true,
                assume_containment: true,
            }
        }

        #[test]
        fn join_elimination_with_substitution() {
            // Fig. 8: needed vars {t, fields}; $t is equated with the
            // kept side's $t2 — drop the left branch entirely
            let left = Alg::bind(
                Alg::source_at("o2", "artifacts"),
                parse_filter("set *class: artifact: tuple [ title: $t, year: $y ]").unwrap(),
            );
            let right = Alg::bind(
                Alg::source_at("wais", "works"),
                parse_filter("works *work [ title: $t2, *($fields) ]").unwrap(),
            );
            let join = Alg::join(left, right, Pred::var_eq("t", "t2"));
            let plan = Alg::tree(
                Alg::project(
                    join,
                    vec![("t".into(), "t".into()), ("fields".into(), "fields".into())],
                ),
                yat_algebra::Template::sym(
                    "out",
                    vec![yat_algebra::Template::group(
                        &["t"],
                        yat_algebra::Template::elem_var("r", "t"),
                    )],
                ),
            );
            let pruned = prune(&plan, &BTreeMap::new(), options());
            let shown = pruned.explain();
            assert!(
                !shown.contains("artifacts"),
                "O2 branch should be gone:\n{shown}"
            );
            assert!(!shown.contains("Join"), "{shown}");
            assert!(shown.contains("$t2→$t") || shown.contains("t2"), "{shown}");
        }

        #[test]
        fn no_elimination_when_both_sides_needed() {
            let left = Alg::bind(
                Alg::source_at("o2", "artifacts"),
                parse_filter("set *class: artifact: tuple [ title: $t, price: $p ]").unwrap(),
            );
            let right = Alg::bind(
                Alg::source_at("wais", "works"),
                parse_filter("works *work [ title: $t2, style: $s ]").unwrap(),
            );
            let join = Alg::join(left, right, Pred::var_eq("t", "t2"));
            let plan = Alg::project(
                join,
                vec![("p".into(), "p".into()), ("s".into(), "s".into())],
            );
            let pruned = prune(&plan, &BTreeMap::new(), options());
            assert!(pruned.explain().contains("Join"), "{pruned}");
        }

        #[test]
        fn no_elimination_without_flag() {
            let left = Alg::bind(
                Alg::source_at("o2", "artifacts"),
                parse_filter("set *class: artifact: tuple [ title: $t ]").unwrap(),
            );
            let right = Alg::bind(
                Alg::source_at("wais", "works"),
                parse_filter("works *work [ title: $t2 ]").unwrap(),
            );
            let plan = Alg::project(
                Alg::join(left, right, Pred::var_eq("t", "t2")),
                vec![("t2".into(), "t2".into())],
            );
            let opts = PruneOptions {
                use_type_info: true,
                assume_containment: false,
            };
            let pruned = prune(&plan, &BTreeMap::new(), opts);
            assert!(pruned.explain().contains("Join"), "{pruned}");
        }

        #[test]
        fn select_vars_stay_needed() {
            let bind = Alg::bind(
                Alg::source("d"),
                parse_filter("d *work [ title: $t, year: $y ]").unwrap(),
            );
            let plan = Alg::project(
                Alg::select(bind, Pred::eq_const("y", 1800)),
                vec![("t".into(), "t".into())],
            );
            let pruned = prune(&plan, &BTreeMap::new(), options());
            let shown = pruned.explain();
            assert!(
                shown.contains("year[$y]"),
                "y feeds the selection:\n{shown}"
            );
        }
    }
}
