//! Information passing (Section 5.3, Fig. 9): turn a cross-source `Join`
//! into a `DJoin` whose pushed side receives the other side's values —
//! "a nested loop evaluation with values of variables passed from the
//! left-hand side to the right-hand side … a classical technique in
//! distributed query optimization".

use super::{RewriteRule, RuleCtx};
use std::sync::Arc;
use yat_algebra::{Alg, Pred};
use yat_capability::matcher::pushable;

/// Rewrites `Join(l, Push(s, frag), p)` into
/// `DJoin(l, Push(s, Select(frag, p)))` when the source can evaluate the
/// selection (after the executor substitutes the passed values as
/// constants). Falls back to the symmetric orientation when the *left*
/// side is the pushed one — DJoin output columns are named, so swapping
/// sides is safe.
pub struct JoinToDJoin;

impl RewriteRule for JoinToDJoin {
    fn name(&self) -> &'static str {
        "join-to-djoin"
    }

    fn apply(&self, plan: &Arc<Alg>, ctx: &RuleCtx<'_>) -> Option<Arc<Alg>> {
        let Alg::Join { left, right, pred } = plan.as_ref() else {
            return None;
        };
        if *pred == Pred::True {
            return None;
        }
        // only simple comparisons benefit from constant substitution
        if !pred
            .conjuncts()
            .iter()
            .all(|c| matches!(c, Pred::Cmp { .. }))
        {
            return None;
        }
        if let Some(rewritten) = orient(left, right, pred, ctx) {
            return Some(rewritten);
        }
        orient(right, left, pred, ctx)
    }
}

fn orient(outer: &Arc<Alg>, pushed: &Arc<Alg>, pred: &Pred, ctx: &RuleCtx<'_>) -> Option<Arc<Alg>> {
    let Alg::Push { source, plan: frag } = pushed.as_ref() else {
        return None;
    };
    let iface = ctx.interfaces.get(source)?;
    let inner = Alg::select(frag.clone(), pred.clone());
    pushable(iface, &inner).ok()?;
    Some(Alg::djoin(outer.clone(), Alg::push(source.clone(), inner)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerOptions;
    use std::collections::BTreeMap;
    use yat_capability::fpattern::o2_fmodel;
    use yat_capability::interface::{ExportDecl, Interface, OpKind, OperationDecl, SigItem};
    use yat_yatl::parse_filter;

    fn o2_iface() -> Interface {
        let mut i = Interface::new("o2artifact");
        i.fmodels.push(o2_fmodel());
        i.exports.push(ExportDecl {
            name: "artifacts".into(),
            model: "art".into(),
            pattern: "Artifacts".into(),
        });
        i.operations.push(OperationDecl {
            name: "bind".into(),
            kind: OpKind::Algebra,
            input: vec![SigItem::Filter {
                model: "o2fmodel".into(),
                pattern: "Ftype".into(),
            }],
            output: vec![],
        });
        i.operations.push(OperationDecl::algebra("select"));
        i.operations.push(OperationDecl::boolean("eq"));
        i
    }

    fn wais_iface_no_eq() -> Interface {
        let mut i = Interface::new("xmlartwork");
        i.operations.push(OperationDecl::algebra("select"));
        i.exports.push(ExportDecl {
            name: "works".into(),
            model: "m".into(),
            pattern: "Works".into(),
        });
        i
    }

    fn apply(plan: &Arc<Alg>) -> Option<Arc<Alg>> {
        let mut ifaces = BTreeMap::new();
        ifaces.insert("o2artifact".to_string(), o2_iface());
        ifaces.insert("xmlartwork".to_string(), wais_iface_no_eq());
        let options = OptimizerOptions::default();
        let ctx = RuleCtx {
            interfaces: &ifaces,
            options: &options,
            federation: None,
        };
        super::super::apply_once(plan, &JoinToDJoin, &ctx)
    }

    fn o2_push() -> Arc<Alg> {
        Alg::push(
            "o2artifact",
            Alg::bind(
                Alg::source("artifacts"),
                parse_filter("set *class: artifact: tuple [ title: $t2, price: $p ]").unwrap(),
            ),
        )
    }

    fn wais_side() -> Arc<Alg> {
        Alg::bind(
            Alg::source_at("xmlartwork", "works"),
            parse_filter("works *work [ title: $t, artist: $a ]").unwrap(),
        )
    }

    #[test]
    fn pushed_right_side_receives_the_join() {
        let plan = Alg::join(wais_side(), o2_push(), Pred::var_eq("t", "t2"));
        let dj = apply(&plan).expect("should fire");
        let Alg::DJoin { left, right } = dj.as_ref() else {
            panic!("{dj}")
        };
        assert!(matches!(left.as_ref(), Alg::Bind { .. }));
        let Alg::Push { plan: frag, .. } = right.as_ref() else {
            panic!("{dj}")
        };
        let Alg::Select { pred, .. } = frag.as_ref() else {
            panic!("{dj}")
        };
        assert_eq!(pred.to_string(), "$t = $t2");
    }

    #[test]
    fn swapped_orientation_when_left_is_pushed() {
        let plan = Alg::join(o2_push(), wais_side(), Pred::var_eq("t", "t2"));
        let dj = apply(&plan).expect("should fire");
        let Alg::DJoin { left, right } = dj.as_ref() else {
            panic!("{dj}")
        };
        // the non-pushed side drives the loop
        assert!(matches!(left.as_ref(), Alg::Bind { .. }), "{dj}");
        assert!(matches!(right.as_ref(), Alg::Push { .. }));
    }

    #[test]
    fn declines_without_pushable_selection() {
        // Wais declares no comparisons: cannot absorb the join predicate
        let wais_push = Alg::push("xmlartwork", Alg::source("works"));
        let plan = Alg::join(wais_side(), wais_push, Pred::var_eq("t", "t2"));
        assert!(apply(&plan).is_none());
        // trivial predicate: nothing to pass
        let plan = Alg::join(wais_side(), o2_push(), Pred::True);
        assert!(apply(&plan).is_none());
        // non-comparison conjunct
        let plan = Alg::join(
            wais_side(),
            o2_push(),
            Pred::Call {
                name: "contains".into(),
                args: vec![],
            },
        );
        assert!(apply(&plan).is_none());
    }
}
