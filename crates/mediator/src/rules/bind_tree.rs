//! Bind–Tree elimination (Section 5.2): the key to efficient query
//! composition.
//!
//! After composing a query with a view, the plan contains a
//! `Bind(Tree(base))` sequence: the view's construction immediately
//! re-matched by the query's filter. "It is very important to eliminate
//! intermediate Tree operations resulting from the composition of queries
//! with the view definition."
//!
//! The rule *unifies* the query filter with the construction template:
//!
//! * a filter variable meeting a template splice `Var(v)` becomes a
//!   **renaming** (`$t' := $t` — the paper's "simple projection with
//!   renaming");
//! * a filter subtree descending *into* a spliced variable becomes a
//!   **residual Bind** over that column (Q1's `cplace` lives inside the
//!   view's `$fields` collection);
//! * a filter constant meeting a splice becomes a **selection**;
//! * a mandatory filter edge that no template child can produce makes
//!   the composition **unsatisfiable**: the whole Bind yields nothing.
//!
//! The rewritten plan produces one row per *base* row, where the original
//! produced one per constructed (grouped) element; YATL's constructing
//! templates deduplicate by grouping keys, so final query results are
//! unchanged. This is asserted semantically by the Fig. 8/9 tests.

use super::{RewriteRule, RuleCtx};
use std::sync::Arc;
use yat_algebra::{Alg, Operand, Pred, Template};
use yat_model::{Edge, Occ, PLabel, Pattern};

/// The Bind–Tree elimination rule.
pub struct BindTreeElim;

impl RewriteRule for BindTreeElim {
    fn name(&self) -> &'static str {
        "bind-tree-elimination"
    }

    fn apply(&self, plan: &Arc<Alg>, _ctx: &RuleCtx<'_>) -> Option<Arc<Alg>> {
        let Alg::Bind {
            input,
            filter,
            over: None,
        } = plan.as_ref()
        else {
            return None;
        };
        let Alg::TreeOp {
            input: base,
            template,
        } = input.as_ref()
        else {
            return None;
        };
        let mut u = Unification::default();
        match unify(filter, template, &mut u) {
            Err(Unsupported) => None,
            Ok(()) if !u.satisfiable => {
                // the filter can never match the constructed document:
                // empty result with the filter's columns
                let qvars = filter.variables();
                let cols = qvars.iter().map(|v| (v.clone(), v.clone())).collect();
                Some(Alg::select(
                    Alg::project(base.clone(), cols),
                    Pred::Not(Box::new(Pred::True)),
                ))
            }
            Ok(()) => {
                let mut out: Arc<Alg> = base.clone();
                if !u.selects.is_empty() {
                    out = Alg::select(out, Pred::from_conjuncts(u.selects.clone()));
                }
                for (vvar, residual) in &u.residuals {
                    out = Alg::bind_over(out, vvar.clone(), residual.clone());
                }
                // project to the query's variables, renaming view vars
                let cols: Vec<(String, String)> = filter
                    .variables()
                    .into_iter()
                    .map(|qv| match u.renames.iter().find(|(q, _)| *q == qv) {
                        Some((_, vv)) => (vv.clone(), qv),
                        None => (qv.clone(), qv),
                    })
                    .collect();
                Some(Alg::project(out, cols))
            }
        }
    }
}

/// Marker: the filter/template pair is outside the fragment this rule
/// handles; fall back to naive materialization.
struct Unsupported;

#[derive(Default)]
struct Unification {
    /// `(query var, view var)` renamings.
    renames: Vec<(String, String)>,
    /// `(view column, residual query filter)` — navigation into spliced
    /// values.
    residuals: Vec<(String, Pattern)>,
    /// Selections from constants meeting splices.
    selects: Vec<Pred>,
    /// Set to false when a mandatory filter edge cannot be produced.
    satisfiable: bool,
}

impl Unification {
    fn unsatisfiable(&mut self) {
        self.satisfiable = false;
    }
}

fn unify(filter: &Pattern, template: &Template, u: &mut Unification) -> Result<(), Unsupported> {
    u.satisfiable = true;
    unify_node(filter, template, u)
}

fn unify_node(
    filter: &Pattern,
    template: &Template,
    u: &mut Unification,
) -> Result<(), Unsupported> {
    match template {
        // grouping wrappers (and their Skolem identifiers) are transparent
        Template::Group { body, .. } => unify_node(filter, body, u),
        Template::Sym { name, children } => match filter {
            Pattern::Wildcard => Ok(()),
            Pattern::TreeVar(_) => Err(Unsupported),
            Pattern::Union(_) | Pattern::Ref(_) => Err(Unsupported),
            Pattern::Node { label, edges } => {
                match label {
                    PLabel::Sym(s) if s == name => {}
                    PLabel::AnySym | PLabel::Any => {}
                    PLabel::Var(_) => return Err(Unsupported),
                    _ => {
                        u.unsatisfiable();
                        return Ok(());
                    }
                }
                for e in edges {
                    unify_edge(e, children, u)?;
                    if !u.satisfiable {
                        return Ok(());
                    }
                }
                Ok(())
            }
        },
        Template::Var(v) => match filter {
            Pattern::TreeVar(q) => {
                u.renames.push((q.clone(), v.clone()));
                Ok(())
            }
            Pattern::Wildcard => Ok(()),
            Pattern::Node {
                label: PLabel::Const(a),
                edges,
            } if edges.is_empty() => {
                u.selects.push(Pred::cmp(
                    yat_algebra::CmpOp::Eq,
                    Operand::Var(v.clone()),
                    Operand::Const(a.clone()),
                ));
                Ok(())
            }
            // navigation into the spliced value: residual Bind over $v
            deeper => {
                u.residuals.push((v.clone(), deeper.clone()));
                Ok(())
            }
        },
        Template::Text(s) => match filter {
            Pattern::Wildcard => Ok(()),
            Pattern::Node {
                label: PLabel::Const(a),
                edges,
            } if edges.is_empty() && a.to_string() == *s => Ok(()),
            Pattern::TreeVar(_) => Err(Unsupported),
            _ => {
                u.unsatisfiable();
                Ok(())
            }
        },
        Template::LabelVar { .. } => Err(Unsupported),
    }
}

/// Maps one filter edge onto the template's children.
fn unify_edge(e: &Edge, children: &[Template], u: &mut Unification) -> Result<(), Unsupported> {
    // star-iterate query variables over constructed children would bind
    // the constructed trees themselves; handled only by materialization
    if e.star_var.is_some() {
        return Err(Unsupported);
    }
    for child in children {
        if let Some(()) = try_child(e, child, u)? {
            return Ok(());
        }
    }
    // no child can produce this edge
    match e.occ {
        Occ::One => u.unsatisfiable(),
        Occ::Opt | Occ::Star => {}
    }
    Ok(())
}

/// `Some(())` when the child hosts the edge (in which case unification of
/// the subpattern has been recorded).
fn try_child(e: &Edge, child: &Template, u: &mut Unification) -> Result<Option<()>, Unsupported> {
    match child {
        Template::Group { body, .. } => try_child(e, body, u),
        Template::Sym { name, .. } => {
            let matches_name = match &e.pattern {
                Pattern::Node {
                    label: PLabel::Sym(s),
                    ..
                } => s == name,
                Pattern::Node {
                    label: PLabel::AnySym | PLabel::Any,
                    ..
                } => true,
                Pattern::Node {
                    label: PLabel::Var(_),
                    ..
                } => return Err(Unsupported),
                Pattern::Wildcard => true,
                // a tree variable at edge level binds a constructed child
                Pattern::TreeVar(_) => return Err(Unsupported),
                _ => false,
            };
            if !matches_name {
                return Ok(None);
            }
            unify_node(&e.pattern, child, u)?;
            Ok(Some(()))
        }
        // splices can host any edge: renames/selections/residuals are
        // decided by the subpattern's shape
        Template::Var(_) => {
            unify_node(&e.pattern, child, u)?;
            Ok(Some(()))
        }
        Template::Text(_) => match &e.pattern {
            Pattern::Node {
                label: PLabel::Const(_),
                edges,
            } if edges.is_empty() => {
                unify_node(&e.pattern, child, u)?;
                Ok(Some(()))
            }
            Pattern::Wildcard => Ok(Some(())),
            _ => Ok(None),
        },
        Template::LabelVar { .. } => Err(Unsupported),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerOptions;
    use std::collections::BTreeMap;
    use yat_algebra::eval::{eval, EvalCtx};
    use yat_algebra::{FnRegistry, SkolemRegistry};
    use yat_model::{Forest, Node};
    use yat_yatl::{parse_filter, parse_template, translate};

    fn ctx_fixture() -> (
        BTreeMap<String, yat_capability::Interface>,
        OptimizerOptions,
    ) {
        (BTreeMap::new(), OptimizerOptions::default())
    }

    fn forest() -> Forest {
        let mut f = Forest::new();
        f.insert(
            "works",
            Node::sym(
                "works",
                vec![
                    Node::sym(
                        "work",
                        vec![
                            Node::elem("title", "Nympheas"),
                            Node::elem("artist", "Claude Monet"),
                            Node::elem("cplace", "Giverny"),
                        ],
                    ),
                    Node::sym(
                        "work",
                        vec![
                            Node::elem("title", "Card Players"),
                            Node::elem("artist", "Paul Cézanne"),
                        ],
                    ),
                ],
            ),
        );
        f
    }

    /// A small view over `works`: doc *&aw($t): work[title:$t, artist:$a,
    /// more: $fields].
    fn view_plan() -> Arc<Alg> {
        let rule = yat_yatl::parse_rule(
            "v() := MAKE doc *&aw($t) := work [ title: $t, artist: $a, more: $fields ] \
             MATCH works WITH works *work [ title: $t, artist: $a, *($fields) ]",
        )
        .unwrap();
        translate(&rule)
    }

    fn rewrite(plan: &Arc<Alg>) -> Arc<Alg> {
        let (ifaces, options) = ctx_fixture();
        let ctx = RuleCtx {
            interfaces: &ifaces,
            options: &options,
            federation: None,
        };
        super::super::apply_once(plan, &BindTreeElim, &ctx).expect("rule should fire")
    }

    fn eval_rows(plan: &Alg) -> Vec<Vec<String>> {
        let f = forest();
        let funcs = FnRegistry::with_builtins();
        let sk = SkolemRegistry::new();
        let out = eval(plan, &EvalCtx::local(&f, &funcs, &sk)).unwrap();
        match out {
            yat_algebra::EvalOut::Tab(t) => {
                // elimination changes row multiplicity (base rows vs
                // constructed elements); constructing templates absorb
                // duplicates, so compare as sets
                let mut rows: Vec<Vec<String>> = t
                    .rows()
                    .map(|r| {
                        r.iter()
                            .map(|v| v.atom().map(|a| a.to_string()).unwrap_or_default())
                            .collect()
                    })
                    .collect();
                rows.sort();
                rows.dedup();
                rows
            }
            yat_algebra::EvalOut::Tree(t) => vec![vec![t.to_string()]],
        }
    }

    #[test]
    fn renaming_only_composition() {
        // query binds title and artist straight off the view
        let qfilter = parse_filter("doc.work.[ title.$t2, artist.$a2 ]").unwrap();
        let composed = Alg::bind(view_plan(), qfilter);
        let rewritten = rewrite(&composed);
        // no Tree operator survives
        assert!(!has_tree(&rewritten), "{rewritten}");
        // semantics preserved
        assert_eq!(eval_rows(&composed), eval_rows(&rewritten));
        // shape: a Project with renaming on top
        assert!(
            matches!(rewritten.as_ref(), Alg::Project { .. }),
            "{rewritten}"
        );
    }

    #[test]
    fn residual_bind_into_spliced_fields() {
        // Q1-style: cplace lives inside the view's $fields splice
        let qfilter = parse_filter("doc.work.[ title.$t2, more.cplace.$cl ]").unwrap();
        let composed = Alg::bind(view_plan(), qfilter);
        let rewritten = rewrite(&composed);
        assert!(!has_tree(&rewritten), "{rewritten}");
        assert!(
            has_bind_over(&rewritten),
            "expected a residual Bind:\n{rewritten}"
        );
        assert_eq!(eval_rows(&composed), eval_rows(&rewritten));
        // only the Giverny work has a cplace
        assert_eq!(eval_rows(&rewritten).len(), 1);
    }

    #[test]
    fn constant_meets_splice_becomes_selection() {
        let qfilter = parse_filter("doc.work.[ title.\"Nympheas\", artist.$a2 ]").unwrap();
        let composed = Alg::bind(view_plan(), qfilter);
        let rewritten = rewrite(&composed);
        assert!(
            find(&rewritten, &|p| matches!(p, Alg::Select { .. })),
            "{rewritten}"
        );
        assert_eq!(eval_rows(&composed), eval_rows(&rewritten));
        assert_eq!(eval_rows(&rewritten).len(), 1);
    }

    #[test]
    fn impossible_edge_is_unsatisfiable() {
        // the view never constructs a `price` child under work
        let qfilter = parse_filter("doc.work.[ price.$p ]").unwrap();
        let composed = Alg::bind(view_plan(), qfilter);
        let rewritten = rewrite(&composed);
        assert_eq!(eval_rows(&rewritten).len(), 0);
        assert_eq!(eval_rows(&composed), eval_rows(&rewritten));
    }

    #[test]
    fn wrong_root_is_unsatisfiable() {
        let qfilter = parse_filter("catalogue.work.[ title.$t2 ]").unwrap();
        let composed = Alg::bind(view_plan(), qfilter);
        let rewritten = rewrite(&composed);
        assert_eq!(eval_rows(&rewritten).len(), 0);
    }

    #[test]
    fn unsupported_shapes_decline() {
        let (ifaces, options) = ctx_fixture();
        let ctx = RuleCtx {
            interfaces: &ifaces,
            options: &options,
            federation: None,
        };
        // binding a whole constructed subtree
        let qfilter = parse_filter("doc *$w").unwrap();
        let composed = Alg::bind(view_plan(), qfilter);
        assert!(super::super::apply_once(&composed, &BindTreeElim, &ctx).is_none());
    }

    #[test]
    fn template_text_children() {
        let t = parse_template("doc [ note [ \"fixed\" ], title [ $t ] ]").unwrap();
        let base = Alg::bind(
            Alg::source("works"),
            parse_filter("works *work [ title: $t ]").unwrap(),
        );
        let view = Alg::tree(base, t);
        // matching the fixed text succeeds
        let ok = Alg::bind(view.clone(), parse_filter("doc.note.\"fixed\"").unwrap());
        let r = rewrite(&ok);
        assert_eq!(eval_rows(&ok), eval_rows(&r));
        // mismatching text is unsatisfiable
        let bad = Alg::bind(view, parse_filter("doc.note.\"other\"").unwrap());
        let r = rewrite(&bad);
        assert_eq!(eval_rows(&r).len(), 0);
    }

    fn has_tree(p: &Alg) -> bool {
        find(p, &|p| matches!(p, Alg::TreeOp { .. }))
    }

    fn has_bind_over(p: &Alg) -> bool {
        find(p, &|p| matches!(p, Alg::Bind { over: Some(_), .. }))
    }

    fn find(p: &Alg, pred: &dyn Fn(&Alg) -> bool) -> bool {
        pred(p) || p.children().iter().any(|c| find(c, pred))
    }
}
