//! The optimizer: "heuristics and a simple linear search strategy
//! consisting of the three rewriting rounds presented in [Section 5]"
//! (Section 6).
//!
//! * **Round 1 — composition:** Bind–Tree elimination, selection
//!   merging/pushdown, then the needed-columns pass (projection pruning,
//!   typed filter simplification, Fig. 8 branch elimination), then
//!   pushdown again on the simplified plan.
//! * **Round 2 — capabilities:** capability splitting, `contains`
//!   introduction from declared equivalences, maximal fragment pushing.
//! * **Round 3 — information passing:** cross-source `Join` → `DJoin`
//!   with the join predicate absorbed into the pushed side.
//!
//! Every round applies its rule set to a fixpoint (with a hard iteration
//! cap) and records a [`Trace`] of rule firings.

use crate::rules::bind_tree::BindTreeElim;
use crate::rules::capability::{CapabilitySplit, ContainsIntroduction, PushFragments};
use crate::rules::federate::FederateRoute;
use crate::rules::info_passing::JoinToDJoin;
use crate::rules::prune::{prune, PruneOptions};
use crate::rules::pushdown::{SelectMerge, SelectPushdown};
use crate::rules::{apply_once, FederationCtx, RewriteRule, RuleCtx};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use yat_algebra::Alg;
use yat_capability::interface::Interface;
use yat_federate::SourceRegistry;

/// What the optimizer is allowed to do. All techniques default on except
/// the Fig. 8 containment assumption, which changes semantics unless the
/// administrator vouches for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerOptions {
    /// Round 1: eliminate Bind–Tree compositions.
    pub compose_elimination: bool,
    /// Round 1: use imported structural models to simplify filters.
    pub use_type_info: bool,
    /// Round 1: assume view joins are containment-complete (Fig. 8) so
    /// unused branches can be eliminated.
    pub assume_containment: bool,
    /// Round 2: capability-based rewriting and fragment pushing.
    pub capability_pushdown: bool,
    /// Round 3: information passing.
    pub info_passing: bool,
    /// Round 4: prune partition-group shards a fragment's constraints
    /// exclude (only meaningful with a federation registry).
    pub prune_partitions: bool,
    /// Fixpoint iteration cap per round.
    pub max_steps: usize,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            compose_elimination: true,
            use_type_info: true,
            assume_containment: false,
            capability_pushdown: true,
            info_passing: true,
            prune_partitions: true,
            max_steps: 128,
        }
    }
}

impl OptimizerOptions {
    /// Everything off: the naive plan passes through unchanged.
    pub fn naive() -> Self {
        OptimizerOptions {
            compose_elimination: false,
            use_type_info: false,
            assume_containment: false,
            capability_pushdown: false,
            info_passing: false,
            prune_partitions: false,
            max_steps: 0,
        }
    }

    /// Everything on, including the Fig. 8 containment assumption.
    pub fn full() -> Self {
        OptimizerOptions {
            assume_containment: true,
            ..Default::default()
        }
    }
}

/// One rule application: which rule fired in which round, and what it did
/// to the plan shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleFiring {
    /// The rewriting round (1 = composition, 2 = capabilities, 3 =
    /// information passing).
    pub round: u8,
    /// The rule's name.
    pub rule: &'static str,
    /// The plan before the firing, rendered by [`Alg::explain`].
    pub before: String,
    /// The plan after the firing.
    pub after: String,
    /// Node count before.
    pub nodes_before: usize,
    /// Node count after.
    pub nodes_after: usize,
}

/// A record of the rewriting steps taken.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// `(round, rule name)` per firing, in order.
    pub steps: Vec<(u8, &'static str)>,
    /// The same firings with before/after plan snapshots — the derivation
    /// `EXPLAIN` and `examples/optimizer_explain.rs` print.
    pub firings: Vec<RuleFiring>,
    /// Free-form decisions that are not plan rewrites — e.g. why a
    /// source's fragments were kept mediator-side.
    pub notes: Vec<String>,
}

impl Trace {
    fn record(&mut self, round: u8, rule: &'static str, before: &Alg, after: &Alg) {
        self.steps.push((round, rule));
        self.firings.push(RuleFiring {
            round,
            rule,
            before: before.explain(),
            after: after.explain(),
            nodes_before: before.node_count(),
            nodes_after: after.node_count(),
        });
    }

    /// Number of firings of a rule.
    pub fn count(&self, rule: &str) -> usize {
        self.steps.iter().filter(|(_, r)| *r == rule).count()
    }

    /// All firings, rendered one line each, followed by the notes.
    pub fn render(&self) -> String {
        self.steps
            .iter()
            .map(|(round, rule)| format!("round {round}: {rule}"))
            .chain(self.notes.iter().map(|n| format!("note: {n}")))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The full derivation: each firing with its node-count delta and the
    /// plan it produced, ending at the final plan.
    pub fn render_derivation(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.firings.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!("plan ({} nodes):\n", f.nodes_before));
                indent_into(&mut out, &f.before);
            }
            out.push_str(&format!(
                "-- round {}: {} ({} → {} nodes) -->\n",
                f.round, f.rule, f.nodes_before, f.nodes_after
            ));
            indent_into(&mut out, &f.after);
        }
        if self.firings.is_empty() {
            out.push_str("(no rule fired)\n");
        }
        out
    }
}

fn indent_into(out: &mut String, plan: &str) {
    for line in plan.lines() {
        out.push_str("    ");
        out.push_str(line);
        out.push('\n');
    }
}

/// Optimizes `plan` against the imported `interfaces`.
pub fn optimize(
    plan: &Arc<Alg>,
    interfaces: &BTreeMap<String, Interface>,
    options: OptimizerOptions,
) -> (Arc<Alg>, Trace) {
    optimize_with_registry(plan, interfaces, options, None)
}

/// [`optimize`] with a federation registry: partition-group pushes are
/// routed (and pruned) per member in round 4, and members whose cost
/// records show a majority of failed trips are quarantined — their
/// fragments stay mediator-side, with the decision recorded in the
/// trace's notes.
pub fn optimize_with_registry(
    plan: &Arc<Alg>,
    interfaces: &BTreeMap<String, Interface>,
    options: OptimizerOptions,
    registry: Option<&SourceRegistry>,
) -> (Arc<Alg>, Trace) {
    let mut trace = Trace::default();
    // quarantine: enough history to judge, and most trips failing
    let mut quarantined = BTreeSet::new();
    if let Some(reg) = registry {
        for name in reg.member_names() {
            let c = reg.cost(name);
            if c.trips >= 4 && c.error_rate() > 0.5 {
                trace.notes.push(format!(
                    "push-vs-pull: keeping `{name}` mediator-side (error rate {:.0}%)",
                    c.error_rate() * 100.0
                ));
                quarantined.insert(name.to_string());
            }
        }
    }
    let ctx = RuleCtx {
        interfaces,
        options: &options,
        federation: registry.map(|r| FederationCtx {
            registry: r,
            quarantined: &quarantined,
        }),
    };
    let mut plan = plan.clone();

    // ---- round 1: composition and simplification ----------------------
    if options.compose_elimination {
        let rules: Vec<&dyn RewriteRule> = vec![&BindTreeElim, &SelectMerge, &SelectPushdown];
        plan = fixpoint(plan, &rules, &ctx, options.max_steps, 1, &mut trace);
        let before = plan.clone();
        plan = prune(
            &plan,
            interfaces,
            PruneOptions {
                use_type_info: options.use_type_info,
                assume_containment: options.assume_containment,
            },
        );
        if plan != before {
            trace.record(1, "prune", &before, &plan);
        }
        let rules: Vec<&dyn RewriteRule> = vec![&SelectMerge, &SelectPushdown];
        plan = fixpoint(plan, &rules, &ctx, options.max_steps, 1, &mut trace);
    }

    // ---- round 2: capability-based rewriting ---------------------------
    if options.capability_pushdown {
        let rules: Vec<&dyn RewriteRule> =
            vec![&CapabilitySplit, &ContainsIntroduction, &PushFragments];
        plan = fixpoint(plan, &rules, &ctx, options.max_steps, 2, &mut trace);
    }

    // ---- round 3: information passing ----------------------------------
    if options.info_passing {
        let rules: Vec<&dyn RewriteRule> = vec![&JoinToDJoin];
        plan = fixpoint(plan, &rules, &ctx, options.max_steps, 3, &mut trace);
    }

    // ---- round 4: federation routing -----------------------------------
    if options.capability_pushdown && registry.is_some_and(|r| !r.is_empty()) {
        let rules: Vec<&dyn RewriteRule> = vec![&FederateRoute];
        plan = fixpoint(plan, &rules, &ctx, options.max_steps, 4, &mut trace);
    }

    (plan, trace)
}

fn fixpoint(
    mut plan: Arc<Alg>,
    rules: &[&dyn RewriteRule],
    ctx: &RuleCtx<'_>,
    max_steps: usize,
    round: u8,
    trace: &mut Trace,
) -> Arc<Alg> {
    for _ in 0..max_steps {
        let mut fired = false;
        for rule in rules {
            if let Some(next) = apply_once(&plan, *rule, ctx) {
                trace.record(round, rule.name(), &plan, &next);
                plan = next;
                fired = true;
                break;
            }
        }
        if !fired {
            break;
        }
    }
    plan
}
