//! Plan execution: fetch mediator-side documents, ship `Push` fragments,
//! substitute information-passing values, evaluate the rest locally.
//!
//! Execution runs in one of two [`ExecMode`]s. `Sequential` performs
//! every round trip in plan order, one at a time. `Parallel` first
//! performs a *dependency analysis* over the plan: document prefetch
//! (grouped per source) and every independent `Push` fragment — one not
//! nested under the dependent side of a `DJoin`, whose
//! information-passing environment is therefore provably empty — become
//! scatter jobs dispatched concurrently over a bounded pool of
//! `std::thread::scope` worker lanes. The gather step assembles the
//! prefetched forest and a push-result cache, then local evaluation
//! proceeds exactly as in sequential mode, taking pushed results from
//! the cache instead of the wire. Dependent pushes (the `DJoin`
//! right-hand side, re-shipped once per left row with fresh bindings)
//! still go to the wire inline, so information passing is untouched.

use crate::compose::mediator_side_sources;
use crate::transport::Connection;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{mpsc, Arc};
use yat_algebra::eval::{eval_env, Env, EvalCtx, PushHandler};
use yat_algebra::{Alg, EvalError, EvalOut, FnRegistry, Operand, Pred, SkolemRegistry, Tab, Value};
use yat_cache::{AnswerCache, CachedAnswer, Signature};
use yat_capability::interface::Interface;
use yat_capability::protocol::{Request, Response};
use yat_federate::{GroupKind, PartialFailure, ProvLog, SourceRegistry};
use yat_model::{Forest, Node, Pattern, Tree};
use yat_obs::{attr, kind, Collector};

/// How the executor dispatches independent source work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One round trip at a time, in plan order.
    #[default]
    Sequential,
    /// Scatter/gather: independent fragments run concurrently on up to
    /// `max_in_flight` worker lanes.
    Parallel {
        /// Upper bound on concurrently running scatter jobs.
        max_in_flight: usize,
    },
}

impl ExecMode {
    /// Default lane bound of [`ExecMode::parallel`].
    pub const DEFAULT_LANES: usize = 8;

    /// Parallel mode with the default lane bound.
    pub fn parallel() -> Self {
        ExecMode::Parallel {
            max_in_flight: Self::DEFAULT_LANES,
        }
    }

    /// True for any `Parallel` variant.
    pub fn is_parallel(&self) -> bool {
        matches!(self, ExecMode::Parallel { .. })
    }

    /// The mode selected by the `YAT_EXEC_MODE` environment variable
    /// (`sequential`/`seq`, `parallel`/`par`, or `parallel:<lanes>`);
    /// sequential when unset. An *invalid* value also falls back to
    /// sequential, but loudly: a warning goes through [`yat_obs::warn`]
    /// naming the rejected value and the accepted syntax.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("YAT_EXEC_MODE").ok().as_deref())
    }

    /// [`ExecMode::from_env`] on an explicit value (`None` = unset) —
    /// split out so the warning path is testable without mutating the
    /// process environment.
    pub fn from_env_value(value: Option<&str>) -> Self {
        let Some(value) = value else {
            return ExecMode::default();
        };
        match Self::parse(value) {
            Some(mode) => mode,
            None => {
                yat_obs::warn(format!(
                    "YAT_EXEC_MODE=`{value}` is not a valid execution mode; accepted values \
                     are `sequential`/`seq`, `parallel`/`par`, or `parallel:<lanes>` — \
                     falling back to sequential"
                ));
                ExecMode::default()
            }
        }
    }

    /// Parses the `YAT_EXEC_MODE` syntax.
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim().to_ascii_lowercase();
        match text.as_str() {
            "sequential" | "seq" => Some(ExecMode::Sequential),
            "parallel" | "par" => Some(ExecMode::parallel()),
            _ => text
                .strip_prefix("parallel:")
                .and_then(|n| n.parse().ok())
                .filter(|&n| n > 0)
                .map(|n| ExecMode::Parallel { max_in_flight: n }),
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Sequential => write!(f, "sequential"),
            ExecMode::Parallel { max_in_flight } => write!(f, "parallel({max_in_flight})"),
        }
    }
}

/// Which engine evaluates the local (mediator-side) part of a plan.
///
/// Orthogonal to [`ExecMode`]: the mode decides how *source* work is
/// dispatched (sequential or scatter/gather), the engine decides how the
/// local algebra in between is evaluated. The interpreter is the
/// semantics oracle; the VM runs compiled programs and must match it
/// bit-for-bit (`tests/differential.rs` enforces this over hundreds of
/// seeded plans, on both axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// The recursive reference interpreter ([`yat_algebra::eval()`]).
    #[default]
    Interp,
    /// Compiled execution: plans are lowered once into flat stack
    /// programs ([`yat_algebra::compile()`]) and run batched
    /// ([`yat_algebra::vm::run`]).
    Vm,
}

impl ExecEngine {
    /// The engine selected by the `YAT_EXEC_ENGINE` environment variable
    /// (`interp`/`interpreter`, or `vm`/`compiled`); the interpreter
    /// when unset. An *invalid* value also falls back to the
    /// interpreter, but loudly: a warning goes through [`yat_obs::warn`]
    /// naming the rejected value and the accepted syntax.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("YAT_EXEC_ENGINE").ok().as_deref())
    }

    /// [`ExecEngine::from_env`] on an explicit value (`None` = unset) —
    /// split out so the warning path is testable without mutating the
    /// process environment.
    pub fn from_env_value(value: Option<&str>) -> Self {
        let Some(value) = value else {
            return ExecEngine::default();
        };
        match Self::parse(value) {
            Some(engine) => engine,
            None => {
                yat_obs::warn(format!(
                    "YAT_EXEC_ENGINE=`{value}` is not a valid execution engine; accepted \
                     values are `interp`/`interpreter` or `vm`/`compiled` — falling back \
                     to the interpreter"
                ));
                ExecEngine::default()
            }
        }
    }

    /// Parses the `YAT_EXEC_ENGINE` syntax.
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "interp" | "interpreter" => Some(ExecEngine::Interp),
            "vm" | "compiled" => Some(ExecEngine::Vm),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecEngine::Interp => write!(f, "interp"),
            ExecEngine::Vm => write!(f, "vm"),
        }
    }
}

/// How answers leave the mediator: one materialized value, or a stream
/// of row batches (`yat_algebra::stream`).
///
/// Orthogonal to both [`ExecMode`] and [`ExecEngine`]: the plan prefix
/// is still evaluated by the chosen engine under the chosen dispatch
/// mode; streaming changes only the *answer boundary* — the streamable
/// operator chain on top of the plan runs batch-at-a-time and each batch
/// is delivered as soon as it exists. The materialized path stays the
/// semantics oracle: concatenating the delivered batches must reproduce
/// it byte-for-byte (`tests/differential.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamPolicy {
    /// Materialize the whole answer before returning it (the default).
    #[default]
    Off,
    /// Deliver the answer as row batches.
    Chunked {
        /// Rows per delivered batch.
        batch_rows: usize,
        /// Upper bound on delivered-but-unconsumed batches a streaming
        /// consumer (the server's wire writer) may buffer before the
        /// producer blocks — the per-query memory budget.
        max_pending: usize,
    },
}

impl StreamPolicy {
    /// Default rows per batch — the VM's internal batching granularity.
    pub const DEFAULT_BATCH_ROWS: usize = yat_algebra::stream::DEFAULT_BATCH_ROWS;
    /// Default bound on buffered, unconsumed batches.
    pub const DEFAULT_MAX_PENDING: usize = 8;

    /// Chunked delivery with the default batch size and pending bound.
    pub fn chunked() -> Self {
        StreamPolicy::Chunked {
            batch_rows: Self::DEFAULT_BATCH_ROWS,
            max_pending: Self::DEFAULT_MAX_PENDING,
        }
    }

    /// True for any `Chunked` variant.
    pub fn is_chunked(&self) -> bool {
        matches!(self, StreamPolicy::Chunked { .. })
    }

    /// The policy selected by the `YAT_STREAM` environment variable
    /// (`off`, `chunked`, `chunked:<rows>`, or
    /// `chunked:<rows>:<pending>`); off when unset. An *invalid* value
    /// also falls back to off, but loudly: a warning goes through
    /// [`yat_obs::warn`] naming the rejected value and the accepted
    /// syntax.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("YAT_STREAM").ok().as_deref())
    }

    /// [`StreamPolicy::from_env`] on an explicit value (`None` = unset)
    /// — split out so the warning path is testable without mutating the
    /// process environment.
    pub fn from_env_value(value: Option<&str>) -> Self {
        let Some(value) = value else {
            return StreamPolicy::default();
        };
        match Self::parse(value) {
            Some(policy) => policy,
            None => {
                yat_obs::warn(format!(
                    "YAT_STREAM=`{value}` is not a valid stream policy; accepted values \
                     are `off`, `chunked`, `chunked:<rows>`, or `chunked:<rows>:<pending>` \
                     — falling back to off"
                ));
                StreamPolicy::default()
            }
        }
    }

    /// Parses the `YAT_STREAM` syntax.
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim().to_ascii_lowercase();
        match text.as_str() {
            "off" | "materialized" => return Some(StreamPolicy::Off),
            "chunked" | "on" => return Some(StreamPolicy::chunked()),
            _ => {}
        }
        let rest = text.strip_prefix("chunked:")?;
        let (rows, pending) = match rest.split_once(':') {
            Some((rows, pending)) => (rows, Some(pending)),
            None => (rest, None),
        };
        // a zero is clamped to 1 rather than rejected: the caller asked
        // for chunked delivery, and 1-row batches honor that while a
        // rejection would silently disable streaming altogether
        let clamp = |what: &str, n: usize| {
            if n == 0 {
                yat_obs::warn(format!(
                    "YAT_STREAM: `{what}` must be at least 1; clamping 0 to 1"
                ));
                1
            } else {
                n
            }
        };
        let batch_rows: usize = clamp("rows", rows.parse().ok()?);
        let max_pending = match pending {
            Some(p) => clamp("pending", p.parse().ok()?),
            None => Self::DEFAULT_MAX_PENDING,
        };
        Some(StreamPolicy::Chunked {
            batch_rows,
            max_pending,
        })
    }
}

impl std::fmt::Display for StreamPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamPolicy::Off => write!(f, "off"),
            StreamPolicy::Chunked {
                batch_rows,
                max_pending,
            } => write!(f, "chunked({batch_rows} rows, {max_pending} pending)"),
        }
    }
}

/// How scatter jobs are ordered onto worker lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Longest-expected-first: jobs are ordered by the registry's
    /// observed cost records (EWMA latency + bytes, discounted by cache
    /// hit rate) before lane assignment, so the most expensive round
    /// trips start earliest and the critical path shrinks. With no
    /// observations every job costs 0 and the order — and therefore the
    /// whole execution — is identical to `Static`.
    #[default]
    Cost,
    /// Plan order with static round-robin lanes — the pre-federation
    /// behavior, kept as the benchmark baseline.
    Static,
}

impl SchedPolicy {
    /// The policy selected by the `YAT_SCHED` environment variable
    /// (`cost` or `static`/`round-robin`); cost-ordered when unset. An
    /// invalid value falls back to cost-ordered, loudly via
    /// [`yat_obs::warn`].
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("YAT_SCHED").ok().as_deref())
    }

    /// [`SchedPolicy::from_env`] on an explicit value (`None` = unset).
    pub fn from_env_value(value: Option<&str>) -> Self {
        let Some(value) = value else {
            return SchedPolicy::default();
        };
        match Self::parse(value) {
            Some(policy) => policy,
            None => {
                yat_obs::warn(format!(
                    "YAT_SCHED=`{value}` is not a valid scheduling policy; accepted \
                     values are `cost` or `static`/`round-robin` — falling back to cost"
                ));
                SchedPolicy::default()
            }
        }
    }

    /// Parses the `YAT_SCHED` syntax.
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "cost" => Some(SchedPolicy::Cost),
            "static" | "round-robin" => Some(SchedPolicy::Static),
            _ => None,
        }
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedPolicy::Cost => write!(f, "cost"),
            SchedPolicy::Static => write!(f, "static"),
        }
    }
}

/// Everything one execution runs against: the connection/interface maps
/// and registries of the mediator, the selected mode/engine/policies,
/// and the optional observability and provenance collectors.
///
/// With an empty [`SourceRegistry`] and [`PartialFailure::Strict`] the
/// executor behaves exactly as before federation existed: every source
/// name resolves to its own connection and any failure fails the query.
pub struct ExecSpec<'a> {
    /// Connections by source (or member) name.
    pub connections: &'a BTreeMap<String, Connection>,
    /// Imported interfaces by source, member, and group name.
    pub interfaces: &'a BTreeMap<String, Interface>,
    /// External/compensation functions.
    pub funcs: &'a FnRegistry,
    /// The Skolem registry of the integrated view.
    pub skolems: &'a SkolemRegistry,
    /// Optional span collector (`EXPLAIN ANALYZE`).
    pub obs: Option<&'a Collector>,
    /// Source-work dispatch mode.
    pub mode: ExecMode,
    /// The cross-query answer cache.
    pub cache: &'a AnswerCache,
    /// Local evaluation engine.
    pub engine: ExecEngine,
    /// Pre-compiled program for the plan (VM engine only).
    pub program: Option<&'a yat_algebra::Program>,
    /// The federation registry (empty for plain mediators).
    pub registry: &'a SourceRegistry,
    /// What a per-source failure does to the query.
    pub partial: PartialFailure,
    /// How scatter jobs are ordered onto lanes.
    pub sched: SchedPolicy,
    /// Optional provenance accumulator (answered-by / missing-sources).
    pub prov: Option<&'a ProvLog>,
    /// Structural-index cache for mediator-local `Bind`s (`None` = scan;
    /// the mediator passes its cache only when its index policy is on).
    pub bind_index: Option<&'a yat_algebra::BindIndexCache>,
}

impl<'a> ExecSpec<'a> {
    /// The slice of the spec the fetch/push machinery carries around.
    fn fed(&self) -> FedCtx<'a> {
        FedCtx {
            connections: self.connections,
            registry: self.registry,
            cache: self.cache,
            partial: self.partial,
            prov: self.prov,
            obs: self.obs,
        }
    }
}

/// What source-side work (fetching, pushing, caching, failover) needs
/// from an [`ExecSpec`] — a `Copy` bundle shared between the executor
/// front half and the [`Pusher`] that lives on through local evaluation.
#[derive(Clone, Copy)]
struct FedCtx<'a> {
    connections: &'a BTreeMap<String, Connection>,
    registry: &'a SourceRegistry,
    cache: &'a AnswerCache,
    partial: PartialFailure,
    prov: Option<&'a ProvLog>,
    obs: Option<&'a Collector>,
}

impl<'a> FedCtx<'a> {
    fn touch(&self, source: &str) {
        if let Some(p) = self.prov {
            p.touch(source);
        }
    }

    fn miss(&self, source: &str, error: &str) {
        if let Some(p) = self.prov {
            p.miss(source, error);
        }
    }

    fn degrade(&self) -> bool {
        self.partial == PartialFailure::Degrade
    }

    /// The data epoch cached answers for `source` are validated against:
    /// a group's epoch is the sum of its members' epochs, so bumping any
    /// member retires group-keyed answers.
    fn epoch_of(&self, source: &str) -> u64 {
        if self.registry.is_group(source) {
            self.registry
                .members_of(source)
                .iter()
                .filter_map(|m| self.connections.get(&m.name))
                .map(|c| c.epoch())
                .sum()
        } else {
            self.connections.get(source).map(|c| c.epoch()).unwrap_or(0)
        }
    }

    /// Feeds a cache lookup outcome into the registry's cost records
    /// (only when the cache can actually serve answers).
    fn observe_cache(&self, source: &str, hit: bool) {
        if self.cache.policy().is_enabled() {
            self.registry.observe_cache(source, hit);
        }
    }
}

/// An execution failure.
#[derive(Debug)]
pub enum ExecError {
    /// The plan reads a document no connected source exports.
    UnknownSource(String),
    /// A wire-level failure.
    Wire(String),
    /// A wrapper refused or failed a pushed plan.
    Wrapper {
        /// Source id.
        source: String,
        /// Its message.
        message: String,
    },
    /// Local evaluation failed.
    Eval(EvalError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownSource(s) => write!(f, "no connected source provides `{s}`"),
            ExecError::Wire(m) => write!(f, "transport failure: {m}"),
            ExecError::Wrapper { source, message } => {
                write!(f, "wrapper `{source}` failed: {message}")
            }
            ExecError::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> Self {
        ExecError::Eval(e)
    }
}

/// Executes a plan against the connected wrappers.
///
/// Mediator-side `Source` reads fetch whole documents. Because fetched
/// data may hold references into a source's *other* documents (Fig. 1's
/// `owners refs="p1 p2 p3"`), every export of a touched source is
/// mirrored so references dereference — part of the naive strategy's
/// cost that pushdown avoids.
pub fn execute(
    plan: &Alg,
    connections: &BTreeMap<String, Connection>,
    interfaces: &BTreeMap<String, Interface>,
    funcs: &FnRegistry,
    skolems: &SkolemRegistry,
) -> Result<EvalOut, ExecError> {
    execute_traced(plan, connections, interfaces, funcs, skolems, None)
}

/// [`execute`] with an optional span collector. When present, document
/// prefetch runs under a `phase` span, every protocol round trip records
/// an `rpc` span, and local evaluation records one `operator` span per
/// operator execution — the raw material of `EXPLAIN ANALYZE`.
pub fn execute_traced(
    plan: &Alg,
    connections: &BTreeMap<String, Connection>,
    interfaces: &BTreeMap<String, Interface>,
    funcs: &FnRegistry,
    skolems: &SkolemRegistry,
    obs: Option<&Collector>,
) -> Result<EvalOut, ExecError> {
    let cache = AnswerCache::off();
    let registry = SourceRegistry::new();
    let spec = ExecSpec {
        connections,
        interfaces,
        funcs,
        skolems,
        obs,
        mode: ExecMode::Sequential,
        cache: &cache,
        engine: ExecEngine::Interp,
        program: None,
        registry: &registry,
        partial: PartialFailure::Strict,
        sched: SchedPolicy::Static,
        prov: None,
        bind_index: None,
    };
    execute_mode(plan, &spec)
}

/// [`execute_traced`] generalized over an [`ExecSpec`]: explicit
/// [`ExecMode`], answer cache, engine, federation registry, and
/// partial-failure policy. In `Parallel` mode the prefetch and every
/// independent push fragment run as scatter jobs under a `scatter` phase
/// span; each job span records the worker lane that executed it
/// (`attr::LANE`), and under [`SchedPolicy::Cost`] jobs are ordered
/// longest-expected-first using the registry's cost records.
///
/// When the cache is enabled, every unit of source work — a document
/// fetch or a pushed fragment, dependent ones included — is looked up
/// first (against the source's *live* epoch, so an epoch bump during a
/// long execution stops stale answers immediately) and inserted after a
/// fully successful round trip. In parallel mode lookups happen at
/// scheduling time: a hit removes the job from the lane schedule.
///
/// The local algebra between source round trips is evaluated by the
/// spec's engine; under [`ExecEngine::Vm`] a pre-compiled program (the
/// mediator's cross-query program cache) is used when supplied, or the
/// plan is compiled on the spot.
pub fn execute_mode(plan: &Alg, spec: &ExecSpec<'_>) -> Result<EvalOut, ExecError> {
    let (catalog, pusher) = prepare(plan, spec)?;
    let ctx = EvalCtx {
        catalog: &catalog,
        model: None,
        funcs: spec.funcs,
        skolems: spec.skolems,
        push: Some(&pusher),
        obs: spec.obs,
        bind_index: spec.bind_index,
    };
    let env = Env::new();
    run_engine(plan, spec.engine, spec.program, &ctx, &env).map_err(ExecError::from)
}

/// [`execute_mode`] with a streamed answer boundary: `prefix` (the plan
/// below its streamable top chain, see [`yat_algebra::stream::split`])
/// is fetched-for and evaluated exactly as `execute_mode` would, then
/// its result is cut into `batch_rows`-row batches, run through
/// `stages`, and delivered to `sink` one batch at a time.
///
/// The supplied `program`, if any, must be compiled for **`prefix`**,
/// not the full plan — the mediator's program cache is keyed
/// accordingly. Source work is identical to the materialized path
/// (stages contain no `Source` or `Push` nodes by construction), which
/// is what makes the equal-traffic differential assertion meaningful.
///
/// Delivery runs under a `stream` span recording `batch_rows` and, on
/// success, the chunk and row counts.
pub fn execute_stream_mode(
    prefix: &Alg,
    stages: &[yat_algebra::stream::Stage],
    spec: &ExecSpec<'_>,
    batch_rows: usize,
    sink: &mut dyn yat_algebra::stream::BatchSink,
) -> Result<yat_algebra::stream::DeliveryStats, ExecError> {
    let (catalog, pusher) = prepare(prefix, spec)?;
    let ctx = EvalCtx {
        catalog: &catalog,
        model: None,
        funcs: spec.funcs,
        skolems: spec.skolems,
        push: Some(&pusher),
        obs: spec.obs,
        bind_index: spec.bind_index,
    };
    let env = Env::new();
    let prefix_out = run_engine(prefix, spec.engine, spec.program, &ctx, &env)?;
    let obs = spec.obs;
    let mut span = obs.map(|o| {
        let mut s = o.span(kind::STREAM, "stream answer".to_string());
        s.record_u64(attr::BATCH_ROWS, batch_rows as u64);
        s
    });
    let stats = yat_algebra::stream::deliver(prefix_out, stages, batch_rows, &ctx, &env, sink);
    match &stats {
        Ok(stats) => {
            if let Some(s) = span.as_mut() {
                s.record_u64(attr::CHUNKS, stats.chunks);
                s.record_u64(attr::ROWS_OUT, stats.rows);
            }
        }
        Err(e) => {
            if let Some(s) = span.as_mut() {
                s.record_str(attr::ERROR, e.to_string());
            }
        }
    }
    Ok(stats?)
}

/// The shared front half of execution: dependency analysis, document
/// prefetch (sequential or scatter/gather), and construction of the
/// catalog + push handler local evaluation runs against.
fn prepare<'a>(plan: &Alg, spec: &ExecSpec<'a>) -> Result<(RemoteCatalog, Pusher<'a>), ExecError> {
    // insertion order drives fetch order (plan-referenced documents
    // first); the set makes the reference-closure membership test O(log n)
    // instead of a linear rescan of everything fetched so far
    let mut wanted: Vec<(String, String)> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (source, name) in mediator_side_sources(plan) {
        let Some(src) = source else {
            return Err(ExecError::UnknownSource(name));
        };
        if seen.insert((src.clone(), name.clone())) {
            wanted.push((src.clone(), name));
        }
        // reference closure: all other exports of the same source
        if let Some(iface) = spec.interfaces.get(&src) {
            for export in &iface.exports {
                let key = (src.clone(), export.name.clone());
                if seen.insert(key.clone()) {
                    wanted.push(key);
                }
            }
        }
    }

    let fed = spec.fed();
    let (forest, by_member, pushed) = match spec.mode {
        ExecMode::Sequential => {
            let (forest, by_member) = fetch_sequential(&wanted, &fed)?;
            (forest, by_member, BTreeMap::new())
        }
        ExecMode::Parallel { max_in_flight } => {
            scatter_gather(&wanted, plan, &fed, max_in_flight, spec.sched)?
        }
    };

    Ok((RemoteCatalog { forest, by_member }, Pusher { fed, pushed }))
}

/// Evaluates `plan` with the chosen engine: the interpreter directly, or
/// the VM on a pre-compiled `program` (compiling on the spot when the
/// caller has none).
fn run_engine(
    plan: &Alg,
    engine: ExecEngine,
    program: Option<&yat_algebra::Program>,
    ctx: &EvalCtx<'_>,
    env: &Env,
) -> Result<EvalOut, EvalError> {
    match engine {
        ExecEngine::Interp => eval_env(plan, ctx, env),
        ExecEngine::Vm => {
            let compiled;
            let program = match program {
                Some(p) => p,
                None => {
                    compiled = yat_algebra::compile(plan);
                    &compiled
                }
            };
            yat_algebra::vm::run(program, ctx, env)
        }
    }
}

/// Documents fetched for a specific member (a plan requalified to read
/// one shard mediator-side), keyed member → document name.
type MemberDocs = BTreeMap<String, BTreeMap<String, Tree>>;

/// One resolved document fetch: `member` is set when the read was
/// qualified to a single federation member and must not be served to
/// reads of other members.
struct FetchedDoc {
    member: Option<String>,
    name: String,
    tree: Tree,
}

fn insert_doc(forest: &mut Forest, by_member: &mut MemberDocs, doc: FetchedDoc) {
    match doc.member {
        Some(member) => {
            by_member
                .entry(member)
                .or_default()
                .insert(doc.name, doc.tree);
        }
        None => forest.insert(doc.name, doc.tree),
    }
}

/// `Some(src)` when `src` names a registered federation member (its
/// documents are then member-scoped rather than shared by name).
fn member_key(fed: &FedCtx<'_>, src: &str) -> Option<String> {
    fed.registry.member(src).is_some().then(|| src.to_string())
}

/// The sequential prefetch loop: one `get-document` round trip at a
/// time, in `wanted` order, under a single `prefetch documents` span.
/// Each document is looked up in the answer cache first (against the
/// source's live epoch) and only fetched on a miss; group sources do
/// their cache resolution per member inside [`fetch_batch`].
fn fetch_sequential(
    wanted: &[(String, String)],
    fed: &FedCtx<'_>,
) -> Result<(Forest, MemberDocs), ExecError> {
    let prefetch = fed
        .obs
        .map(|o| o.span(kind::PHASE, "prefetch documents".to_string()));
    let mut forest = Forest::new();
    let mut by_member = MemberDocs::new();
    for (src, name) in wanted {
        if !fed.registry.is_group(src) {
            if let Some(tree) = cached_document(src, name, fed) {
                let member = member_key(fed, src);
                insert_doc(
                    &mut forest,
                    &mut by_member,
                    FetchedDoc {
                        member,
                        name: name.clone(),
                        tree,
                    },
                );
                continue;
            }
        }
        for doc in fetch_batch(src, std::slice::from_ref(name), fed)? {
            insert_doc(&mut forest, &mut by_member, doc);
        }
    }
    drop(prefetch);
    Ok((forest, by_member))
}

/// Cache lookup for one document of a plain source or member, keyed by
/// its canonical signature and validated against the source's *live*
/// epoch. A hit counts as a contribution (provenance) and feeds the
/// member's cost record.
fn cached_document(src: &str, name: &str, fed: &FedCtx<'_>) -> Option<Tree> {
    let conn = fed.connections.get(src)?;
    match fed
        .cache
        .lookup(Signature::document(src, name), src, conn.epoch(), fed.obs)
    {
        Some(CachedAnswer::Document { tree, .. }) => {
            fed.touch(src);
            fed.observe_cache(src, true);
            Some(tree)
        }
        _ => None,
    }
}

/// Whether an error is a *source* failure a degraded answer may absorb.
/// An unknown source is a plan/configuration bug and stays fatal under
/// every partial-failure policy.
fn degradable(e: &ExecError) -> bool {
    matches!(e, ExecError::Wire(_) | ExecError::Wrapper { .. })
}

/// Resolves a batch of document fetches against one source name, in
/// order: a replica group fails over to the cheapest live copy, a
/// partition group unites its shards' contributions, a member or plain
/// source is fetched directly. Under [`PartialFailure::Degrade`] a
/// failed contribution becomes an empty document recorded as missing.
fn fetch_batch(
    src: &str,
    names: &[String],
    fed: &FedCtx<'_>,
) -> Result<Vec<FetchedDoc>, ExecError> {
    let mut docs = Vec::with_capacity(names.len());
    for name in names {
        let tree = match fed.registry.group_kind(src) {
            Some(GroupKind::Replicated) => replica_fetch(src, name, fed)?,
            Some(GroupKind::Partitioned) => partition_fetch(src, name, fed)?,
            None => match wire_fetch(src, name, fed) {
                Ok(tree) => tree,
                Err(e) if fed.degrade() && degradable(&e) => {
                    fed.miss(src, &e.to_string());
                    Node::sym(name.as_str(), vec![])
                }
                Err(e) => return Err(e),
            },
        };
        docs.push(FetchedDoc {
            member: member_key(fed, src),
            name: name.clone(),
            tree,
        });
    }
    Ok(docs)
}

/// Fetches one document of `src` over the wire. The fully received
/// document is inserted into the answer cache, tagged with the source
/// epoch read *before* the round trip — data that changes mid-flight
/// lands under the old epoch, which the next bump retires.
fn wire_fetch(src: &str, name: &str, fed: &FedCtx<'_>) -> Result<Tree, ExecError> {
    let conn = fed
        .connections
        .get(src)
        .ok_or_else(|| ExecError::UnknownSource(format!("{name}@{src}")))?;
    fed.observe_cache(src, false);
    let epoch = conn.epoch();
    let response = conn
        .call_traced(
            &Request::GetDocument {
                name: name.to_string(),
            },
            fed.obs,
        )
        .map_err(|e| ExecError::Wire(format!("fetching `{name}` from `{src}`: {e}")))?;
    match response {
        Response::Document { tree, .. } => {
            fed.cache.insert(
                Signature::document(src, name),
                src,
                epoch,
                CachedAnswer::Document {
                    name: name.to_string(),
                    tree: tree.clone(),
                },
                fed.obs,
            );
            fed.touch(src);
            Ok(tree)
        }
        Response::Error(m) => Err(ExecError::Wrapper {
            source: src.to_string(),
            message: m,
        }),
        other => Err(ExecError::Wire(format!("unexpected response {other:?}"))),
    }
}

/// Fetches one document of a replica group: any member's cached copy
/// serves (replicas are interchangeable), then the wire in cost order
/// with failover — losing k of N replicas is lossless as long as one
/// still answers, so failover alone never degrades the answer. Only when
/// *every* replica fails does `Degrade` substitute an empty document.
fn replica_fetch(group: &str, name: &str, fed: &FedCtx<'_>) -> Result<Tree, ExecError> {
    for m in fed.registry.members_of(group) {
        if let Some(tree) = cached_document(&m.name, name, fed) {
            return Ok(tree);
        }
    }
    let mut failures: Vec<(String, ExecError)> = Vec::new();
    for member in fed.registry.replicas_in_cost_order(group, false) {
        match wire_fetch(&member, name, fed) {
            Ok(tree) => return Ok(tree),
            Err(e) if degradable(&e) => failures.push((member, e)),
            Err(e) => return Err(e),
        }
    }
    if fed.degrade() && !failures.is_empty() {
        for (member, e) in &failures {
            fed.miss(member, &e.to_string());
        }
        return Ok(Node::sym(name, vec![]));
    }
    match failures.into_iter().next() {
        Some((_, e)) => Err(e),
        None => Err(ExecError::UnknownSource(format!("{name}@{group}"))),
    }
}

/// Fetches one document of a partition group: every shard contributes
/// its copy (cache first, then wire) and the shards' top-level entries
/// unite under one root, in member name order. Under
/// [`PartialFailure::Degrade`] a failing shard is skipped and recorded
/// as missing; under `Strict` it fails the query.
fn partition_fetch(group: &str, name: &str, fed: &FedCtx<'_>) -> Result<Tree, ExecError> {
    let mut root: Option<Tree> = None;
    let mut children: Vec<Tree> = Vec::new();
    for m in fed.registry.members_of(group) {
        let fetched = match cached_document(&m.name, name, fed) {
            Some(tree) => Ok(tree),
            None => wire_fetch(&m.name, name, fed),
        };
        match fetched {
            Ok(tree) => {
                children.extend(tree.children.iter().cloned());
                root.get_or_insert(tree);
            }
            Err(e) if fed.degrade() && degradable(&e) => fed.miss(&m.name, &e.to_string()),
            Err(e) => return Err(e),
        }
    }
    Ok(match root {
        Some(r) => Node::labeled(r.label.clone(), children),
        None => Node::sym(name, vec![]),
    })
}

/// One unit of independent source work, runnable on any worker lane.
enum Job {
    /// All document prefetches against one source, in plan order.
    Fetch {
        /// The source to fetch from.
        source: String,
        /// Document names, in the order the sequential path would fetch.
        names: Vec<String>,
    },
    /// An independent `Push` fragment (empty information-passing env).
    Push {
        /// The source the fragment is delegated to.
        source: String,
        /// The `Alg::Push` node's inner plan.
        plan: Arc<Alg>,
        /// The fragment's canonical signature — the memo key its result
        /// is gathered under, and the answer-cache key it is stored at.
        sig: Signature,
    },
}

impl Job {
    fn label(&self) -> String {
        match self {
            Job::Fetch { source, .. } => format!("fetch @{source}"),
            Job::Push { source, .. } => format!("push @{source}"),
        }
    }
}

/// What a completed job hands back to the gather step.
enum JobOut {
    Docs(Vec<FetchedDoc>),
    Pushed {
        /// Memo key: the fragment's canonical signature.
        sig: Signature,
        tab: Tab,
    },
}

/// Collects the plan's *independent* push fragments: `Push` nodes not
/// nested under the dependent (right) side of a `DJoin`. Those are
/// evaluated with an empty environment exactly once, so shipping them
/// early from a worker lane is indistinguishable from the sequential
/// order. Dependent pushes get per-row bindings and stay inline.
fn independent_pushes<'p>(plan: &'p Alg, out: &mut Vec<(String, &'p Arc<Alg>)>) {
    match plan {
        Alg::Push { source, plan } => out.push((source.clone(), plan)),
        Alg::DJoin { left, .. } => independent_pushes(left, out),
        _ => {
            for child in plan.children() {
                independent_pushes(child, out);
            }
        }
    }
}

/// The parallel front half of execution: build the job list, scatter it
/// over at most `max_in_flight` worker lanes, gather the prefetched
/// forest and the push-result cache.
///
/// Lane assignment is static round-robin over the *schedule* (lane `l`
/// runs schedule positions `l`, `l + lanes`, `l + 2·lanes`, …), so which
/// lane executes which job — and therefore the recorded span tree — is
/// deterministic. Under [`SchedPolicy::Cost`] the schedule orders jobs
/// longest-expected-first from the registry's cost records (plan order
/// with no history); under [`SchedPolicy::Static`] it *is* plan order.
/// Errors are reported in plan-job order either way: whichever job
/// earliest in the plan failed wins, matching what the sequential path
/// would have surfaced first.
fn scatter_gather(
    wanted: &[(String, String)],
    plan: &Alg,
    fed: &FedCtx<'_>,
    max_in_flight: usize,
    sched: SchedPolicy,
) -> Result<(Forest, MemberDocs, BTreeMap<Signature, Tab>), ExecError> {
    // answer-cache hits are resolved at scheduling time and never enter
    // the lane schedule at all
    let mut forest = Forest::new();
    let mut by_member = MemberDocs::new();
    let mut pushed: BTreeMap<Signature, Tab> = BTreeMap::new();

    let mut jobs: Vec<Job> = Vec::new();
    // group the prefetch per source, preserving first-appearance order
    for (src, name) in wanted {
        // group fetches resolve their caching per member inside the job
        if !fed.registry.is_group(src) {
            if let Some(tree) = cached_document(src, name, fed) {
                let member = member_key(fed, src);
                insert_doc(
                    &mut forest,
                    &mut by_member,
                    FetchedDoc {
                        member,
                        name: name.clone(),
                        tree,
                    },
                );
                continue;
            }
        }
        match jobs.iter_mut().find_map(|j| match j {
            Job::Fetch { source, names } if source == src => Some(names),
            _ => None,
        }) {
            Some(names) => names.push(name.clone()),
            None => jobs.push(Job::Fetch {
                source: src.clone(),
                names: vec![name.clone()],
            }),
        }
    }
    let mut pushes = Vec::new();
    independent_pushes(plan, &mut pushes);
    let mut seen_nodes = BTreeSet::new();
    for (source, inner) in pushes {
        // the same shared fragment node is shipped (and cached) once
        if !seen_nodes.insert(Arc::as_ptr(inner) as usize) {
            continue;
        }
        let sig = Signature::execute(&source, inner);
        match fed
            .cache
            .lookup(sig, &source, fed.epoch_of(&source), fed.obs)
        {
            Some(CachedAnswer::Result(tab)) => {
                fed.touch(&source);
                fed.observe_cache(&source, true);
                pushed.insert(sig, tab);
                continue;
            }
            _ => fed.observe_cache(&source, false),
        }
        jobs.push(Job::Push {
            source,
            plan: inner.clone(),
            sig,
        });
    }

    if jobs.is_empty() {
        return Ok((forest, by_member, pushed));
    }

    // cost-ordered scheduling: start the longest-expected jobs first so
    // the critical path shrinks (classic LPT). Ties — and the whole
    // schedule when no cost history exists — stay in plan order, which
    // makes a cold `Cost` schedule identical to `Static`.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    if sched == SchedPolicy::Cost {
        let expected = |job: &Job| match job {
            Job::Fetch { source, names } => {
                fed.registry.cost(source).expected_cost() * names.len() as f64
            }
            Job::Push { source, .. } => fed.registry.cost(source).expected_cost(),
        };
        let costs: Vec<f64> = jobs.iter().map(expected).collect();
        order.sort_by(|&a, &b| {
            costs[b]
                .partial_cmp(&costs[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
    }

    let mut scatter = fed.obs.map(|o| o.span(kind::PHASE, "scatter".to_string()));
    let scatter_id = scatter.as_ref().map(|s| s.id());
    let lanes = max_in_flight.max(1).min(jobs.len());

    // Bounded gather: lanes hand finished results to the calling thread
    // through a channel whose capacity equals the lane count, so at most
    // `lanes` completed-but-unconsumed results ever sit in memory — a
    // lane that races ahead of the gatherer blocks in `send` instead of
    // buffering unbounded output. The gather folds each result into the
    // forest / push cache as it arrives (both are key-addressed, so
    // arrival order does not matter), tracking channel occupancy so the
    // bound is *observable*, not just structural.
    let (tx, rx) = mpsc::sync_channel::<(usize, Result<JobOut, ExecError>)>(lanes);
    let pending = AtomicI64::new(0);
    let peak = AtomicI64::new(0);
    // errors are reported in job order — whichever job *earliest in the
    // plan* failed wins, matching the sequential path — so the gather
    // drains everything rather than bailing on the first arrival
    let mut first_err: Option<(usize, ExecError)> = None;
    std::thread::scope(|scope| {
        for lane in 0..lanes {
            let (jobs, order) = (&jobs, &order);
            let tx = tx.clone();
            let (pending, peak) = (&pending, &peak);
            let fed = *fed;
            scope.spawn(move || {
                let mut pos = lane;
                while pos < order.len() {
                    let idx = order[pos];
                    let out = run_job(&jobs[idx], lane, &fed, scatter_id);
                    if tx.send((idx, out)).is_err() {
                        return;
                    }
                    // counted after the buffered send and decremented
                    // after receipt, so the gauge never exceeds the
                    // channel capacity; a gather that drains the item
                    // before this add lands can make the sum read 0,
                    // but the send itself proves occupancy reached 1
                    let now = (pending.fetch_add(1, Ordering::SeqCst) + 1).max(1);
                    peak.fetch_max(now, Ordering::SeqCst);
                    pos += lanes;
                }
            });
        }
        drop(tx);
        while let Ok((idx, out)) = rx.recv() {
            pending.fetch_sub(1, Ordering::SeqCst);
            match out {
                Ok(JobOut::Docs(docs)) => {
                    for doc in docs {
                        insert_doc(&mut forest, &mut by_member, doc);
                    }
                }
                Ok(JobOut::Pushed { sig, tab }) => {
                    pushed.insert(sig, tab);
                }
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(first, _)| idx < *first) {
                        first_err = Some((idx, e));
                    }
                }
            }
        }
    });
    if let Some(s) = scatter.as_mut() {
        s.record_u64(
            attr::PEAK_PENDING,
            peak.load(Ordering::SeqCst).max(0) as u64,
        );
    }
    drop(scatter);

    if let Some((_, e)) = first_err {
        return Err(e);
    }
    Ok((forest, by_member, pushed))
}

/// Runs one scatter job on worker lane `lane`, under its own `phase`
/// span (a child of the scatter span, tagged with the lane index).
fn run_job(
    job: &Job,
    lane: usize,
    fed: &FedCtx<'_>,
    scatter_id: Option<usize>,
) -> Result<JobOut, ExecError> {
    let mut span = fed.obs.map(|o| {
        let mut s = o.span_under(scatter_id, kind::PHASE, job.label());
        s.record_u64(attr::LANE, lane as u64);
        s
    });
    let out = match job {
        Job::Fetch { source, names } => fetch_batch(source, names, fed).map(JobOut::Docs),
        Job::Push { source, plan, sig } => {
            let epoch = fed.epoch_of(source);
            push_resolved(source, plan, fed)
                .map(|(tab, complete)| {
                    // a degraded (incomplete) result must never be served
                    // to later queries as if it were the real answer
                    if complete {
                        fed.cache.insert(
                            *sig,
                            source,
                            epoch,
                            CachedAnswer::Result(tab.clone()),
                            fed.obs,
                        );
                    }
                    JobOut::Pushed { sig: *sig, tab }
                })
                .map_err(|e| match e {
                    EvalError::Function { name, message } => ExecError::Wrapper {
                        source: name,
                        message,
                    },
                    other => ExecError::Eval(other),
                })
        }
    };
    if let (Some(span), Err(e)) = (span.as_mut(), &out) {
        span.record_str(attr::ERROR, e.to_string());
    }
    out
}

/// Ships one already-substituted fragment to the source it names,
/// resolving federation groups: a replica group fails over across its
/// executing members in cost order, a partition group fans out to every
/// member and unites the results (the algebra's `Union` semantics).
/// Returns the table and whether it is *complete* — an answer missing a
/// degraded member's contribution must not enter the cross-query cache.
fn push_resolved(
    source: &str,
    plan: &Arc<Alg>,
    fed: &FedCtx<'_>,
) -> Result<(Tab, bool), EvalError> {
    match fed.registry.group_kind(source) {
        None => match push_fragment(source, plan, fed) {
            Ok(tab) => Ok((tab, true)),
            Err(e) if fed.degrade() && !matches!(e, EvalError::UnknownSource { .. }) => {
                match plan.out_vars() {
                    Some(cols) => {
                        fed.miss(source, &e.to_string());
                        Ok((Tab::new(cols), false))
                    }
                    None => Err(e),
                }
            }
            Err(e) => Err(e),
        },
        Some(GroupKind::Replicated) => {
            let members = fed.registry.replicas_in_cost_order(source, true);
            if members.is_empty() {
                return Err(EvalError::Function {
                    name: source.to_string(),
                    message: "no executable replica in group".into(),
                });
            }
            let mut first_err: Option<EvalError> = None;
            let mut failed: Vec<(String, String)> = Vec::new();
            for member in members {
                match push_fragment(&member, plan, fed) {
                    Ok(tab) => return Ok((tab, true)),
                    Err(e) => {
                        failed.push((member, e.to_string()));
                        first_err.get_or_insert(e);
                    }
                }
            }
            if fed.degrade() {
                if let Some(cols) = plan.out_vars() {
                    for (member, e) in &failed {
                        fed.miss(member, e);
                    }
                    return Ok((Tab::new(cols), false));
                }
            }
            Err(first_err.expect("replica list was non-empty"))
        }
        Some(GroupKind::Partitioned) => {
            let mut merged: Option<Tab> = None;
            let mut parts = 0usize;
            let mut complete = true;
            for m in fed.registry.members_of(source) {
                match push_fragment(&m.name, plan, fed) {
                    Ok(tab) => {
                        parts += 1;
                        match merged.as_mut() {
                            None => merged = Some(tab),
                            Some(acc) => merge_union(acc, &tab, source)?,
                        }
                    }
                    Err(e) if fed.degrade() && !matches!(e, EvalError::UnknownSource { .. }) => {
                        fed.miss(&m.name, &e.to_string());
                        complete = false;
                    }
                    Err(e) => return Err(e),
                }
            }
            match merged {
                Some(mut tab) => {
                    // set semantics across shards, like the algebra's
                    // Union; a single contribution is already a set
                    if parts > 1 {
                        tab.dedup();
                    }
                    Ok((tab, complete))
                }
                None => match plan.out_vars() {
                    Some(cols) => Ok((Tab::new(cols), complete)),
                    None => Err(EvalError::Function {
                        name: source.to_string(),
                        message: "no partition member answered".into(),
                    }),
                },
            }
        }
    }
}

/// Unites two partition contributions: columns must agree, rows
/// concatenate (the caller dedups once at the end).
fn merge_union(acc: &mut Tab, tab: &Tab, group: &str) -> Result<(), EvalError> {
    if acc.columns() != tab.columns() {
        return Err(EvalError::Function {
            name: group.to_string(),
            message: format!(
                "partition members returned incompatible columns {:?} vs {:?}",
                acc.columns(),
                tab.columns()
            ),
        });
    }
    for row in tab.rows() {
        acc.push(row.to_vec());
    }
    Ok(())
}

/// Ships one already-substituted fragment to one concrete wrapper.
fn push_fragment(source: &str, plan: &Arc<Alg>, fed: &FedCtx<'_>) -> Result<Tab, EvalError> {
    let conn = fed
        .connections
        .get(source)
        .ok_or_else(|| EvalError::UnknownSource {
            source: Some(source.to_string()),
            name: "<push>".into(),
        })?;
    let response = conn
        .call_traced(&Request::Execute { plan: plan.clone() }, fed.obs)
        .map_err(|e| EvalError::Function {
            name: source.to_string(),
            message: e.to_string(),
        })?;
    match response {
        Response::Result(tab) => {
            fed.touch(source);
            Ok(tab)
        }
        Response::Error(m) => Err(EvalError::Function {
            name: source.to_string(),
            message: m,
        }),
        other => Err(EvalError::Function {
            name: source.to_string(),
            message: format!("unexpected response {other:?}"),
        }),
    }
}

/// Documents fetched for this execution: a shared forest addressed by
/// name (exported names are globally unique in a YAT federation, as in
/// the paper's example), plus member-scoped documents for plans
/// requalified to read one federation member — checked first so a member
/// read never sees another shard's data.
struct RemoteCatalog {
    forest: Forest,
    by_member: MemberDocs,
}

impl yat_algebra::SourceCatalog for RemoteCatalog {
    fn document(&self, source: Option<&str>, name: &str) -> Option<Tree> {
        if let Some(src) = source {
            if let Some(tree) = self.by_member.get(src).and_then(|docs| docs.get(name)) {
                return Some(tree.clone());
            }
        }
        self.forest.get(name).cloned()
    }

    fn deref_forest(&self) -> Option<&Forest> {
        Some(&self.forest)
    }
}

struct Pusher<'a> {
    fed: FedCtx<'a>,
    /// Results of independent fragments already shipped by the scatter
    /// step, keyed by the fragment's canonical [`Signature`] — the same
    /// scheme the cross-query cache uses, so one canonicalization serves
    /// both layers. Empty in sequential mode.
    pushed: BTreeMap<Signature, Tab>,
}

impl<'a> PushHandler for Pusher<'a> {
    fn execute_push(
        &self,
        source: &str,
        plan: &Alg,
        env: &BTreeMap<String, Value>,
    ) -> Result<Tab, EvalError> {
        let fed = &self.fed;
        // information passing first: bindings inline as constants, so the
        // shipped form (which the signature hashes) carries their values
        let plan = substitute_env(&Arc::new(plan.clone()), env);
        // signatures cost a serialization — skip when no consumer exists
        let sig = (fed.cache.policy().is_enabled() || !self.pushed.is_empty())
            .then(|| Signature::execute(source, &plan));
        if let Some(sig) = sig {
            // an independent fragment (no information passing) may
            // already have been shipped by a scatter lane
            if env.is_empty() {
                if let Some(tab) = self.pushed.get(&sig) {
                    return Ok(tab.clone());
                }
            }
            // then the cross-query cache, against the live epoch (a
            // group's epoch aggregates over its members)
            match fed.cache.lookup(sig, source, fed.epoch_of(source), fed.obs) {
                Some(CachedAnswer::Result(tab)) => {
                    fed.touch(source);
                    fed.observe_cache(source, true);
                    return Ok(tab);
                }
                _ => fed.observe_cache(source, false),
            }
        }
        let epoch = fed.epoch_of(source);
        let (tab, complete) = push_resolved(source, &plan, fed)?;
        if complete {
            if let Some(sig) = sig {
                fed.cache.insert(
                    sig,
                    source,
                    epoch,
                    CachedAnswer::Result(tab.clone()),
                    fed.obs,
                );
            }
        }
        Ok(tab)
    }
}

/// Information passing (Section 5.3): outer bindings referenced by the
/// pushed plan become constants before shipping — "values of variables
/// passed from the left-hand side to the right-hand side".
pub fn substitute_env(plan: &Arc<Alg>, env: &BTreeMap<String, Value>) -> Arc<Alg> {
    if env.is_empty() {
        return plan.clone();
    }
    match plan.as_ref() {
        Alg::Select { input, pred } => {
            let produced = input.out_vars().unwrap_or_default();
            let pred = subst_pred(pred, env, &produced);
            Alg::select(substitute_env(input, env), pred)
        }
        Alg::Join { left, right, pred } => {
            let mut produced = left.out_vars().unwrap_or_default();
            produced.extend(right.out_vars().unwrap_or_default());
            let pred = subst_pred(pred, env, &produced);
            Alg::join(substitute_env(left, env), substitute_env(right, env), pred)
        }
        Alg::Bind {
            input,
            filter,
            over,
        } => {
            // a filter variable bound in the environment becomes an
            // inline constant — the O2 wrapper then emits `where title =
            // "…"` (Fig. 9's nested-loop information passing)
            let filter = subst_filter(filter, env);
            let input = substitute_env(input, env);
            match over {
                Some(col) => Alg::bind_over(input, col.clone(), filter),
                None => Alg::bind(input, filter),
            }
        }
        Alg::Map { input, col, expr } => {
            let produced = input.out_vars().unwrap_or_default();
            Arc::new(Alg::Map {
                input: substitute_env(input, env),
                col: col.clone(),
                expr: subst_operand(expr, env, &produced),
            })
        }
        _ => {
            let kids = plan
                .children()
                .into_iter()
                .map(|c| substitute_env(c, env))
                .collect();
            Arc::new(plan.with_children(kids))
        }
    }
}

fn subst_pred(pred: &Pred, env: &BTreeMap<String, Value>, produced: &[String]) -> Pred {
    match pred {
        Pred::True => Pred::True,
        Pred::And(a, b) => Pred::And(
            Box::new(subst_pred(a, env, produced)),
            Box::new(subst_pred(b, env, produced)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(subst_pred(a, env, produced)),
            Box::new(subst_pred(b, env, produced)),
        ),
        Pred::Not(p) => Pred::Not(Box::new(subst_pred(p, env, produced))),
        Pred::Cmp { op, left, right } => Pred::Cmp {
            op: *op,
            left: subst_operand(left, env, produced),
            right: subst_operand(right, env, produced),
        },
        Pred::Call { name, args } => Pred::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| subst_operand(a, env, produced))
                .collect(),
        },
    }
}

fn subst_operand(o: &Operand, env: &BTreeMap<String, Value>, produced: &[String]) -> Operand {
    match o {
        Operand::Var(v) if !produced.contains(v) => match env.get(v).and_then(Value::atom) {
            Some(a) => Operand::Const(a),
            None => o.clone(),
        },
        Operand::Call { name, args } => Operand::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| subst_operand(a, env, produced))
                .collect(),
        },
        _ => o.clone(),
    }
}

fn subst_filter(filter: &Pattern, env: &BTreeMap<String, Value>) -> Pattern {
    match filter {
        Pattern::TreeVar(v) => match env.get(v).and_then(Value::atom) {
            Some(a) => Pattern::constant(a),
            None => filter.clone(),
        },
        Pattern::Node { label, edges } => Pattern::Node {
            label: label.clone(),
            edges: edges
                .iter()
                .map(|e| yat_model::Edge {
                    occ: e.occ,
                    star_var: e.star_var.clone(),
                    pattern: subst_filter(&e.pattern, env),
                })
                .collect(),
        },
        Pattern::Union(bs) => Pattern::Union(bs.iter().map(|b| subst_filter(b, env)).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yat_algebra::CmpOp;
    use yat_model::Atom;
    use yat_yatl::parse_filter;

    fn env(pairs: &[(&str, Atom)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Atom(v.clone())))
            .collect()
    }

    #[test]
    fn predicates_substitute_free_vars_only() {
        let plan = Alg::select(
            Alg::bind(
                Alg::source("artifacts"),
                parse_filter("set *class: artifact: tuple [ title: $t2 ]").unwrap(),
            ),
            Pred::cmp(CmpOp::Eq, Operand::var("t2"), Operand::var("t")),
        );
        let out = substitute_env(&plan, &env(&[("t", Atom::Str("Nympheas".into()))]));
        let Alg::Select { pred, .. } = out.as_ref() else {
            panic!()
        };
        // $t2 is produced inside, $t came from the environment
        assert_eq!(pred.to_string(), "$t2 = \"Nympheas\"");
    }

    #[test]
    fn filters_substitute_shared_vars() {
        let plan = Alg::bind(
            Alg::source("artifacts"),
            parse_filter("set *class: artifact: tuple [ title: $t ]").unwrap(),
        );
        let out = substitute_env(&plan, &env(&[("t", Atom::Str("X".into()))]));
        let Alg::Bind { filter, .. } = out.as_ref() else {
            panic!()
        };
        assert!(filter.to_string().contains("title[\"X\"]"), "{filter}");
    }

    #[test]
    fn tree_valued_bindings_stay_symbolic() {
        let plan = Alg::select(
            Alg::bind(Alg::source("d"), parse_filter("d *$x").unwrap()),
            Pred::var_eq("x", "w"),
        );
        let mut e = BTreeMap::new();
        e.insert(
            "w".to_string(),
            Value::Tree(yat_model::Node::sym("work", vec![])),
        );
        let out = substitute_env(&plan, &e);
        let Alg::Select { pred, .. } = out.as_ref() else {
            panic!()
        };
        assert_eq!(pred.to_string(), "$x = $w", "tree values cannot inline");
    }

    #[test]
    fn exec_mode_parses_the_env_syntax() {
        assert_eq!(ExecMode::parse("sequential"), Some(ExecMode::Sequential));
        assert_eq!(ExecMode::parse(" SEQ "), Some(ExecMode::Sequential));
        assert_eq!(ExecMode::parse("parallel"), Some(ExecMode::parallel()));
        assert_eq!(
            ExecMode::parse("parallel:3"),
            Some(ExecMode::Parallel { max_in_flight: 3 })
        );
        assert_eq!(ExecMode::parse("parallel:0"), None, "zero lanes rejected");
        assert_eq!(ExecMode::parse("warp-speed"), None);
        assert_eq!(ExecMode::parallel().to_string(), "parallel(8)");
        assert_eq!(ExecMode::Sequential.to_string(), "sequential");
        assert!(ExecMode::parallel().is_parallel() && !ExecMode::Sequential.is_parallel());
    }

    #[test]
    fn invalid_exec_mode_env_values_warn_and_fall_back() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = seen.clone();
        yat_obs::set_warn_sink(Some(Box::new(move |m| {
            sink.lock().unwrap().push(m.to_string());
        })));
        // valid and unset values stay silent
        assert_eq!(ExecMode::from_env_value(None), ExecMode::Sequential);
        assert_eq!(
            ExecMode::from_env_value(Some("parallel:3")),
            ExecMode::Parallel { max_in_flight: 3 }
        );
        assert!(seen.lock().unwrap().is_empty());
        // an invalid value falls back to sequential, loudly
        assert_eq!(
            ExecMode::from_env_value(Some("warp-speed")),
            ExecMode::Sequential
        );
        yat_obs::set_warn_sink(None);
        let warnings = seen.lock().unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("YAT_EXEC_MODE")
                && warnings[0].contains("warp-speed")
                && warnings[0].contains("parallel:<lanes>"),
            "{warnings:?}"
        );
    }

    #[test]
    fn exec_engine_parses_the_env_syntax() {
        assert_eq!(ExecEngine::parse("interp"), Some(ExecEngine::Interp));
        assert_eq!(ExecEngine::parse(" INTERPRETER "), Some(ExecEngine::Interp));
        assert_eq!(ExecEngine::parse("vm"), Some(ExecEngine::Vm));
        assert_eq!(ExecEngine::parse("Compiled"), Some(ExecEngine::Vm));
        assert_eq!(ExecEngine::parse("jit"), None);
        assert_eq!(ExecEngine::Interp.to_string(), "interp");
        assert_eq!(ExecEngine::Vm.to_string(), "vm");
        assert_eq!(ExecEngine::default(), ExecEngine::Interp);
    }

    #[test]
    fn invalid_exec_engine_env_values_warn_and_fall_back() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = seen.clone();
        yat_obs::set_warn_sink(Some(Box::new(move |m| {
            sink.lock().unwrap().push(m.to_string());
        })));
        // valid and unset values stay silent
        assert_eq!(ExecEngine::from_env_value(None), ExecEngine::Interp);
        assert_eq!(ExecEngine::from_env_value(Some("vm")), ExecEngine::Vm);
        assert!(seen.lock().unwrap().is_empty());
        // an invalid value falls back to the interpreter, loudly
        assert_eq!(
            ExecEngine::from_env_value(Some("turbo")),
            ExecEngine::Interp
        );
        yat_obs::set_warn_sink(None);
        let warnings = seen.lock().unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("YAT_EXEC_ENGINE")
                && warnings[0].contains("turbo")
                && warnings[0].contains("`vm`/`compiled`"),
            "{warnings:?}"
        );
    }

    #[test]
    fn stream_policy_parses_the_env_syntax() {
        assert_eq!(StreamPolicy::parse("off"), Some(StreamPolicy::Off));
        assert_eq!(
            StreamPolicy::parse(" Materialized "),
            Some(StreamPolicy::Off)
        );
        assert_eq!(
            StreamPolicy::parse("chunked"),
            Some(StreamPolicy::chunked())
        );
        assert_eq!(StreamPolicy::parse("on"), Some(StreamPolicy::chunked()));
        assert_eq!(
            StreamPolicy::parse("chunked:256"),
            Some(StreamPolicy::Chunked {
                batch_rows: 256,
                max_pending: StreamPolicy::DEFAULT_MAX_PENDING
            })
        );
        assert_eq!(
            StreamPolicy::parse("chunked:256:4"),
            Some(StreamPolicy::Chunked {
                batch_rows: 256,
                max_pending: 4
            })
        );
        assert_eq!(StreamPolicy::parse("firehose"), None);
        assert_eq!(
            StreamPolicy::chunked().to_string(),
            "chunked(1024 rows, 8 pending)"
        );
        assert_eq!(StreamPolicy::Off.to_string(), "off");
        assert!(StreamPolicy::chunked().is_chunked() && !StreamPolicy::Off.is_chunked());
    }

    #[test]
    fn stream_policy_clamps_zero_to_one_with_a_warning() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = seen.clone();
        yat_obs::set_warn_sink(Some(Box::new(move |m| {
            sink.lock().unwrap().push(m.to_string());
        })));
        assert_eq!(
            StreamPolicy::parse("chunked:0"),
            Some(StreamPolicy::Chunked {
                batch_rows: 1,
                max_pending: StreamPolicy::DEFAULT_MAX_PENDING
            }),
            "zero rows clamp to 1 instead of disabling streaming"
        );
        assert_eq!(
            StreamPolicy::parse("chunked:64:0"),
            Some(StreamPolicy::Chunked {
                batch_rows: 64,
                max_pending: 1
            }),
            "zero pending clamps to 1"
        );
        yat_obs::set_warn_sink(None);
        let warnings = seen.lock().unwrap();
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(
            warnings[0].contains("YAT_STREAM") && warnings[0].contains("clamping 0 to 1"),
            "{warnings:?}"
        );
    }

    #[test]
    fn stream_policy_rejects_overflow_and_garbage_suffixes() {
        // a count that overflows usize is invalid, not silently truncated
        assert_eq!(StreamPolicy::parse("chunked:99999999999999999999"), None);
        assert_eq!(StreamPolicy::parse("chunked:64:99999999999999999999"), None);
        // trailing garbage after the number is invalid
        assert_eq!(StreamPolicy::parse("chunked:64k"), None);
        assert_eq!(StreamPolicy::parse("chunked:64:8mb"), None);
        assert_eq!(StreamPolicy::parse("chunked:"), None);
        assert_eq!(StreamPolicy::parse("chunked:64:"), None);
        // and the invalid forms warn through the from_env path
        assert_eq!(
            StreamPolicy::from_env_value(Some("chunked:64k")),
            StreamPolicy::Off
        );
    }

    #[test]
    fn invalid_stream_policy_env_values_warn_and_fall_back() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = seen.clone();
        yat_obs::set_warn_sink(Some(Box::new(move |m| {
            sink.lock().unwrap().push(m.to_string());
        })));
        // valid and unset values stay silent
        assert_eq!(StreamPolicy::from_env_value(None), StreamPolicy::Off);
        assert_eq!(
            StreamPolicy::from_env_value(Some("chunked:512")),
            StreamPolicy::Chunked {
                batch_rows: 512,
                max_pending: 8
            }
        );
        assert!(seen.lock().unwrap().is_empty());
        // an invalid value falls back to off, loudly
        assert_eq!(
            StreamPolicy::from_env_value(Some("firehose")),
            StreamPolicy::Off
        );
        yat_obs::set_warn_sink(None);
        let warnings = seen.lock().unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("YAT_STREAM")
                && warnings[0].contains("firehose")
                && warnings[0].contains("chunked:<rows>:<pending>"),
            "{warnings:?}"
        );
    }

    #[test]
    fn dependency_analysis_skips_djoin_right() {
        let filter = parse_filter("works *$w").unwrap();
        let wais = Alg::push("wais", Alg::bind(Alg::source("works"), filter.clone()));
        let o2 = Alg::push("o2", Alg::bind(Alg::source("artifacts"), filter.clone()));
        let dependent = Alg::push("o2", Alg::bind(Alg::source("persons"), filter));

        // Join(wais, o2): both sides independent
        let plan = Alg::join(wais.clone(), o2.clone(), Pred::True);
        let mut found = Vec::new();
        independent_pushes(&plan, &mut found);
        assert_eq!(
            found.iter().map(|(s, _)| s.as_str()).collect::<Vec<_>>(),
            ["wais", "o2"]
        );

        // DJoin(left: wais, right: dependent): the right side needs
        // per-row bindings and must not be scattered
        let plan = Alg::djoin(wais, dependent);
        let mut found = Vec::new();
        independent_pushes(&plan, &mut found);
        assert_eq!(
            found.iter().map(|(s, _)| s.as_str()).collect::<Vec<_>>(),
            ["wais"]
        );
    }

    #[test]
    fn empty_env_is_identity() {
        let plan = Alg::select(
            Alg::bind(Alg::source("d"), parse_filter("d *$x").unwrap()),
            Pred::eq_const("x", 1),
        );
        let out = substitute_env(&plan, &BTreeMap::new());
        assert!(Arc::ptr_eq(&plan, &out));
    }
}
