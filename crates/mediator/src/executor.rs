//! Plan execution: fetch mediator-side documents, ship `Push` fragments,
//! substitute information-passing values, evaluate the rest locally.

use crate::compose::mediator_side_sources;
use crate::transport::Connection;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use yat_algebra::eval::{eval_env, Env, EvalCtx, PushHandler};
use yat_algebra::{Alg, EvalError, EvalOut, FnRegistry, Operand, Pred, SkolemRegistry, Tab, Value};
use yat_capability::interface::Interface;
use yat_capability::protocol::{Request, Response};
use yat_model::{Forest, Pattern, Tree};
use yat_obs::Collector;

/// An execution failure.
#[derive(Debug)]
pub enum ExecError {
    /// The plan reads a document no connected source exports.
    UnknownSource(String),
    /// A wire-level failure.
    Wire(String),
    /// A wrapper refused or failed a pushed plan.
    Wrapper {
        /// Source id.
        source: String,
        /// Its message.
        message: String,
    },
    /// Local evaluation failed.
    Eval(EvalError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownSource(s) => write!(f, "no connected source provides `{s}`"),
            ExecError::Wire(m) => write!(f, "transport failure: {m}"),
            ExecError::Wrapper { source, message } => {
                write!(f, "wrapper `{source}` failed: {message}")
            }
            ExecError::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> Self {
        ExecError::Eval(e)
    }
}

/// Executes a plan against the connected wrappers.
///
/// Mediator-side `Source` reads fetch whole documents. Because fetched
/// data may hold references into a source's *other* documents (Fig. 1's
/// `owners refs="p1 p2 p3"`), every export of a touched source is
/// mirrored so references dereference — part of the naive strategy's
/// cost that pushdown avoids.
pub fn execute(
    plan: &Alg,
    connections: &BTreeMap<String, Connection>,
    interfaces: &BTreeMap<String, Interface>,
    funcs: &FnRegistry,
    skolems: &SkolemRegistry,
) -> Result<EvalOut, ExecError> {
    execute_traced(plan, connections, interfaces, funcs, skolems, None)
}

/// [`execute`] with an optional span collector. When present, document
/// prefetch runs under a `phase` span, every protocol round trip records
/// an `rpc` span, and local evaluation records one `operator` span per
/// operator execution — the raw material of `EXPLAIN ANALYZE`.
pub fn execute_traced(
    plan: &Alg,
    connections: &BTreeMap<String, Connection>,
    interfaces: &BTreeMap<String, Interface>,
    funcs: &FnRegistry,
    skolems: &SkolemRegistry,
    obs: Option<&Collector>,
) -> Result<EvalOut, ExecError> {
    // insertion order drives fetch order (plan-referenced documents
    // first); the set makes the reference-closure membership test O(log n)
    // instead of a linear rescan of everything fetched so far
    let mut wanted: Vec<(String, String)> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (source, name) in mediator_side_sources(plan) {
        let Some(src) = source else {
            return Err(ExecError::UnknownSource(name));
        };
        if seen.insert((src.clone(), name.clone())) {
            wanted.push((src.clone(), name));
        }
        // reference closure: all other exports of the same source
        if let Some(iface) = interfaces.get(&src) {
            for export in &iface.exports {
                let key = (src.clone(), export.name.clone());
                if seen.insert(key.clone()) {
                    wanted.push(key);
                }
            }
        }
    }
    let prefetch = obs.map(|o| o.span(yat_obs::kind::PHASE, "prefetch documents".to_string()));
    let mut forest = Forest::new();
    for (src, name) in wanted {
        let conn = connections
            .get(&src)
            .ok_or_else(|| ExecError::UnknownSource(format!("{name}@{src}")))?;
        let response = conn
            .call_traced(&Request::GetDocument { name: name.clone() }, obs)
            .map_err(|e| ExecError::Wire(e.to_string()))?;
        match response {
            Response::Document { tree, .. } => forest.insert(name, tree),
            Response::Error(m) => {
                return Err(ExecError::Wrapper {
                    source: src,
                    message: m,
                })
            }
            other => return Err(ExecError::Wire(format!("unexpected response {other:?}"))),
        }
    }
    drop(prefetch);

    let catalog = RemoteCatalog { forest };
    let pusher = Pusher { connections, obs };
    let ctx = EvalCtx {
        catalog: &catalog,
        model: None,
        funcs,
        skolems,
        push: Some(&pusher),
        obs,
    };
    Ok(eval_env(plan, &ctx, &Env::new())?)
}

/// Documents fetched for this execution, addressed by name regardless of
/// which wrapper they came from (exported names are globally unique in a
/// YAT federation, as in the paper's example).
struct RemoteCatalog {
    forest: Forest,
}

impl yat_algebra::SourceCatalog for RemoteCatalog {
    fn document(&self, _source: Option<&str>, name: &str) -> Option<Tree> {
        self.forest.get(name).cloned()
    }

    fn deref_forest(&self) -> Option<&Forest> {
        Some(&self.forest)
    }
}

struct Pusher<'a> {
    connections: &'a BTreeMap<String, Connection>,
    obs: Option<&'a Collector>,
}

impl<'a> PushHandler for Pusher<'a> {
    fn execute_push(
        &self,
        source: &str,
        plan: &Alg,
        env: &BTreeMap<String, Value>,
    ) -> Result<Tab, EvalError> {
        let conn = self
            .connections
            .get(source)
            .ok_or_else(|| EvalError::UnknownSource {
                source: Some(source.to_string()),
                name: "<push>".into(),
            })?;
        let plan = substitute_env(&Arc::new(plan.clone()), env);
        let response = conn
            .call_traced(&Request::Execute { plan }, self.obs)
            .map_err(|e| EvalError::Function {
                name: source.to_string(),
                message: e.to_string(),
            })?;
        match response {
            Response::Result(tab) => Ok(tab),
            Response::Error(m) => Err(EvalError::Function {
                name: source.to_string(),
                message: m,
            }),
            other => Err(EvalError::Function {
                name: source.to_string(),
                message: format!("unexpected response {other:?}"),
            }),
        }
    }
}

/// Information passing (Section 5.3): outer bindings referenced by the
/// pushed plan become constants before shipping — "values of variables
/// passed from the left-hand side to the right-hand side".
pub fn substitute_env(plan: &Arc<Alg>, env: &BTreeMap<String, Value>) -> Arc<Alg> {
    if env.is_empty() {
        return plan.clone();
    }
    match plan.as_ref() {
        Alg::Select { input, pred } => {
            let produced = input.out_vars().unwrap_or_default();
            let pred = subst_pred(pred, env, &produced);
            Alg::select(substitute_env(input, env), pred)
        }
        Alg::Join { left, right, pred } => {
            let mut produced = left.out_vars().unwrap_or_default();
            produced.extend(right.out_vars().unwrap_or_default());
            let pred = subst_pred(pred, env, &produced);
            Alg::join(substitute_env(left, env), substitute_env(right, env), pred)
        }
        Alg::Bind {
            input,
            filter,
            over,
        } => {
            // a filter variable bound in the environment becomes an
            // inline constant — the O2 wrapper then emits `where title =
            // "…"` (Fig. 9's nested-loop information passing)
            let filter = subst_filter(filter, env);
            let input = substitute_env(input, env);
            match over {
                Some(col) => Alg::bind_over(input, col.clone(), filter),
                None => Alg::bind(input, filter),
            }
        }
        Alg::Map { input, col, expr } => {
            let produced = input.out_vars().unwrap_or_default();
            Arc::new(Alg::Map {
                input: substitute_env(input, env),
                col: col.clone(),
                expr: subst_operand(expr, env, &produced),
            })
        }
        _ => {
            let kids = plan
                .children()
                .into_iter()
                .map(|c| substitute_env(c, env))
                .collect();
            Arc::new(plan.with_children(kids))
        }
    }
}

fn subst_pred(pred: &Pred, env: &BTreeMap<String, Value>, produced: &[String]) -> Pred {
    match pred {
        Pred::True => Pred::True,
        Pred::And(a, b) => Pred::And(
            Box::new(subst_pred(a, env, produced)),
            Box::new(subst_pred(b, env, produced)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(subst_pred(a, env, produced)),
            Box::new(subst_pred(b, env, produced)),
        ),
        Pred::Not(p) => Pred::Not(Box::new(subst_pred(p, env, produced))),
        Pred::Cmp { op, left, right } => Pred::Cmp {
            op: *op,
            left: subst_operand(left, env, produced),
            right: subst_operand(right, env, produced),
        },
        Pred::Call { name, args } => Pred::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| subst_operand(a, env, produced))
                .collect(),
        },
    }
}

fn subst_operand(o: &Operand, env: &BTreeMap<String, Value>, produced: &[String]) -> Operand {
    match o {
        Operand::Var(v) if !produced.contains(v) => match env.get(v).and_then(Value::atom) {
            Some(a) => Operand::Const(a),
            None => o.clone(),
        },
        Operand::Call { name, args } => Operand::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| subst_operand(a, env, produced))
                .collect(),
        },
        _ => o.clone(),
    }
}

fn subst_filter(filter: &Pattern, env: &BTreeMap<String, Value>) -> Pattern {
    match filter {
        Pattern::TreeVar(v) => match env.get(v).and_then(Value::atom) {
            Some(a) => Pattern::constant(a),
            None => filter.clone(),
        },
        Pattern::Node { label, edges } => Pattern::Node {
            label: label.clone(),
            edges: edges
                .iter()
                .map(|e| yat_model::Edge {
                    occ: e.occ,
                    star_var: e.star_var.clone(),
                    pattern: subst_filter(&e.pattern, env),
                })
                .collect(),
        },
        Pattern::Union(bs) => Pattern::Union(bs.iter().map(|b| subst_filter(b, env)).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yat_algebra::CmpOp;
    use yat_model::Atom;
    use yat_yatl::parse_filter;

    fn env(pairs: &[(&str, Atom)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Atom(v.clone())))
            .collect()
    }

    #[test]
    fn predicates_substitute_free_vars_only() {
        let plan = Alg::select(
            Alg::bind(
                Alg::source("artifacts"),
                parse_filter("set *class: artifact: tuple [ title: $t2 ]").unwrap(),
            ),
            Pred::cmp(CmpOp::Eq, Operand::var("t2"), Operand::var("t")),
        );
        let out = substitute_env(&plan, &env(&[("t", Atom::Str("Nympheas".into()))]));
        let Alg::Select { pred, .. } = out.as_ref() else {
            panic!()
        };
        // $t2 is produced inside, $t came from the environment
        assert_eq!(pred.to_string(), "$t2 = \"Nympheas\"");
    }

    #[test]
    fn filters_substitute_shared_vars() {
        let plan = Alg::bind(
            Alg::source("artifacts"),
            parse_filter("set *class: artifact: tuple [ title: $t ]").unwrap(),
        );
        let out = substitute_env(&plan, &env(&[("t", Atom::Str("X".into()))]));
        let Alg::Bind { filter, .. } = out.as_ref() else {
            panic!()
        };
        assert!(filter.to_string().contains("title[\"X\"]"), "{filter}");
    }

    #[test]
    fn tree_valued_bindings_stay_symbolic() {
        let plan = Alg::select(
            Alg::bind(Alg::source("d"), parse_filter("d *$x").unwrap()),
            Pred::var_eq("x", "w"),
        );
        let mut e = BTreeMap::new();
        e.insert(
            "w".to_string(),
            Value::Tree(yat_model::Node::sym("work", vec![])),
        );
        let out = substitute_env(&plan, &e);
        let Alg::Select { pred, .. } = out.as_ref() else {
            panic!()
        };
        assert_eq!(pred.to_string(), "$x = $w", "tree values cannot inline");
    }

    #[test]
    fn empty_env_is_identity() {
        let plan = Alg::select(
            Alg::bind(Alg::source("d"), parse_filter("d *$x").unwrap()),
            Pred::eq_const("x", 1),
        );
        let out = substitute_env(&plan, &BTreeMap::new());
        assert!(Arc::ptr_eq(&plan, &out));
    }
}
