//! Plan execution: fetch mediator-side documents, ship `Push` fragments,
//! substitute information-passing values, evaluate the rest locally.
//!
//! Execution runs in one of two [`ExecMode`]s. `Sequential` performs
//! every round trip in plan order, one at a time. `Parallel` first
//! performs a *dependency analysis* over the plan: document prefetch
//! (grouped per source) and every independent `Push` fragment — one not
//! nested under the dependent side of a `DJoin`, whose
//! information-passing environment is therefore provably empty — become
//! scatter jobs dispatched concurrently over a bounded pool of
//! `std::thread::scope` worker lanes. The gather step assembles the
//! prefetched forest and a push-result cache, then local evaluation
//! proceeds exactly as in sequential mode, taking pushed results from
//! the cache instead of the wire. Dependent pushes (the `DJoin`
//! right-hand side, re-shipped once per left row with fresh bindings)
//! still go to the wire inline, so information passing is untouched.

use crate::compose::mediator_side_sources;
use crate::transport::Connection;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{mpsc, Arc};
use yat_algebra::eval::{eval_env, Env, EvalCtx, PushHandler};
use yat_algebra::{Alg, EvalError, EvalOut, FnRegistry, Operand, Pred, SkolemRegistry, Tab, Value};
use yat_cache::{AnswerCache, CachedAnswer, Signature};
use yat_capability::interface::Interface;
use yat_capability::protocol::{Request, Response};
use yat_model::{Forest, Pattern, Tree};
use yat_obs::{attr, kind, Collector};

/// How the executor dispatches independent source work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One round trip at a time, in plan order.
    #[default]
    Sequential,
    /// Scatter/gather: independent fragments run concurrently on up to
    /// `max_in_flight` worker lanes.
    Parallel {
        /// Upper bound on concurrently running scatter jobs.
        max_in_flight: usize,
    },
}

impl ExecMode {
    /// Default lane bound of [`ExecMode::parallel`].
    pub const DEFAULT_LANES: usize = 8;

    /// Parallel mode with the default lane bound.
    pub fn parallel() -> Self {
        ExecMode::Parallel {
            max_in_flight: Self::DEFAULT_LANES,
        }
    }

    /// True for any `Parallel` variant.
    pub fn is_parallel(&self) -> bool {
        matches!(self, ExecMode::Parallel { .. })
    }

    /// The mode selected by the `YAT_EXEC_MODE` environment variable
    /// (`sequential`/`seq`, `parallel`/`par`, or `parallel:<lanes>`);
    /// sequential when unset. An *invalid* value also falls back to
    /// sequential, but loudly: a warning goes through [`yat_obs::warn`]
    /// naming the rejected value and the accepted syntax.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("YAT_EXEC_MODE").ok().as_deref())
    }

    /// [`ExecMode::from_env`] on an explicit value (`None` = unset) —
    /// split out so the warning path is testable without mutating the
    /// process environment.
    pub fn from_env_value(value: Option<&str>) -> Self {
        let Some(value) = value else {
            return ExecMode::default();
        };
        match Self::parse(value) {
            Some(mode) => mode,
            None => {
                yat_obs::warn(format!(
                    "YAT_EXEC_MODE=`{value}` is not a valid execution mode; accepted values \
                     are `sequential`/`seq`, `parallel`/`par`, or `parallel:<lanes>` — \
                     falling back to sequential"
                ));
                ExecMode::default()
            }
        }
    }

    /// Parses the `YAT_EXEC_MODE` syntax.
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim().to_ascii_lowercase();
        match text.as_str() {
            "sequential" | "seq" => Some(ExecMode::Sequential),
            "parallel" | "par" => Some(ExecMode::parallel()),
            _ => text
                .strip_prefix("parallel:")
                .and_then(|n| n.parse().ok())
                .filter(|&n| n > 0)
                .map(|n| ExecMode::Parallel { max_in_flight: n }),
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Sequential => write!(f, "sequential"),
            ExecMode::Parallel { max_in_flight } => write!(f, "parallel({max_in_flight})"),
        }
    }
}

/// Which engine evaluates the local (mediator-side) part of a plan.
///
/// Orthogonal to [`ExecMode`]: the mode decides how *source* work is
/// dispatched (sequential or scatter/gather), the engine decides how the
/// local algebra in between is evaluated. The interpreter is the
/// semantics oracle; the VM runs compiled programs and must match it
/// bit-for-bit (`tests/differential.rs` enforces this over hundreds of
/// seeded plans, on both axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// The recursive reference interpreter ([`yat_algebra::eval()`]).
    #[default]
    Interp,
    /// Compiled execution: plans are lowered once into flat stack
    /// programs ([`yat_algebra::compile()`]) and run batched
    /// ([`yat_algebra::vm::run`]).
    Vm,
}

impl ExecEngine {
    /// The engine selected by the `YAT_EXEC_ENGINE` environment variable
    /// (`interp`/`interpreter`, or `vm`/`compiled`); the interpreter
    /// when unset. An *invalid* value also falls back to the
    /// interpreter, but loudly: a warning goes through [`yat_obs::warn`]
    /// naming the rejected value and the accepted syntax.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("YAT_EXEC_ENGINE").ok().as_deref())
    }

    /// [`ExecEngine::from_env`] on an explicit value (`None` = unset) —
    /// split out so the warning path is testable without mutating the
    /// process environment.
    pub fn from_env_value(value: Option<&str>) -> Self {
        let Some(value) = value else {
            return ExecEngine::default();
        };
        match Self::parse(value) {
            Some(engine) => engine,
            None => {
                yat_obs::warn(format!(
                    "YAT_EXEC_ENGINE=`{value}` is not a valid execution engine; accepted \
                     values are `interp`/`interpreter` or `vm`/`compiled` — falling back \
                     to the interpreter"
                ));
                ExecEngine::default()
            }
        }
    }

    /// Parses the `YAT_EXEC_ENGINE` syntax.
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "interp" | "interpreter" => Some(ExecEngine::Interp),
            "vm" | "compiled" => Some(ExecEngine::Vm),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecEngine::Interp => write!(f, "interp"),
            ExecEngine::Vm => write!(f, "vm"),
        }
    }
}

/// How answers leave the mediator: one materialized value, or a stream
/// of row batches (`yat_algebra::stream`).
///
/// Orthogonal to both [`ExecMode`] and [`ExecEngine`]: the plan prefix
/// is still evaluated by the chosen engine under the chosen dispatch
/// mode; streaming changes only the *answer boundary* — the streamable
/// operator chain on top of the plan runs batch-at-a-time and each batch
/// is delivered as soon as it exists. The materialized path stays the
/// semantics oracle: concatenating the delivered batches must reproduce
/// it byte-for-byte (`tests/differential.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamPolicy {
    /// Materialize the whole answer before returning it (the default).
    #[default]
    Off,
    /// Deliver the answer as row batches.
    Chunked {
        /// Rows per delivered batch.
        batch_rows: usize,
        /// Upper bound on delivered-but-unconsumed batches a streaming
        /// consumer (the server's wire writer) may buffer before the
        /// producer blocks — the per-query memory budget.
        max_pending: usize,
    },
}

impl StreamPolicy {
    /// Default rows per batch — the VM's internal batching granularity.
    pub const DEFAULT_BATCH_ROWS: usize = yat_algebra::stream::DEFAULT_BATCH_ROWS;
    /// Default bound on buffered, unconsumed batches.
    pub const DEFAULT_MAX_PENDING: usize = 8;

    /// Chunked delivery with the default batch size and pending bound.
    pub fn chunked() -> Self {
        StreamPolicy::Chunked {
            batch_rows: Self::DEFAULT_BATCH_ROWS,
            max_pending: Self::DEFAULT_MAX_PENDING,
        }
    }

    /// True for any `Chunked` variant.
    pub fn is_chunked(&self) -> bool {
        matches!(self, StreamPolicy::Chunked { .. })
    }

    /// The policy selected by the `YAT_STREAM` environment variable
    /// (`off`, `chunked`, `chunked:<rows>`, or
    /// `chunked:<rows>:<pending>`); off when unset. An *invalid* value
    /// also falls back to off, but loudly: a warning goes through
    /// [`yat_obs::warn`] naming the rejected value and the accepted
    /// syntax.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("YAT_STREAM").ok().as_deref())
    }

    /// [`StreamPolicy::from_env`] on an explicit value (`None` = unset)
    /// — split out so the warning path is testable without mutating the
    /// process environment.
    pub fn from_env_value(value: Option<&str>) -> Self {
        let Some(value) = value else {
            return StreamPolicy::default();
        };
        match Self::parse(value) {
            Some(policy) => policy,
            None => {
                yat_obs::warn(format!(
                    "YAT_STREAM=`{value}` is not a valid stream policy; accepted values \
                     are `off`, `chunked`, `chunked:<rows>`, or `chunked:<rows>:<pending>` \
                     — falling back to off"
                ));
                StreamPolicy::default()
            }
        }
    }

    /// Parses the `YAT_STREAM` syntax.
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim().to_ascii_lowercase();
        match text.as_str() {
            "off" | "materialized" => return Some(StreamPolicy::Off),
            "chunked" | "on" => return Some(StreamPolicy::chunked()),
            _ => {}
        }
        let rest = text.strip_prefix("chunked:")?;
        let (rows, pending) = match rest.split_once(':') {
            Some((rows, pending)) => (rows, Some(pending)),
            None => (rest, None),
        };
        let batch_rows: usize = rows.parse().ok().filter(|&n| n > 0)?;
        let max_pending = match pending {
            Some(p) => p.parse().ok().filter(|&n| n > 0)?,
            None => Self::DEFAULT_MAX_PENDING,
        };
        Some(StreamPolicy::Chunked {
            batch_rows,
            max_pending,
        })
    }
}

impl std::fmt::Display for StreamPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamPolicy::Off => write!(f, "off"),
            StreamPolicy::Chunked {
                batch_rows,
                max_pending,
            } => write!(f, "chunked({batch_rows} rows, {max_pending} pending)"),
        }
    }
}

/// An execution failure.
#[derive(Debug)]
pub enum ExecError {
    /// The plan reads a document no connected source exports.
    UnknownSource(String),
    /// A wire-level failure.
    Wire(String),
    /// A wrapper refused or failed a pushed plan.
    Wrapper {
        /// Source id.
        source: String,
        /// Its message.
        message: String,
    },
    /// Local evaluation failed.
    Eval(EvalError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownSource(s) => write!(f, "no connected source provides `{s}`"),
            ExecError::Wire(m) => write!(f, "transport failure: {m}"),
            ExecError::Wrapper { source, message } => {
                write!(f, "wrapper `{source}` failed: {message}")
            }
            ExecError::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> Self {
        ExecError::Eval(e)
    }
}

/// Executes a plan against the connected wrappers.
///
/// Mediator-side `Source` reads fetch whole documents. Because fetched
/// data may hold references into a source's *other* documents (Fig. 1's
/// `owners refs="p1 p2 p3"`), every export of a touched source is
/// mirrored so references dereference — part of the naive strategy's
/// cost that pushdown avoids.
pub fn execute(
    plan: &Alg,
    connections: &BTreeMap<String, Connection>,
    interfaces: &BTreeMap<String, Interface>,
    funcs: &FnRegistry,
    skolems: &SkolemRegistry,
) -> Result<EvalOut, ExecError> {
    execute_traced(plan, connections, interfaces, funcs, skolems, None)
}

/// [`execute`] with an optional span collector. When present, document
/// prefetch runs under a `phase` span, every protocol round trip records
/// an `rpc` span, and local evaluation records one `operator` span per
/// operator execution — the raw material of `EXPLAIN ANALYZE`.
pub fn execute_traced(
    plan: &Alg,
    connections: &BTreeMap<String, Connection>,
    interfaces: &BTreeMap<String, Interface>,
    funcs: &FnRegistry,
    skolems: &SkolemRegistry,
    obs: Option<&Collector>,
) -> Result<EvalOut, ExecError> {
    execute_mode(
        plan,
        connections,
        interfaces,
        funcs,
        skolems,
        obs,
        ExecMode::Sequential,
        &AnswerCache::off(),
        ExecEngine::Interp,
        None,
    )
}

/// [`execute_traced`] with an explicit [`ExecMode`] and answer cache. In
/// `Parallel` mode the prefetch and every independent push fragment run
/// as scatter jobs under a `scatter` phase span; each job span records
/// the worker lane that executed it (`attr::LANE`).
///
/// When the cache is enabled, every unit of source work — a document
/// fetch or a pushed fragment, dependent ones included — is looked up
/// first (against the source's *live* epoch, so an epoch bump during a
/// long execution stops stale answers immediately) and inserted after a
/// fully successful round trip. In parallel mode lookups happen at
/// scheduling time: a hit removes the job from the lane schedule.
///
/// The local algebra between source round trips is evaluated by
/// `engine`; under [`ExecEngine::Vm`] a pre-compiled `program` (the
/// mediator's cross-query program cache) is used when supplied, or the
/// plan is compiled on the spot.
#[allow(clippy::too_many_arguments)]
pub fn execute_mode(
    plan: &Alg,
    connections: &BTreeMap<String, Connection>,
    interfaces: &BTreeMap<String, Interface>,
    funcs: &FnRegistry,
    skolems: &SkolemRegistry,
    obs: Option<&Collector>,
    mode: ExecMode,
    cache: &AnswerCache,
    engine: ExecEngine,
    program: Option<&yat_algebra::Program>,
) -> Result<EvalOut, ExecError> {
    let (catalog, pusher) = prepare(plan, connections, interfaces, obs, mode, cache)?;
    let ctx = EvalCtx {
        catalog: &catalog,
        model: None,
        funcs,
        skolems,
        push: Some(&pusher),
        obs,
    };
    let env = Env::new();
    run_engine(plan, engine, program, &ctx, &env).map_err(ExecError::from)
}

/// [`execute_mode`] with a streamed answer boundary: `prefix` (the plan
/// below its streamable top chain, see [`yat_algebra::stream::split`])
/// is fetched-for and evaluated exactly as `execute_mode` would, then
/// its result is cut into `batch_rows`-row batches, run through
/// `stages`, and delivered to `sink` one batch at a time.
///
/// The supplied `program`, if any, must be compiled for **`prefix`**,
/// not the full plan — the mediator's program cache is keyed
/// accordingly. Source work is identical to the materialized path
/// (stages contain no `Source` or `Push` nodes by construction), which
/// is what makes the equal-traffic differential assertion meaningful.
///
/// Delivery runs under a `stream` span recording `batch_rows` and, on
/// success, the chunk and row counts.
#[allow(clippy::too_many_arguments)]
pub fn execute_stream_mode(
    prefix: &Alg,
    stages: &[yat_algebra::stream::Stage],
    connections: &BTreeMap<String, Connection>,
    interfaces: &BTreeMap<String, Interface>,
    funcs: &FnRegistry,
    skolems: &SkolemRegistry,
    obs: Option<&Collector>,
    mode: ExecMode,
    cache: &AnswerCache,
    engine: ExecEngine,
    program: Option<&yat_algebra::Program>,
    batch_rows: usize,
    sink: &mut dyn yat_algebra::stream::BatchSink,
) -> Result<yat_algebra::stream::DeliveryStats, ExecError> {
    let (catalog, pusher) = prepare(prefix, connections, interfaces, obs, mode, cache)?;
    let ctx = EvalCtx {
        catalog: &catalog,
        model: None,
        funcs,
        skolems,
        push: Some(&pusher),
        obs,
    };
    let env = Env::new();
    let prefix_out = run_engine(prefix, engine, program, &ctx, &env)?;
    let mut span = obs.map(|o| {
        let mut s = o.span(kind::STREAM, "stream answer".to_string());
        s.record_u64(attr::BATCH_ROWS, batch_rows as u64);
        s
    });
    let stats = yat_algebra::stream::deliver(prefix_out, stages, batch_rows, &ctx, &env, sink);
    match &stats {
        Ok(stats) => {
            if let Some(s) = span.as_mut() {
                s.record_u64(attr::CHUNKS, stats.chunks);
                s.record_u64(attr::ROWS_OUT, stats.rows);
            }
        }
        Err(e) => {
            if let Some(s) = span.as_mut() {
                s.record_str(attr::ERROR, e.to_string());
            }
        }
    }
    Ok(stats?)
}

/// The shared front half of execution: dependency analysis, document
/// prefetch (sequential or scatter/gather), and construction of the
/// catalog + push handler local evaluation runs against.
fn prepare<'a>(
    plan: &Alg,
    connections: &'a BTreeMap<String, Connection>,
    interfaces: &BTreeMap<String, Interface>,
    obs: Option<&'a Collector>,
    mode: ExecMode,
    cache: &'a AnswerCache,
) -> Result<(RemoteCatalog, Pusher<'a>), ExecError> {
    // insertion order drives fetch order (plan-referenced documents
    // first); the set makes the reference-closure membership test O(log n)
    // instead of a linear rescan of everything fetched so far
    let mut wanted: Vec<(String, String)> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (source, name) in mediator_side_sources(plan) {
        let Some(src) = source else {
            return Err(ExecError::UnknownSource(name));
        };
        if seen.insert((src.clone(), name.clone())) {
            wanted.push((src.clone(), name));
        }
        // reference closure: all other exports of the same source
        if let Some(iface) = interfaces.get(&src) {
            for export in &iface.exports {
                let key = (src.clone(), export.name.clone());
                if seen.insert(key.clone()) {
                    wanted.push(key);
                }
            }
        }
    }

    let (forest, pushed) = match mode {
        ExecMode::Sequential => (
            fetch_sequential(&wanted, connections, cache, obs)?,
            BTreeMap::new(),
        ),
        ExecMode::Parallel { max_in_flight } => {
            scatter_gather(&wanted, plan, connections, cache, obs, max_in_flight)?
        }
    };

    Ok((
        RemoteCatalog { forest },
        Pusher {
            connections,
            obs,
            cache,
            pushed,
        },
    ))
}

/// Evaluates `plan` with the chosen engine: the interpreter directly, or
/// the VM on a pre-compiled `program` (compiling on the spot when the
/// caller has none).
fn run_engine(
    plan: &Alg,
    engine: ExecEngine,
    program: Option<&yat_algebra::Program>,
    ctx: &EvalCtx<'_>,
    env: &Env,
) -> Result<EvalOut, EvalError> {
    match engine {
        ExecEngine::Interp => eval_env(plan, ctx, env),
        ExecEngine::Vm => {
            let compiled;
            let program = match program {
                Some(p) => p,
                None => {
                    compiled = yat_algebra::compile(plan);
                    &compiled
                }
            };
            yat_algebra::vm::run(program, ctx, env)
        }
    }
}

/// The sequential prefetch loop: one `get-document` round trip at a
/// time, in `wanted` order, under a single `prefetch documents` span.
/// Each document is looked up in the answer cache first (against the
/// source's live epoch) and only fetched on a miss.
fn fetch_sequential(
    wanted: &[(String, String)],
    connections: &BTreeMap<String, Connection>,
    cache: &AnswerCache,
    obs: Option<&Collector>,
) -> Result<Forest, ExecError> {
    let prefetch = obs.map(|o| o.span(kind::PHASE, "prefetch documents".to_string()));
    let mut forest = Forest::new();
    for (src, name) in wanted {
        if let Some(tree) = cached_document(src, name, connections, cache, obs) {
            forest.insert(name.clone(), tree);
            continue;
        }
        for (name, tree) in
            fetch_documents(src, std::slice::from_ref(name), connections, cache, obs)?
        {
            forest.insert(name, tree);
        }
    }
    drop(prefetch);
    Ok(forest)
}

/// Cache lookup for one document, keyed by its canonical signature and
/// validated against the source's *live* epoch.
fn cached_document(
    src: &str,
    name: &str,
    connections: &BTreeMap<String, Connection>,
    cache: &AnswerCache,
    obs: Option<&Collector>,
) -> Option<Tree> {
    let conn = connections.get(src)?;
    match cache.lookup(Signature::document(src, name), src, conn.epoch(), obs) {
        Some(CachedAnswer::Document { tree, .. }) => Some(tree),
        _ => None,
    }
}

/// Fetches `names` from `src` over the wire, in order. Every fully
/// received document is inserted into the answer cache, tagged with the
/// source epoch read *before* its round trip — data that changes
/// mid-flight lands under the old epoch, which the next bump retires.
fn fetch_documents(
    src: &str,
    names: &[String],
    connections: &BTreeMap<String, Connection>,
    cache: &AnswerCache,
    obs: Option<&Collector>,
) -> Result<Vec<(String, Tree)>, ExecError> {
    let mut docs = Vec::with_capacity(names.len());
    for name in names {
        let conn = connections
            .get(src)
            .ok_or_else(|| ExecError::UnknownSource(format!("{name}@{src}")))?;
        let epoch = conn.epoch();
        let response = conn
            .call_traced(&Request::GetDocument { name: name.clone() }, obs)
            .map_err(|e| ExecError::Wire(format!("fetching `{name}` from `{src}`: {e}")))?;
        match response {
            Response::Document { tree, .. } => {
                cache.insert(
                    Signature::document(src, name),
                    src,
                    epoch,
                    CachedAnswer::Document {
                        name: name.clone(),
                        tree: tree.clone(),
                    },
                    obs,
                );
                docs.push((name.clone(), tree));
            }
            Response::Error(m) => {
                return Err(ExecError::Wrapper {
                    source: src.to_string(),
                    message: m,
                })
            }
            other => return Err(ExecError::Wire(format!("unexpected response {other:?}"))),
        }
    }
    Ok(docs)
}

/// One unit of independent source work, runnable on any worker lane.
enum Job {
    /// All document prefetches against one source, in plan order.
    Fetch {
        /// The source to fetch from.
        source: String,
        /// Document names, in the order the sequential path would fetch.
        names: Vec<String>,
    },
    /// An independent `Push` fragment (empty information-passing env).
    Push {
        /// The source the fragment is delegated to.
        source: String,
        /// The `Alg::Push` node's inner plan.
        plan: Arc<Alg>,
        /// The fragment's canonical signature — the memo key its result
        /// is gathered under, and the answer-cache key it is stored at.
        sig: Signature,
    },
}

impl Job {
    fn label(&self) -> String {
        match self {
            Job::Fetch { source, .. } => format!("fetch @{source}"),
            Job::Push { source, .. } => format!("push @{source}"),
        }
    }
}

/// What a completed job hands back to the gather step.
enum JobOut {
    Docs(Vec<(String, Tree)>),
    Pushed {
        /// Memo key: the fragment's canonical signature.
        sig: Signature,
        tab: Tab,
    },
}

/// Collects the plan's *independent* push fragments: `Push` nodes not
/// nested under the dependent (right) side of a `DJoin`. Those are
/// evaluated with an empty environment exactly once, so shipping them
/// early from a worker lane is indistinguishable from the sequential
/// order. Dependent pushes get per-row bindings and stay inline.
fn independent_pushes<'p>(plan: &'p Alg, out: &mut Vec<(String, &'p Arc<Alg>)>) {
    match plan {
        Alg::Push { source, plan } => out.push((source.clone(), plan)),
        Alg::DJoin { left, .. } => independent_pushes(left, out),
        _ => {
            for child in plan.children() {
                independent_pushes(child, out);
            }
        }
    }
}

/// The parallel front half of execution: build the job list, scatter it
/// over at most `max_in_flight` worker lanes, gather the prefetched
/// forest and the push-result cache.
///
/// Lane assignment is static round-robin (lane `l` runs jobs `l`,
/// `l + lanes`, `l + 2·lanes`, …), so which lane executes which job —
/// and therefore the recorded span tree — is deterministic. Errors are
/// reported in job order: whichever job *earliest in the plan* failed
/// wins, matching what the sequential path would have surfaced first.
fn scatter_gather(
    wanted: &[(String, String)],
    plan: &Alg,
    connections: &BTreeMap<String, Connection>,
    cache: &AnswerCache,
    obs: Option<&Collector>,
    max_in_flight: usize,
) -> Result<(Forest, BTreeMap<Signature, Tab>), ExecError> {
    // answer-cache hits are resolved at scheduling time and never enter
    // the lane schedule at all
    let mut forest = Forest::new();
    let mut pushed: BTreeMap<Signature, Tab> = BTreeMap::new();

    let mut jobs: Vec<Job> = Vec::new();
    // group the prefetch per source, preserving first-appearance order
    for (src, name) in wanted {
        if let Some(tree) = cached_document(src, name, connections, cache, obs) {
            forest.insert(name.clone(), tree);
            continue;
        }
        match jobs.iter_mut().find_map(|j| match j {
            Job::Fetch { source, names } if source == src => Some(names),
            _ => None,
        }) {
            Some(names) => names.push(name.clone()),
            None => jobs.push(Job::Fetch {
                source: src.clone(),
                names: vec![name.clone()],
            }),
        }
    }
    let mut pushes = Vec::new();
    independent_pushes(plan, &mut pushes);
    let mut seen_nodes = BTreeSet::new();
    for (source, inner) in pushes {
        // the same shared fragment node is shipped (and cached) once
        if !seen_nodes.insert(Arc::as_ptr(inner) as usize) {
            continue;
        }
        let sig = Signature::execute(&source, inner);
        if let Some(conn) = connections.get(&source) {
            if let Some(CachedAnswer::Result(tab)) = cache.lookup(sig, &source, conn.epoch(), obs) {
                pushed.insert(sig, tab);
                continue;
            }
        }
        jobs.push(Job::Push {
            source,
            plan: inner.clone(),
            sig,
        });
    }

    if jobs.is_empty() {
        return Ok((forest, pushed));
    }

    let mut scatter = obs.map(|o| o.span(kind::PHASE, "scatter".to_string()));
    let scatter_id = scatter.as_ref().map(|s| s.id());
    let lanes = max_in_flight.max(1).min(jobs.len());

    // Bounded gather: lanes hand finished results to the calling thread
    // through a channel whose capacity equals the lane count, so at most
    // `lanes` completed-but-unconsumed results ever sit in memory — a
    // lane that races ahead of the gatherer blocks in `send` instead of
    // buffering unbounded output. The gather folds each result into the
    // forest / push cache as it arrives (both are key-addressed, so
    // arrival order does not matter), tracking channel occupancy so the
    // bound is *observable*, not just structural.
    let (tx, rx) = mpsc::sync_channel::<(usize, Result<JobOut, ExecError>)>(lanes);
    let pending = AtomicI64::new(0);
    let peak = AtomicI64::new(0);
    // errors are reported in job order — whichever job *earliest in the
    // plan* failed wins, matching the sequential path — so the gather
    // drains everything rather than bailing on the first arrival
    let mut first_err: Option<(usize, ExecError)> = None;
    std::thread::scope(|scope| {
        for lane in 0..lanes {
            let jobs = &jobs;
            let tx = tx.clone();
            let (pending, peak) = (&pending, &peak);
            scope.spawn(move || {
                let mut idx = lane;
                while idx < jobs.len() {
                    let out = run_job(&jobs[idx], lane, connections, cache, obs, scatter_id);
                    if tx.send((idx, out)).is_err() {
                        return;
                    }
                    // counted after the buffered send and decremented
                    // after receipt, so the gauge never exceeds the
                    // channel capacity; a gather that drains the item
                    // before this add lands can make the sum read 0,
                    // but the send itself proves occupancy reached 1
                    let now = (pending.fetch_add(1, Ordering::SeqCst) + 1).max(1);
                    peak.fetch_max(now, Ordering::SeqCst);
                    idx += lanes;
                }
            });
        }
        drop(tx);
        while let Ok((idx, out)) = rx.recv() {
            pending.fetch_sub(1, Ordering::SeqCst);
            match out {
                Ok(JobOut::Docs(docs)) => {
                    for (name, tree) in docs {
                        forest.insert(name, tree);
                    }
                }
                Ok(JobOut::Pushed { sig, tab }) => {
                    pushed.insert(sig, tab);
                }
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(first, _)| idx < *first) {
                        first_err = Some((idx, e));
                    }
                }
            }
        }
    });
    if let Some(s) = scatter.as_mut() {
        s.record_u64(
            attr::PEAK_PENDING,
            peak.load(Ordering::SeqCst).max(0) as u64,
        );
    }
    drop(scatter);

    if let Some((_, e)) = first_err {
        return Err(e);
    }
    Ok((forest, pushed))
}

/// Runs one scatter job on worker lane `lane`, under its own `phase`
/// span (a child of the scatter span, tagged with the lane index).
fn run_job(
    job: &Job,
    lane: usize,
    connections: &BTreeMap<String, Connection>,
    cache: &AnswerCache,
    obs: Option<&Collector>,
    scatter_id: Option<usize>,
) -> Result<JobOut, ExecError> {
    let mut span = obs.map(|o| {
        let mut s = o.span_under(scatter_id, kind::PHASE, job.label());
        s.record_u64(attr::LANE, lane as u64);
        s
    });
    let out = match job {
        Job::Fetch { source, names } => {
            fetch_documents(source, names, connections, cache, obs).map(JobOut::Docs)
        }
        Job::Push { source, plan, sig } => {
            let epoch = connections.get(source).map(|c| c.epoch()).unwrap_or(0);
            push_fragment(source, plan, connections, obs)
                .map(|tab| {
                    cache.insert(*sig, source, epoch, CachedAnswer::Result(tab.clone()), obs);
                    JobOut::Pushed { sig: *sig, tab }
                })
                .map_err(|e| match e {
                    EvalError::Function { name, message } => ExecError::Wrapper {
                        source: name,
                        message,
                    },
                    other => ExecError::Eval(other),
                })
        }
    };
    if let (Some(span), Err(e)) = (span.as_mut(), &out) {
        span.record_str(attr::ERROR, e.to_string());
    }
    out
}

/// Ships one already-substituted fragment to its source.
fn push_fragment(
    source: &str,
    plan: &Arc<Alg>,
    connections: &BTreeMap<String, Connection>,
    obs: Option<&Collector>,
) -> Result<Tab, EvalError> {
    let conn = connections
        .get(source)
        .ok_or_else(|| EvalError::UnknownSource {
            source: Some(source.to_string()),
            name: "<push>".into(),
        })?;
    let response = conn
        .call_traced(&Request::Execute { plan: plan.clone() }, obs)
        .map_err(|e| EvalError::Function {
            name: source.to_string(),
            message: e.to_string(),
        })?;
    match response {
        Response::Result(tab) => Ok(tab),
        Response::Error(m) => Err(EvalError::Function {
            name: source.to_string(),
            message: m,
        }),
        other => Err(EvalError::Function {
            name: source.to_string(),
            message: format!("unexpected response {other:?}"),
        }),
    }
}

/// Documents fetched for this execution, addressed by name regardless of
/// which wrapper they came from (exported names are globally unique in a
/// YAT federation, as in the paper's example).
struct RemoteCatalog {
    forest: Forest,
}

impl yat_algebra::SourceCatalog for RemoteCatalog {
    fn document(&self, _source: Option<&str>, name: &str) -> Option<Tree> {
        self.forest.get(name).cloned()
    }

    fn deref_forest(&self) -> Option<&Forest> {
        Some(&self.forest)
    }
}

struct Pusher<'a> {
    connections: &'a BTreeMap<String, Connection>,
    obs: Option<&'a Collector>,
    /// The cross-query answer cache (disabled unless the mediator's
    /// policy enables it).
    cache: &'a AnswerCache,
    /// Results of independent fragments already shipped by the scatter
    /// step, keyed by the fragment's canonical [`Signature`] — the same
    /// scheme the cross-query cache uses, so one canonicalization serves
    /// both layers. Empty in sequential mode.
    pushed: BTreeMap<Signature, Tab>,
}

impl<'a> PushHandler for Pusher<'a> {
    fn execute_push(
        &self,
        source: &str,
        plan: &Alg,
        env: &BTreeMap<String, Value>,
    ) -> Result<Tab, EvalError> {
        // information passing first: bindings inline as constants, so the
        // shipped form (which the signature hashes) carries their values
        let plan = substitute_env(&Arc::new(plan.clone()), env);
        // signatures cost a serialization — skip when no consumer exists
        let sig = (self.cache.policy().is_enabled() || !self.pushed.is_empty())
            .then(|| Signature::execute(source, &plan));
        if let Some(sig) = sig {
            // an independent fragment (no information passing) may
            // already have been shipped by a scatter lane
            if env.is_empty() {
                if let Some(tab) = self.pushed.get(&sig) {
                    return Ok(tab.clone());
                }
            }
            // then the cross-query cache, against the live source epoch
            if let Some(conn) = self.connections.get(source) {
                if let Some(CachedAnswer::Result(tab)) =
                    self.cache.lookup(sig, source, conn.epoch(), self.obs)
                {
                    return Ok(tab);
                }
            }
        }
        let epoch = self.connections.get(source).map(|c| c.epoch()).unwrap_or(0);
        let tab = push_fragment(source, &plan, self.connections, self.obs)?;
        if let Some(sig) = sig {
            self.cache.insert(
                sig,
                source,
                epoch,
                CachedAnswer::Result(tab.clone()),
                self.obs,
            );
        }
        Ok(tab)
    }
}

/// Information passing (Section 5.3): outer bindings referenced by the
/// pushed plan become constants before shipping — "values of variables
/// passed from the left-hand side to the right-hand side".
pub fn substitute_env(plan: &Arc<Alg>, env: &BTreeMap<String, Value>) -> Arc<Alg> {
    if env.is_empty() {
        return plan.clone();
    }
    match plan.as_ref() {
        Alg::Select { input, pred } => {
            let produced = input.out_vars().unwrap_or_default();
            let pred = subst_pred(pred, env, &produced);
            Alg::select(substitute_env(input, env), pred)
        }
        Alg::Join { left, right, pred } => {
            let mut produced = left.out_vars().unwrap_or_default();
            produced.extend(right.out_vars().unwrap_or_default());
            let pred = subst_pred(pred, env, &produced);
            Alg::join(substitute_env(left, env), substitute_env(right, env), pred)
        }
        Alg::Bind {
            input,
            filter,
            over,
        } => {
            // a filter variable bound in the environment becomes an
            // inline constant — the O2 wrapper then emits `where title =
            // "…"` (Fig. 9's nested-loop information passing)
            let filter = subst_filter(filter, env);
            let input = substitute_env(input, env);
            match over {
                Some(col) => Alg::bind_over(input, col.clone(), filter),
                None => Alg::bind(input, filter),
            }
        }
        Alg::Map { input, col, expr } => {
            let produced = input.out_vars().unwrap_or_default();
            Arc::new(Alg::Map {
                input: substitute_env(input, env),
                col: col.clone(),
                expr: subst_operand(expr, env, &produced),
            })
        }
        _ => {
            let kids = plan
                .children()
                .into_iter()
                .map(|c| substitute_env(c, env))
                .collect();
            Arc::new(plan.with_children(kids))
        }
    }
}

fn subst_pred(pred: &Pred, env: &BTreeMap<String, Value>, produced: &[String]) -> Pred {
    match pred {
        Pred::True => Pred::True,
        Pred::And(a, b) => Pred::And(
            Box::new(subst_pred(a, env, produced)),
            Box::new(subst_pred(b, env, produced)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(subst_pred(a, env, produced)),
            Box::new(subst_pred(b, env, produced)),
        ),
        Pred::Not(p) => Pred::Not(Box::new(subst_pred(p, env, produced))),
        Pred::Cmp { op, left, right } => Pred::Cmp {
            op: *op,
            left: subst_operand(left, env, produced),
            right: subst_operand(right, env, produced),
        },
        Pred::Call { name, args } => Pred::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| subst_operand(a, env, produced))
                .collect(),
        },
    }
}

fn subst_operand(o: &Operand, env: &BTreeMap<String, Value>, produced: &[String]) -> Operand {
    match o {
        Operand::Var(v) if !produced.contains(v) => match env.get(v).and_then(Value::atom) {
            Some(a) => Operand::Const(a),
            None => o.clone(),
        },
        Operand::Call { name, args } => Operand::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| subst_operand(a, env, produced))
                .collect(),
        },
        _ => o.clone(),
    }
}

fn subst_filter(filter: &Pattern, env: &BTreeMap<String, Value>) -> Pattern {
    match filter {
        Pattern::TreeVar(v) => match env.get(v).and_then(Value::atom) {
            Some(a) => Pattern::constant(a),
            None => filter.clone(),
        },
        Pattern::Node { label, edges } => Pattern::Node {
            label: label.clone(),
            edges: edges
                .iter()
                .map(|e| yat_model::Edge {
                    occ: e.occ,
                    star_var: e.star_var.clone(),
                    pattern: subst_filter(&e.pattern, env),
                })
                .collect(),
        },
        Pattern::Union(bs) => Pattern::Union(bs.iter().map(|b| subst_filter(b, env)).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yat_algebra::CmpOp;
    use yat_model::Atom;
    use yat_yatl::parse_filter;

    fn env(pairs: &[(&str, Atom)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Atom(v.clone())))
            .collect()
    }

    #[test]
    fn predicates_substitute_free_vars_only() {
        let plan = Alg::select(
            Alg::bind(
                Alg::source("artifacts"),
                parse_filter("set *class: artifact: tuple [ title: $t2 ]").unwrap(),
            ),
            Pred::cmp(CmpOp::Eq, Operand::var("t2"), Operand::var("t")),
        );
        let out = substitute_env(&plan, &env(&[("t", Atom::Str("Nympheas".into()))]));
        let Alg::Select { pred, .. } = out.as_ref() else {
            panic!()
        };
        // $t2 is produced inside, $t came from the environment
        assert_eq!(pred.to_string(), "$t2 = \"Nympheas\"");
    }

    #[test]
    fn filters_substitute_shared_vars() {
        let plan = Alg::bind(
            Alg::source("artifacts"),
            parse_filter("set *class: artifact: tuple [ title: $t ]").unwrap(),
        );
        let out = substitute_env(&plan, &env(&[("t", Atom::Str("X".into()))]));
        let Alg::Bind { filter, .. } = out.as_ref() else {
            panic!()
        };
        assert!(filter.to_string().contains("title[\"X\"]"), "{filter}");
    }

    #[test]
    fn tree_valued_bindings_stay_symbolic() {
        let plan = Alg::select(
            Alg::bind(Alg::source("d"), parse_filter("d *$x").unwrap()),
            Pred::var_eq("x", "w"),
        );
        let mut e = BTreeMap::new();
        e.insert(
            "w".to_string(),
            Value::Tree(yat_model::Node::sym("work", vec![])),
        );
        let out = substitute_env(&plan, &e);
        let Alg::Select { pred, .. } = out.as_ref() else {
            panic!()
        };
        assert_eq!(pred.to_string(), "$x = $w", "tree values cannot inline");
    }

    #[test]
    fn exec_mode_parses_the_env_syntax() {
        assert_eq!(ExecMode::parse("sequential"), Some(ExecMode::Sequential));
        assert_eq!(ExecMode::parse(" SEQ "), Some(ExecMode::Sequential));
        assert_eq!(ExecMode::parse("parallel"), Some(ExecMode::parallel()));
        assert_eq!(
            ExecMode::parse("parallel:3"),
            Some(ExecMode::Parallel { max_in_flight: 3 })
        );
        assert_eq!(ExecMode::parse("parallel:0"), None, "zero lanes rejected");
        assert_eq!(ExecMode::parse("warp-speed"), None);
        assert_eq!(ExecMode::parallel().to_string(), "parallel(8)");
        assert_eq!(ExecMode::Sequential.to_string(), "sequential");
        assert!(ExecMode::parallel().is_parallel() && !ExecMode::Sequential.is_parallel());
    }

    #[test]
    fn invalid_exec_mode_env_values_warn_and_fall_back() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = seen.clone();
        yat_obs::set_warn_sink(Some(Box::new(move |m| {
            sink.lock().unwrap().push(m.to_string());
        })));
        // valid and unset values stay silent
        assert_eq!(ExecMode::from_env_value(None), ExecMode::Sequential);
        assert_eq!(
            ExecMode::from_env_value(Some("parallel:3")),
            ExecMode::Parallel { max_in_flight: 3 }
        );
        assert!(seen.lock().unwrap().is_empty());
        // an invalid value falls back to sequential, loudly
        assert_eq!(
            ExecMode::from_env_value(Some("warp-speed")),
            ExecMode::Sequential
        );
        yat_obs::set_warn_sink(None);
        let warnings = seen.lock().unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("YAT_EXEC_MODE")
                && warnings[0].contains("warp-speed")
                && warnings[0].contains("parallel:<lanes>"),
            "{warnings:?}"
        );
    }

    #[test]
    fn exec_engine_parses_the_env_syntax() {
        assert_eq!(ExecEngine::parse("interp"), Some(ExecEngine::Interp));
        assert_eq!(ExecEngine::parse(" INTERPRETER "), Some(ExecEngine::Interp));
        assert_eq!(ExecEngine::parse("vm"), Some(ExecEngine::Vm));
        assert_eq!(ExecEngine::parse("Compiled"), Some(ExecEngine::Vm));
        assert_eq!(ExecEngine::parse("jit"), None);
        assert_eq!(ExecEngine::Interp.to_string(), "interp");
        assert_eq!(ExecEngine::Vm.to_string(), "vm");
        assert_eq!(ExecEngine::default(), ExecEngine::Interp);
    }

    #[test]
    fn invalid_exec_engine_env_values_warn_and_fall_back() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = seen.clone();
        yat_obs::set_warn_sink(Some(Box::new(move |m| {
            sink.lock().unwrap().push(m.to_string());
        })));
        // valid and unset values stay silent
        assert_eq!(ExecEngine::from_env_value(None), ExecEngine::Interp);
        assert_eq!(ExecEngine::from_env_value(Some("vm")), ExecEngine::Vm);
        assert!(seen.lock().unwrap().is_empty());
        // an invalid value falls back to the interpreter, loudly
        assert_eq!(
            ExecEngine::from_env_value(Some("turbo")),
            ExecEngine::Interp
        );
        yat_obs::set_warn_sink(None);
        let warnings = seen.lock().unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("YAT_EXEC_ENGINE")
                && warnings[0].contains("turbo")
                && warnings[0].contains("`vm`/`compiled`"),
            "{warnings:?}"
        );
    }

    #[test]
    fn stream_policy_parses_the_env_syntax() {
        assert_eq!(StreamPolicy::parse("off"), Some(StreamPolicy::Off));
        assert_eq!(
            StreamPolicy::parse(" Materialized "),
            Some(StreamPolicy::Off)
        );
        assert_eq!(
            StreamPolicy::parse("chunked"),
            Some(StreamPolicy::chunked())
        );
        assert_eq!(StreamPolicy::parse("on"), Some(StreamPolicy::chunked()));
        assert_eq!(
            StreamPolicy::parse("chunked:256"),
            Some(StreamPolicy::Chunked {
                batch_rows: 256,
                max_pending: StreamPolicy::DEFAULT_MAX_PENDING
            })
        );
        assert_eq!(
            StreamPolicy::parse("chunked:256:4"),
            Some(StreamPolicy::Chunked {
                batch_rows: 256,
                max_pending: 4
            })
        );
        assert_eq!(StreamPolicy::parse("chunked:0"), None, "zero rows rejected");
        assert_eq!(
            StreamPolicy::parse("chunked:64:0"),
            None,
            "zero pending rejected"
        );
        assert_eq!(StreamPolicy::parse("firehose"), None);
        assert_eq!(
            StreamPolicy::chunked().to_string(),
            "chunked(1024 rows, 8 pending)"
        );
        assert_eq!(StreamPolicy::Off.to_string(), "off");
        assert!(StreamPolicy::chunked().is_chunked() && !StreamPolicy::Off.is_chunked());
    }

    #[test]
    fn invalid_stream_policy_env_values_warn_and_fall_back() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = seen.clone();
        yat_obs::set_warn_sink(Some(Box::new(move |m| {
            sink.lock().unwrap().push(m.to_string());
        })));
        // valid and unset values stay silent
        assert_eq!(StreamPolicy::from_env_value(None), StreamPolicy::Off);
        assert_eq!(
            StreamPolicy::from_env_value(Some("chunked:512")),
            StreamPolicy::Chunked {
                batch_rows: 512,
                max_pending: 8
            }
        );
        assert!(seen.lock().unwrap().is_empty());
        // an invalid value falls back to off, loudly
        assert_eq!(
            StreamPolicy::from_env_value(Some("firehose")),
            StreamPolicy::Off
        );
        yat_obs::set_warn_sink(None);
        let warnings = seen.lock().unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("YAT_STREAM")
                && warnings[0].contains("firehose")
                && warnings[0].contains("chunked:<rows>:<pending>"),
            "{warnings:?}"
        );
    }

    #[test]
    fn dependency_analysis_skips_djoin_right() {
        let filter = parse_filter("works *$w").unwrap();
        let wais = Alg::push("wais", Alg::bind(Alg::source("works"), filter.clone()));
        let o2 = Alg::push("o2", Alg::bind(Alg::source("artifacts"), filter.clone()));
        let dependent = Alg::push("o2", Alg::bind(Alg::source("persons"), filter));

        // Join(wais, o2): both sides independent
        let plan = Alg::join(wais.clone(), o2.clone(), Pred::True);
        let mut found = Vec::new();
        independent_pushes(&plan, &mut found);
        assert_eq!(
            found.iter().map(|(s, _)| s.as_str()).collect::<Vec<_>>(),
            ["wais", "o2"]
        );

        // DJoin(left: wais, right: dependent): the right side needs
        // per-row bindings and must not be scattered
        let plan = Alg::djoin(wais, dependent);
        let mut found = Vec::new();
        independent_pushes(&plan, &mut found);
        assert_eq!(
            found.iter().map(|(s, _)| s.as_str()).collect::<Vec<_>>(),
            ["wais"]
        );
    }

    #[test]
    fn empty_env_is_identity() {
        let plan = Alg::select(
            Alg::bind(Alg::source("d"), parse_filter("d *$x").unwrap()),
            Pred::eq_const("x", 1),
        );
        let out = substitute_env(&plan, &BTreeMap::new());
        assert!(Arc::ptr_eq(&plan, &out));
    }
}
